//! Re-export of the [`arena`] umbrella crate for examples and integration tests.
pub use arena::*;
