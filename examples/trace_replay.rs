//! Trace replay: run all five schedulers over one workload trace and
//! compare them (a miniature of the paper's Fig. 14).
//!
//! ```text
//! cargo run --release --example trace_replay [hours]
//! cargo run --release --example trace_replay my_trace.json
//! ```
//!
//! With a numeric argument (default 2), generates a seeded heavy trace
//! of that many hours for the 64-GPU testbed; with a `.json` argument,
//! replays a trace saved in the `arena_trace::io` schema (the adapter
//! seam for real production traces). Either way, every policy runs
//! against the same ground truth.

use arena::prelude::*;

fn main() {
    let arg = std::env::args().nth(1);
    let cluster = arena::cluster::presets::physical_testbed();
    let jobs = match &arg {
        Some(path) if path.ends_with(".json") => {
            arena::trace::load_json(path).expect("readable, sorted trace JSON")
        }
        _ => {
            let hours: f64 = arg.and_then(|a| a.parse().ok()).unwrap_or(2.0);
            let cfg = TraceConfig::new(
                TraceKind::PhillyHeavy,
                hours * 3600.0,
                cluster.total_gpus(),
                vec![48.0, 24.0],
            );
            let jobs = generate(&cfg);
            // Round-trip through the JSON schema so the file format stays
            // exercised; the saved file doubles as a template.
            arena::trace::save_json("trace_replay_input.json", &jobs).expect("writable cwd");
            jobs
        }
    };
    println!("trace: {} jobs on 64 GPUs\n", jobs.len());

    let service = PlanService::new(&cluster, CostParams::default(), 99);
    // Run until well past the last submission.
    let last_submit = jobs.last().map_or(0.0, |j| j.submit_s);
    let sim_cfg = SimConfig::new(last_submit + 30.0 * 3600.0);

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FcfsPolicy::new()),
        Box::new(GandivaPolicy::new()),
        Box::new(GavelPolicy::new()),
        Box::new(ElasticFlowPolicy::loosened()),
        Box::new(ArenaPolicy::new()),
    ];

    println!(
        "{:<15} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "policy", "avg JCT", "queue", "finished", "avg thpt", "restarts"
    );
    let mut arena_result: Option<SimResult> = None;
    for mut p in policies {
        let r = simulate(&cluster, &jobs, p.as_mut(), &service, &sim_cfg);
        println!(
            "{:<15} {:>8.0}s {:>8.0}s {:>9} {:>9.3} {:>9.2}",
            r.policy,
            r.metrics.avg_jct_s,
            r.metrics.avg_queue_s,
            r.metrics.finished,
            r.metrics.avg_throughput,
            r.metrics.avg_restarts
        );
        if r.policy == "Arena" {
            arena_result = Some(r);
        }
    }

    // Show the first few job records of the Arena run.
    let arena = arena_result.expect("Arena ran");
    println!("\nfirst Arena job records:");
    for rec in arena.records.iter().take(8) {
        println!(
            "  {:24} submit {:>6.0}s queue {:>6.0}s jct {:>7.0}s restarts {}",
            rec.name,
            rec.submit_s,
            rec.queue_s().unwrap_or(f64::NAN),
            rec.jct_s().unwrap_or(f64::NAN),
            rec.restarts
        );
    }
}
