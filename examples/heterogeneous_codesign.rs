//! Heterogeneous co-design: why scheduling and parallelism must be
//! decided together (the paper's Fig. 1 motivation).
//!
//! ```text
//! cargo run --release --example heterogeneous_codesign
//! ```
//!
//! Two jobs, two servers (an Ampere-PCIe box and a V100-NVLink box).
//! A parallelism-oblivious scheduler sees "fast GPUs" vs "slow GPUs";
//! the co-design sees that the large BERT *cannot run at all* without
//! NVLink-backed tensor parallelism, and that the WideResNet is happy
//! anywhere — so the exchange of resources between the jobs decides most
//! of the cluster's throughput.

use arena::cluster::Cluster;
use arena::prelude::*;

fn main() {
    let cluster = Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A10, 4), 1),
        (NodeSpec::with_default_links(GpuSpec::V100, 4), 1),
    ]);
    let service = PlanService::new(&cluster, CostParams::default(), 7);
    let (ampere, volta) = (GpuTypeId(0), GpuTypeId(1));

    let bert = ModelConfig::new(ModelFamily::Bert, 6.7, 128);
    let wres = ModelConfig::new(ModelFamily::WideResNet, 1.0, 512);

    println!("per-job placement menu (4 GPUs each):\n");
    for job in [&bert, &wres] {
        for (pool, name) in [(ampere, "4xA10 (Ampere, PCIe)"), (volta, "4xV100 (NVLink)")] {
            match service.adaptive_run(job, 4, pool) {
                Some(run) => println!(
                    "  {:10} on {:22} -> {:>7.1} samples/s via {}",
                    job.name(),
                    name,
                    run.throughput_sps,
                    run.plan_label
                ),
                None => println!(
                    "  {:10} on {:22} -> OUT OF MEMORY (no feasible plan)",
                    job.name(),
                    name
                ),
            }
        }
    }

    // Score both exchanges by normalised cluster throughput.
    let ideal = |m: &ModelConfig| {
        [ampere, volta]
            .iter()
            .filter_map(|&p| service.adaptive_run(m, 4, p))
            .map(|r| r.throughput_sps)
            .fold(0.0_f64, f64::max)
    };
    let norm = |m: &ModelConfig, pool: GpuTypeId| {
        service
            .adaptive_run(m, 4, pool)
            .map_or(0.0, |r| r.throughput_sps / ideal(m))
    };

    let good = norm(&bert, volta) + norm(&wres, ampere);
    let bad = norm(&bert, ampere) + norm(&wres, volta);
    println!("\nscheme A (BERT->V100, WRes->A10): total normalised throughput {good:.3}");
    println!("scheme B (BERT->A10, WRes->V100): total normalised throughput {bad:.3}");
    println!("co-design advantage: {:.2}x", good / bad.max(1e-9));
}
