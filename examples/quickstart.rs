//! Quickstart: estimate, tune and schedule one training job with Arena.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full Arena pipeline on a single BERT-1.3B fine-tuning job:
//! build the model graph, generate its Cells, estimate them agilely,
//! tune the winning Cell, and compare against exhaustive exploration.

use arena::estimator::Cell;
use arena::prelude::*;
use arena::tuner::{tune_full, tune_pruned};

fn main() {
    // A heterogeneous cluster: the paper's 64-GPU physical testbed
    // (16 nodes x 2 A40, 16 nodes x 2 A10).
    let cluster = arena::cluster::presets::physical_testbed();
    println!(
        "cluster: {} GPUs in {} pools",
        cluster.total_gpus(),
        cluster.num_pools()
    );

    // The job: BERT-1.3B, global batch 256, on 8 A40 GPUs.
    let model = ModelConfig::new(ModelFamily::Bert, 1.3, 256);
    let graph = model.build();
    println!(
        "model: {} ({:.2}B params, {} operators)",
        graph.name,
        graph.params_billion(),
        graph.len()
    );

    let params = CostParams::default();
    let gt = GroundTruth::new(params.clone(), 42);
    let estimator = CellEstimator::new(params, 42);
    let hw = HwTarget::new(cluster.spec(GpuTypeId(0)));

    // 1. Generate the job's Cells: one per power-of-two stage count.
    let cells = Cell::generate(&graph, 8);
    println!("\ncells for 8 GPUs:");

    // 2. Estimate each Cell agilely (two single-GPU profiles per Cell).
    let mut best: Option<(Cell, arena::estimator::CellEstimate)> = None;
    for cell in cells {
        match estimator.estimate(&graph, model.global_batch, &cell, &hw) {
            Some(e) => {
                println!(
                    "  {}: est {:.1} samples/s via {} (favors {:?})",
                    cell.label(),
                    e.throughput_sps,
                    e.plan.short_label(),
                    e.favors
                );
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| e.throughput_sps > b.throughput_sps)
                {
                    best = Some((cell, e));
                }
            }
            None => println!("  {}: infeasible", cell.label()),
        }
    }
    let (cell, estimate) = best.expect("some cell is feasible");
    println!(
        "estimation cost: {:.0} GPU-seconds on one device",
        estimator.meter().gpu_seconds()
    );

    // 3. Tune the winning Cell with the pruned (Cell-guided) search.
    let tuned = tune_pruned(&gt, &graph, model.global_batch, &cell, &estimate, &hw)
        .expect("pruned search finds a plan");
    println!(
        "\nCell-guided tuning: {} -> {:.1} samples/s ({} trials, {:.0} GPU-s)",
        tuned.plan.short_label(),
        tuned.perf.throughput_sps,
        tuned.trials,
        tuned.gpu_seconds
    );

    // 4. Compare against exhaustive exploration of the same Cell.
    let gt_full = GroundTruth::new(gt.params().clone(), 42);
    let full = tune_full(&gt_full, &graph, model.global_batch, &cell, &hw)
        .expect("full search finds a plan");
    println!(
        "full exploration:   {} -> {:.1} samples/s ({} trials, {:.0} GPU-s)",
        full.plan.short_label(),
        full.perf.throughput_sps,
        full.trials,
        full.gpu_seconds
    );
    println!(
        "tuning accuracy {:.1}% at {:.1}x less tuning GPU-time",
        100.0 * tuned.perf.throughput_sps / full.perf.throughput_sps,
        full.gpu_seconds / tuned.gpu_seconds
    );
}
