//! Deadline-aware scheduling: Arena-DDL versus ElasticFlow (§8.5).
//!
//! ```text
//! cargo run --release --example deadline_scheduling
//! ```
//!
//! Every job in the trace carries a completion deadline. Arena-DDL
//! admits a job only onto Cells whose estimated finish time meets the
//! deadline and drops hopeless jobs early; ElasticFlow sizes jobs to the
//! smallest deadline-meeting DP share. The deadline satisfactory ratio is
//! the fraction of jobs finishing on time.

use arena::prelude::*;

fn main() {
    let cluster = arena::cluster::presets::physical_testbed();
    let mut cfg = TraceConfig::new(
        TraceKind::HeliosModerate,
        2.5 * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    cfg.deadline_fraction = 1.0;
    let jobs = generate(&cfg);
    println!("trace: {} deadline-carrying jobs\n", jobs.len());

    let service = PlanService::new(&cluster, CostParams::default(), 55);
    let sim_cfg = SimConfig::new(36.0 * 3600.0);

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(ElasticFlowPolicy::deadline()),
        Box::new(ArenaPolicy::with_variant(ArenaVariant::Deadline)),
    ];
    for mut p in policies {
        let r = simulate(&cluster, &jobs, p.as_mut(), &service, &sim_cfg);
        println!(
            "{:<12} deadline satisfaction {:>5.1}%  avg JCT {:>6.0}s  dropped {:>3}  avg thpt {:.3}",
            r.policy,
            100.0 * r.metrics.deadline_satisfaction,
            r.metrics.avg_jct_s,
            r.metrics.dropped,
            r.metrics.avg_throughput
        );
    }
    println!("\nArena-DDL trades early drops for a higher on-time ratio among");
    println!("admitted jobs, while its Cell estimates let it size placements");
    println!("to each deadline instead of overestimated DP shares.");
}
