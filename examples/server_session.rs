//! An end-to-end `arena-server` session over TCP.
//!
//! Boots the daemon in-process on an ephemeral port, connects the
//! blocking [`arena_server::Client`], streams a small workload in as
//! JSONL commands interleaved with status queries, injects a node
//! failure and repair, drains the run and reads the decision log back
//! out — the same flow `repro serve` hosts for external clients.
//!
//! Run with: `cargo run --example server_session`

use arena::cluster::presets;
use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::sim::SimConfig;
use arena::trace::{FaultEvent, FaultKind, JobSpec};
use arena_server::{spawn_listener, Client, Server, ServerConfig};
use serde::Value;

fn job(id: u64, submit_s: f64, gpus: usize, pool: usize) -> JobSpec {
    let families = [ModelFamily::Bert, ModelFamily::WideResNet, ModelFamily::Moe];
    let family = families[id as usize % families.len()];
    JobSpec {
        id,
        name: format!("job{id}-{family}"),
        submit_s,
        model: ModelConfig::new(family, family.table2_sizes()[0], 256),
        iterations: 400,
        requested_gpus: gpus,
        requested_pool: pool,
        deadline_s: None,
    }
}

fn main() {
    // A resident daemon scheduling the paper's physical testbed with
    // the Arena policy, virtual clock, 2 decision shards.
    let cfg = ServerConfig::new(
        "arena",
        presets::physical_testbed(),
        SimConfig::new(864_000.0),
    )
    .with_shards(2);
    let server = Server::start(cfg).expect("server start");
    let (addr, acceptor) =
        spawn_listener(&server.handle(), "127.0.0.1:0").expect("bind ephemeral port");
    println!("daemon listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");

    // Stream a workload in, one command line per event. The daemon
    // consumes the merged submission/fault stream in timestamp order,
    // so events are interleaved exactly as they would happen live.
    for i in 0..4u64 {
        let spec = job(
            i,
            600.0 * i as f64,
            [2, 4, 8][i as usize % 3],
            i as usize % 2,
        );
        let ack = client.submit(&spec).expect("submit accepted");
        println!(
            "submitted job {i}: {}",
            serde_json::to_string(&ack).unwrap()
        );
    }

    // Malformed input is rejected without disturbing the run.
    let bad = client.call("{\"cmd\":\"submit\",\"job\":{\"id\":99}}");
    println!("truncated job spec rejected: {}", bad.unwrap_err());

    // A node fails mid-trace...
    client
        .fault(&FaultEvent {
            time_s: 1_800.0,
            pool: 0,
            node: 1,
            kind: FaultKind::Failure,
        })
        .expect("failure accepted");

    for i in 4..8u64 {
        let spec = job(
            i,
            600.0 * i as f64,
            [2, 4, 8][i as usize % 3],
            i as usize % 2,
        );
        let ack = client.submit(&spec).expect("submit accepted");
        println!(
            "submitted job {i}: {}",
            serde_json::to_string(&ack).unwrap()
        );
    }

    // ...and comes back later.
    client
        .fault(&FaultEvent {
            time_s: 5_400.0,
            pool: 0,
            node: 1,
            kind: FaultKind::Repair,
        })
        .expect("repair accepted");

    // Feeding a fault with a timestamp the clock has already passed is
    // rejected without disturbing the run (reject-and-continue).
    let stale = client.fault(&FaultEvent {
        time_s: 10.0,
        pool: 0,
        node: 0,
        kind: FaultKind::Failure,
    });
    println!("stale fault rejected: {}", stale.unwrap_err());

    // Queries are served from the snapshot hub, not the decision loop.
    let status = client.query("status").expect("status");
    println!(
        "mid-run status: {}",
        serde_json::to_string(&status).unwrap()
    );

    // Close the input and run the decision loop to completion.
    let drained = client.drain().expect("drain");
    println!("drained: {}", serde_json::to_string(&drained).unwrap());

    let status = client.query("status").expect("status");
    let finished = status.get("finished").cloned();
    let decisions = status.get("decisions").cloned();
    println!(
        "final: finished={finished:?} decisions={decisions:?} (policy {:?})",
        status.get("policy")
    );

    // Pull the decision log and show the first few records.
    let log = client.query("decisions").expect("decisions");
    if let Some(Value::Str(jsonl)) = log.get("jsonl") {
        for line in jsonl.lines().take(3) {
            println!("decision: {line}");
        }
    }

    client.shutdown().expect("shutdown");
    let _ = acceptor.join();
    let outcome = server.join();
    println!(
        "daemon stopped; drained={} events_logged={}",
        outcome.state.drained,
        outcome.event_log.len()
    );
    assert!(outcome.state.drained);
    assert!(outcome.result.is_some());
}
