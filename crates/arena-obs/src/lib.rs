//! Deterministic observability for the Arena stack.
//!
//! Every layer of the reproduction — the simulator's event loop, each
//! scheduling policy, the Cell estimator — answers the same questions
//! through this crate: *why* was a job placed, dropped or requeued, how
//! often do the caches hit, and where does wall-time go. It is built from
//! four primitives:
//!
//! * [`Decision`] — a structured provenance record, one per scheduling
//!   action (and per engine-side eviction/requeue), carrying the chosen
//!   pool/GPU count, the candidate score and a static reason string.
//! * **Counters** ([`Obs::incr`]) — monotonically increasing event tallies.
//! * **Gauges** ([`Obs::gauge`]) — `(sim-time, value)` samples of a level,
//!   e.g. queue depth at every scheduling pass.
//! * **Spans** ([`Obs::span`]) and **histograms** ([`Obs::observe`]) —
//!   wall-clock timers and value distributions.
//!
//! The handle is cheap to clone and defaults to [`Obs::disabled`], in
//! which every recording call is a no-op returning immediately: the
//! instrumented code paths compute nothing extra, so a disabled run is
//! bitwise identical to an uninstrumented one. Everything except span
//! wall-times is **deterministic**: two runs of the same simulation
//! produce the same decision log, counters and gauges, which is what the
//! golden-trace test harness snapshots.
//!
//! # Example
//!
//! ```
//! use arena_obs::{Decision, Obs};
//!
//! let obs = Obs::enabled();
//! obs.context(5.0, "Arena", "arrival");
//! obs.decision(Decision::place(7, 0, 8).with_score(0.93).why("best-cell"));
//! obs.incr("sched.pass", 1);
//! let report = obs.report();
//! assert_eq!(report.decisions.len(), 1);
//! assert_eq!(report.decisions[0].policy, "Arena");
//! assert_eq!(report.counters["sched.pass"], 1);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub mod metrics;
pub mod timeline;

pub use metrics::{
    labeled, publish_mem_sections, Counter, FlightRecorder, Gauge, HistSnapshot, Histogram,
    MetricsRegistry,
};
pub use timeline::{
    AllocEvent, JobAccount, JobEvent, JobEventKind, JobInterval, JobState, NodeSlot, StopCause,
    Timeline, UtilSample,
};

/// What kind of action a [`Decision`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionKind {
    /// A job was (re)placed on a pool at a GPU count.
    Place,
    /// A job was stopped and returned to the queue by the policy.
    Evict,
    /// A job was permanently rejected.
    Drop,
    /// The engine returned a job to the queue (node failure, capacity
    /// race, infeasible placement) — provenance the policy never sees.
    Requeue,
}

impl DecisionKind {
    /// Stable lowercase label used in logs and snapshots.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Place => "place",
            DecisionKind::Evict => "evict",
            DecisionKind::Drop => "drop",
            DecisionKind::Requeue => "requeue",
        }
    }
}

/// One scheduling decision with full provenance.
///
/// Built with [`Decision::place`] / [`Decision::evict`] /
/// [`Decision::drop`] / [`Decision::requeue`] plus the builder methods;
/// `seq`, `time_s`, `policy` and `trigger` are stamped by
/// [`Obs::decision`] from the context the engine set.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Global sequence number within the run (stamped on record).
    pub seq: u64,
    /// Simulation time of the scheduling pass, seconds (stamped).
    pub time_s: f64,
    /// Deciding policy's display name (stamped), `"engine"` for
    /// engine-originated records.
    pub policy: String,
    /// The event that fired the pass (stamped): `arrival`, `departure`,
    /// `round`, `node-failure`, `node-repair`.
    pub trigger: String,
    /// Action kind.
    pub kind: DecisionKind,
    /// Subject job id.
    pub job: u64,
    /// Target pool (placements only).
    pub pool: Option<usize>,
    /// Target GPU count (placements only).
    pub gpus: Option<usize>,
    /// Whether the placement is opportunistic (evictable backfill).
    pub opportunistic: bool,
    /// The candidate score the decision was taken on (policy-specific:
    /// normalised throughput for Arena, profiled rate for Gavel, …).
    pub score: Option<f64>,
    /// Pool the job held *before* this decision (rescales/migrations of
    /// active jobs only).
    pub prev_pool: Option<usize>,
    /// GPU count held before this decision (rescales/migrations only).
    pub prev_gpus: Option<usize>,
    /// Why: a stable, policy-specific reason label.
    pub reason: &'static str,
    /// Scheduler shard that owns the subject job: its home *partition*
    /// under the engine's partition map (per-pool partitions by default,
    /// so the id reads as the job's requested pool). A semantic
    /// identifier — deliberately independent of the executor shard
    /// count, which must stay invisible in observable output.
    pub shard: Option<u32>,
}

impl Decision {
    fn new(kind: DecisionKind, job: u64) -> Self {
        Decision {
            seq: 0,
            time_s: 0.0,
            policy: String::new(),
            trigger: String::new(),
            kind,
            job,
            pool: None,
            gpus: None,
            opportunistic: false,
            score: None,
            prev_pool: None,
            prev_gpus: None,
            reason: "",
            shard: None,
        }
    }

    /// A placement of `job` on `gpus` devices of `pool`.
    #[must_use]
    pub fn place(job: u64, pool: usize, gpus: usize) -> Self {
        let mut d = Self::new(DecisionKind::Place, job);
        d.pool = Some(pool);
        d.gpus = Some(gpus);
        d
    }

    /// A policy eviction of `job`.
    #[must_use]
    pub fn evict(job: u64) -> Self {
        Self::new(DecisionKind::Evict, job)
    }

    /// A permanent rejection of `job`.
    #[must_use]
    pub fn drop(job: u64) -> Self {
        Self::new(DecisionKind::Drop, job)
    }

    /// An engine-side requeue of `job`.
    #[must_use]
    pub fn requeue(job: u64) -> Self {
        Self::new(DecisionKind::Requeue, job)
    }

    /// Attaches the candidate score the decision was taken on.
    #[must_use]
    pub fn with_score(mut self, score: f64) -> Self {
        self.score = Some(score);
        self
    }

    /// Marks the placement opportunistic.
    #[must_use]
    pub fn opportunistic(mut self) -> Self {
        self.opportunistic = true;
        self
    }

    /// Attaches the placement the job is moving *from* — making the
    /// record a rescale (same pool, different GPU count) or migration
    /// (different pool) with both endpoints visible.
    #[must_use]
    pub fn moving_from(mut self, pool: usize, gpus: usize) -> Self {
        self.prev_pool = Some(pool);
        self.prev_gpus = Some(gpus);
        self
    }

    /// Attaches the reason label.
    #[must_use]
    pub fn why(mut self, reason: &'static str) -> Self {
        self.reason = reason;
        self
    }

    /// Attaches the owning scheduler shard (the job's home partition).
    #[must_use]
    pub fn on_shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Stable `kind/reason` key used for per-reason accounting.
    #[must_use]
    pub fn reason_key(&self) -> String {
        format!("{}/{}", self.kind.as_str(), self.reason)
    }

    /// One-line JSON object (hand-rolled: this crate is dependency-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push('{');
        let _ = write!(s, "\"seq\":{}", self.seq);
        let _ = write!(s, ",\"time_s\":{}", json_f64(self.time_s));
        let _ = write!(s, ",\"policy\":\"{}\"", json_escape(&self.policy));
        let _ = write!(s, ",\"trigger\":\"{}\"", json_escape(&self.trigger));
        let _ = write!(s, ",\"kind\":\"{}\"", self.kind.as_str());
        let _ = write!(s, ",\"job\":{}", self.job);
        match self.pool {
            Some(p) => {
                let _ = write!(s, ",\"pool\":{p}");
            }
            None => s.push_str(",\"pool\":null"),
        }
        match self.gpus {
            Some(g) => {
                let _ = write!(s, ",\"gpus\":{g}");
            }
            None => s.push_str(",\"gpus\":null"),
        }
        let _ = write!(s, ",\"opportunistic\":{}", self.opportunistic);
        match self.score {
            Some(v) => {
                let _ = write!(s, ",\"score\":{}", json_f64(v));
            }
            None => s.push_str(",\"score\":null"),
        }
        if let (Some(p), Some(g)) = (self.prev_pool, self.prev_gpus) {
            let _ = write!(s, ",\"prev_pool\":{p},\"prev_gpus\":{g}");
        }
        if let Some(shard) = self.shard {
            let _ = write!(s, ",\"shard\":{shard}");
        }
        let _ = write!(s, ",\"reason\":\"{}\"", json_escape(self.reason));
        s.push('}');
        s
    }

    /// Compact one-line rendering for snapshots and debugging.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut s = format!(
            "t={} {} {} {} j{}",
            trim_f64(self.time_s),
            self.policy,
            self.trigger,
            self.kind.as_str(),
            self.job
        );
        if let (Some(p), Some(g)) = (self.pool, self.gpus) {
            let _ = write!(s, " pool={p} gpus={g}");
        }
        if let (Some(p), Some(g)) = (self.prev_pool, self.prev_gpus) {
            let _ = write!(s, " from={p}/{g}");
        }
        if self.opportunistic {
            s.push_str(" opp");
        }
        if let Some(shard) = self.shard {
            let _ = write!(s, " shard={shard}");
        }
        let _ = write!(s, " reason={}", self.reason);
        s
    }
}

pub(crate) fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float rendering (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Deterministic short float rendering for snapshot lines: times in this
/// simulator are sums of exact config constants, so plain `{}` printing
/// is stable across runs and platforms.
pub(crate) fn trim_f64(v: f64) -> String {
    format!("{v}")
}

/// Aggregated wall-clock of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock, seconds.
    pub total_s: f64,
    /// Longest single span, seconds.
    pub max_s: f64,
}

/// Summary of one histogram: moments plus percentile summaries, so
/// reports render distributions without dumping raw samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistStats {
    /// Recorded values.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median (nearest-rank percentile over all recorded samples).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistStats {
    /// Mean value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Summarises raw samples (nearest-rank percentiles; samples need
    /// not be sorted). Non-finite samples are discarded before
    /// summarising — a NaN smuggled in by a degenerate shard merge must
    /// never surface as a NaN percentile in exposition output — so
    /// `count` reflects finite samples only. An empty (or all-NaN)
    /// slice summarises to the all-zero default.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return HistStats::default();
        }
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| {
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        HistStats {
            count: sorted.len() as u64,
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    // Context stamped onto decisions.
    time_s: f64,
    policy: String,
    trigger: String,
    seq: u64,
    decisions: Vec<Decision>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(f64, f64)>>,
    // Raw samples; summarised (with percentiles) at report time.
    histograms: BTreeMap<String, Vec<f64>>,
    spans: BTreeMap<String, SpanStats>,
    timeline: Timeline,
    // Flight-recorder ids for the current context, refreshed by
    // `context` only when the policy/trigger string actually changes.
    policy_id: u16,
    trigger_id: u16,
    // Per-reason id cache so `decision` never takes the (cold)
    // intern lock for a reason it has already seen.
    reason_ids: HashMap<&'static str, u16>,
}

/// The observability handle.
///
/// Cheap to clone (two `Option<Arc>`s); [`Obs::disabled`] carries no
/// state at all and makes every recording method a no-op. A handle may
/// additionally carry a [`MetricsRegistry`]: counters, gauges and
/// histogram observations then take the lock-free registry path
/// instead of the trace mutex, and recorded decisions are mirrored
/// into the registry's flight recorder.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Inner>>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Obs {
    /// The default no-op handle: nothing is recorded, nothing is paid.
    #[must_use]
    pub fn disabled() -> Self {
        Obs {
            inner: None,
            metrics: None,
        }
    }

    /// A recording handle with empty state.
    #[must_use]
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
            metrics: None,
        }
    }

    /// A handle that records *only* into the lock-free registry:
    /// counters, gauges, histograms and span timings, but no decision
    /// log, no timeline, no trace mutex. This is the "telemetry plane
    /// only" mode the overhead bench compares against
    /// [`Obs::disabled`].
    #[must_use]
    pub fn metrics_only(registry: Arc<MetricsRegistry>) -> Self {
        Obs {
            inner: None,
            metrics: Some(registry),
        }
    }

    /// Attaches a live metrics registry to this handle (builder style).
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The attached metrics registry, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Whether this handle records full traces (decisions, timeline).
    /// A metrics-only handle answers `false`: instrumented code may
    /// skip building decision/timeline payloads entirely.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Sets the decision-stamping context: simulation time, deciding
    /// policy and the event that fired the pass. The engine calls this
    /// before every dispatch; recorded decisions inherit the values.
    pub fn context(&self, time_s: f64, policy: &str, trigger: &str) {
        if let Some(mut g) = self.lock() {
            g.time_s = time_s;
            if g.policy != policy {
                g.policy = policy.to_string();
                if let Some(reg) = &self.metrics {
                    g.policy_id = reg.flight().intern_policy(policy);
                }
            }
            if g.trigger != trigger {
                g.trigger = trigger.to_string();
                if let Some(reg) = &self.metrics {
                    g.trigger_id = reg.flight().intern_trigger(trigger);
                }
            }
        }
    }

    /// Records a decision, stamping seq/time/policy/trigger from the
    /// current context. With a registry attached the stamped decision
    /// is also mirrored into the flight recorder — an id-encoded ring
    /// write with no extra lock (interning a first-seen reason is the
    /// only cold exception).
    pub fn decision(&self, mut d: Decision) {
        if let Some(mut g) = self.lock() {
            d.seq = g.seq;
            g.seq += 1;
            d.time_s = g.time_s;
            d.policy.clone_from(&g.policy);
            d.trigger.clone_from(&g.trigger);
            if let Some(reg) = &self.metrics {
                let reason_id = match g.reason_ids.get(d.reason) {
                    Some(&id) => id,
                    None => {
                        let id = reg.flight().intern_reason(d.reason);
                        g.reason_ids.insert(d.reason, id);
                        id
                    }
                };
                reg.flight()
                    .record(&d, g.policy_id, g.trigger_id, reason_id);
            }
            g.decisions.push(d);
        }
    }

    /// Number of decisions recorded so far.
    #[must_use]
    pub fn decision_count(&self) -> usize {
        self.lock().map_or(0, |g| g.decisions.len())
    }

    /// Clones the decisions recorded at or after index `from`.
    #[must_use]
    pub fn decisions_after(&self, from: usize) -> Vec<Decision> {
        self.lock().map_or_else(Vec::new, |g| {
            g.decisions.get(from..).unwrap_or(&[]).to_vec()
        })
    }

    /// A point-in-time clone of every counter. Cheap relative to
    /// [`Obs::report`] (no decision/gauge/histogram copies), so a
    /// serving layer can poll it per query.
    #[must_use]
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        let mut out = self
            .lock()
            .map_or_else(BTreeMap::new, |g| g.counters.clone());
        if let Some(reg) = &self.metrics {
            out.extend(reg.counters_snapshot());
        }
        out
    }

    /// Renders the counters in Prometheus-style exposition format, one
    /// `# TYPE` header + sample per counter, names sanitised to
    /// `[a-z0-9_]` (dots and dashes become underscores). Deterministic:
    /// counters render in sorted-name order.
    #[must_use]
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters_snapshot() {
            let sanitised: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            out.push_str(&format!(
                "# TYPE {sanitised} counter\n{sanitised} {value}\n"
            ));
        }
        out
    }

    /// Increments a counter. With a registry attached this is the
    /// lock-free fast path (an RCU map load plus one `fetch_add`); the
    /// final values surface identically through [`Obs::report`] and
    /// [`Obs::counters_snapshot`], so callers migrate without output
    /// changes.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(reg) = &self.metrics {
            reg.incr(name, by);
            return;
        }
        if let Some(mut g) = self.lock() {
            match g.counters.get_mut(name) {
                Some(v) => *v += by,
                None => {
                    g.counters.insert(name.to_string(), by);
                }
            }
        }
    }

    /// Records one `(time, value)` sample of a gauge. With a registry
    /// attached the gauge is a lock-free last-value cell instead (live
    /// levels for `query metrics`; the registry plane does not keep the
    /// full time series).
    pub fn gauge(&self, name: &str, time_s: f64, value: f64) {
        if let Some(reg) = &self.metrics {
            reg.set_gauge(name, value);
            return;
        }
        if let Some(mut g) = self.lock() {
            match g.gauges.get_mut(name) {
                Some(v) => v.push((time_s, value)),
                None => {
                    g.gauges.insert(name.to_string(), vec![(time_s, value)]);
                }
            }
        }
    }

    /// Records a value into a histogram. With a registry attached the
    /// sample lands in the lock-free log2-bucket histogram (report
    /// percentiles become ≤2x bucket approximations instead of exact
    /// sample ranks).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(reg) = &self.metrics {
            reg.observe(name, value);
            return;
        }
        if let Some(mut g) = self.lock() {
            g.histograms
                .entry(name.to_string())
                .or_default()
                .push(value);
        }
    }

    /// Registers the cluster's node layout for timeline accounting:
    /// `(pool, node, capacity)` triples. The engine calls this once at
    /// the start of a traced run.
    pub fn timeline_nodes(&self, nodes: &[(usize, usize, usize)]) {
        if let Some(mut g) = self.lock() {
            g.timeline.nodes = nodes
                .iter()
                .map(|&(pool, node, capacity)| NodeSlot {
                    pool,
                    node,
                    capacity,
                })
                .collect();
        }
    }

    /// Records one job-state transition on the timeline.
    pub fn job_event(&self, time_s: f64, job: u64, kind: JobEventKind) {
        if let Some(mut g) = self.lock() {
            let seq = g.timeline.events.len() as u64;
            g.timeline.events.push(JobEvent {
                seq,
                time_s,
                job,
                kind,
            });
            g.timeline.end_s = g.timeline.end_s.max(time_s);
        }
    }

    /// Records one GPU acquire/release with its node layout.
    pub fn alloc_event(
        &self,
        time_s: f64,
        job: u64,
        pool: usize,
        node_gpus: &[(usize, usize)],
        acquire: bool,
    ) {
        if let Some(mut g) = self.lock() {
            g.timeline.allocs.push(AllocEvent {
                time_s,
                job,
                pool,
                node_gpus: node_gpus.to_vec(),
                acquire,
            });
            g.timeline.end_s = g.timeline.end_s.max(time_s);
        }
    }

    /// Closes the timeline at the run's final time; open job intervals
    /// end here.
    pub fn timeline_close(&self, end_s: f64) {
        if let Some(mut g) = self.lock() {
            g.timeline.end_s = g.timeline.end_s.max(end_s);
        }
    }

    /// Starts a wall-clock span; the guard records on drop. Disabled
    /// handles never read the clock.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            obs: (self.inner.is_some() || self.metrics.is_some()).then(|| (self, Instant::now())),
            name,
        }
    }

    /// Snapshots everything recorded so far into a [`TraceReport`].
    /// Registry-backed counters and histograms are merged in, so a
    /// registry-attached run reports the same counter totals an
    /// unattached one would.
    #[must_use]
    pub fn report(&self) -> TraceReport {
        let mut report = self
            .lock()
            .map_or_else(TraceReport::default, |g| TraceReport {
                decisions: g.decisions.clone(),
                counters: g.counters.clone(),
                gauges: g.gauges.clone(),
                histograms: g
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), HistStats::from_samples(v)))
                    .collect(),
                spans: g.spans.clone(),
                timeline: g.timeline.clone(),
            });
        if let Some(reg) = &self.metrics {
            report.counters.extend(reg.counters_snapshot());
            report.histograms.extend(reg.histograms_snapshot());
        }
        report
    }
}

/// RAII wall-clock span; records its elapsed time on drop.
pub struct Span<'a> {
    obs: Option<(&'a Obs, Instant)>,
    name: &'static str,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((obs, start)) = self.obs.take() {
            let dt = start.elapsed().as_secs_f64();
            if let Some(mut g) = obs.lock() {
                let s = g.spans.entry(self.name.to_string()).or_default();
                s.count += 1;
                s.total_s += dt;
                s.max_s = s.max_s.max(dt);
            }
            // Live plane: the same stage timing as a mergeable
            // histogram, readable while the run is still going.
            if let Some(reg) = &obs.metrics {
                reg.observe(self.name, dt);
            }
        }
    }
}

/// Everything one traced run recorded, returned alongside the metrics.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// The full decision log, in recording order.
    pub decisions: Vec<Decision>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge sample series.
    pub gauges: BTreeMap<String, Vec<(f64, f64)>>,
    /// Histogram summaries (with p50/p95/p99 percentiles).
    pub histograms: BTreeMap<String, HistStats>,
    /// Span wall-clock summaries (the only non-deterministic content).
    pub spans: BTreeMap<String, SpanStats>,
    /// Job-lifecycle timeline and GPU allocation events.
    pub timeline: Timeline,
}

impl TraceReport {
    /// Whether nothing was recorded (the disabled-run report).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.timeline.is_empty()
    }

    /// Renders histogram summaries as deterministic percentile lines
    /// (`name count mean p50 p95 p99 max`), one per histogram, instead
    /// of a raw sample dump.
    #[must_use]
    pub fn histogram_lines(&self) -> String {
        let mut out = String::new();
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name} count={} mean={:.6} p50={:.6} p95={:.6} p99={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max
            );
        }
        out
    }

    /// Decision counts per `kind/reason` key, sorted by key.
    #[must_use]
    pub fn decision_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for d in &self.decisions {
            *out.entry(d.reason_key()).or_insert(0) += 1;
        }
        out
    }

    /// The full decision log as JSON Lines (one object per decision).
    #[must_use]
    pub fn decisions_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }

    /// Deterministic snapshot text for the golden-trace harness: decision
    /// counts per `kind/reason`, then the first and last `edge` decisions
    /// in compact form. Span wall-times are deliberately excluded.
    #[must_use]
    pub fn golden_summary(&self, edge: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "decisions total {}", self.decisions.len());
        for (key, n) in self.decision_counts() {
            let _ = writeln!(out, "count {key} {n}");
        }
        let head = self.decisions.iter().take(edge);
        for d in head {
            let _ = writeln!(out, "first {}", d.compact());
        }
        if self.decisions.len() > edge {
            let tail_from = self.decisions.len().saturating_sub(edge).max(edge);
            for d in &self.decisions[tail_from..] {
                let _ = writeln!(out, "last {}", d.compact());
            }
        }
        // Compact per-run time-in-state footer: timeline regressions
        // fail the snapshot just like decision regressions do.
        if !self.timeline.is_empty() {
            out.push_str(&self.timeline.golden_footer());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.context(1.0, "p", "round");
        obs.decision(Decision::place(1, 0, 4));
        obs.incr("c", 3);
        obs.gauge("g", 0.0, 1.0);
        obs.observe("h", 2.0);
        obs.timeline_nodes(&[(0, 0, 8)]);
        obs.job_event(0.0, 1, JobEventKind::Submit);
        obs.alloc_event(1.0, 1, 0, &[(0, 4)], true);
        obs.timeline_close(10.0);
        drop(obs.span("s"));
        assert_eq!(obs.decision_count(), 0);
        assert!(obs.report().is_empty());
    }

    #[test]
    fn decisions_are_stamped_in_order() {
        let obs = Obs::enabled();
        obs.context(10.0, "Arena", "arrival");
        obs.decision(Decision::place(1, 0, 8).with_score(0.9).why("best-cell"));
        obs.context(20.0, "Arena", "round");
        obs.decision(Decision::drop(2).why("no-feasible-cell"));
        let r = obs.report();
        assert_eq!(r.decisions.len(), 2);
        assert_eq!(r.decisions[0].seq, 0);
        assert_eq!(r.decisions[0].time_s, 10.0);
        assert_eq!(r.decisions[0].trigger, "arrival");
        assert_eq!(r.decisions[1].seq, 1);
        assert_eq!(r.decisions[1].kind, DecisionKind::Drop);
        assert_eq!(r.decisions[1].reason, "no-feasible-cell");
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.context(0.0, "p", "round");
        clone.decision(Decision::evict(5).why("pressure"));
        assert_eq!(obs.decision_count(), 1);
        assert_eq!(obs.decisions_after(0)[0].job, 5);
        assert!(obs.decisions_after(1).is_empty());
    }

    #[test]
    fn counters_gauges_histograms() {
        let obs = Obs::enabled();
        obs.incr("a", 1);
        obs.incr("a", 2);
        obs.gauge("q", 0.0, 3.0);
        obs.gauge("q", 1.0, 4.0);
        obs.observe("h", 1.0);
        obs.observe("h", 5.0);
        let r = obs.report();
        assert_eq!(r.counters["a"], 3);
        assert_eq!(r.gauges["q"], vec![(0.0, 3.0), (1.0, 4.0)]);
        let h = r.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let obs = Obs::enabled();
        for v in 1..=100 {
            obs.observe("h", f64::from(v));
        }
        let h = obs.report().histograms["h"];
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        // Single sample: every percentile is that sample.
        let one = HistStats::from_samples(&[7.0]);
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
        assert_eq!(one.count, 1);
        assert_eq!((one.min, one.max, one.sum), (7.0, 7.0, 7.0));
        assert_eq!(HistStats::from_samples(&[]), HistStats::default());
        let lines = obs.report().histogram_lines();
        assert!(lines.contains("h count=100"));
        assert!(lines.contains("p95=95.000000"));
    }

    #[test]
    fn from_samples_discards_non_finite() {
        // NaN anywhere in the input must never reach a percentile: a
        // shard-merged histogram with one degenerate sample would
        // otherwise poison the whole exposition line.
        let h = HistStats::from_samples(&[3.0, f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(h.count, 3);
        assert_eq!((h.min, h.max, h.sum), (1.0, 3.0, 6.0));
        for v in [h.p50, h.p95, h.p99, h.mean()] {
            assert!(v.is_finite(), "non-finite summary field");
        }
        assert_eq!(h.p99, 3.0);
        // All-NaN input collapses to the empty default, not NaN stats.
        let all_nan = HistStats::from_samples(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan, HistStats::default());
        assert_eq!(all_nan.mean(), 0.0);
        // -inf sorts first under total_cmp; it must be dropped too.
        let neg = HistStats::from_samples(&[f64::NEG_INFINITY, 5.0]);
        assert_eq!((neg.count, neg.min, neg.p50), (1, 5.0, 5.0));
    }

    #[test]
    fn registry_backed_handle_matches_trace_counters() {
        // The same instrumentation calls against a registry-backed
        // handle surface identical counter totals in the report.
        let plain = Obs::enabled();
        let reg = Arc::new(MetricsRegistry::new(8));
        let fast = Obs::enabled().with_metrics(Arc::clone(&reg));
        for obs in [&plain, &fast] {
            obs.incr("sim.event.arrival", 2);
            obs.incr("sim.event.arrival", 1);
            obs.incr("sched.pass", 1);
            obs.observe("lat", 0.5);
            obs.gauge("depth", 0.0, 4.0);
        }
        assert_eq!(plain.report().counters, fast.report().counters);
        assert_eq!(plain.counters_snapshot(), fast.counters_snapshot());
        assert_eq!(fast.report().histograms["lat"].count, 1);
        assert_eq!(reg.counter("sched.pass").get(), 1);
        assert_eq!(reg.gauge("depth").get(), 4.0);
        // Decisions mirror into the flight recorder with full stamps.
        fast.context(9.0, "Arena", "round");
        fast.decision(Decision::place(3, 0, 4).with_score(0.5).why("best-cell"));
        let ring = reg.flight().recent(10);
        assert_eq!(ring.len(), 1);
        assert_eq!(fast.report().decisions, ring);
        assert_eq!(fast.report().decisions_jsonl(), reg.flight().dump_jsonl(10));
        // Metrics-only mode records no decisions but keeps counters.
        let lite = Obs::metrics_only(Arc::new(MetricsRegistry::new(8)));
        assert!(!lite.is_enabled());
        lite.decision(Decision::drop(1).why("r"));
        lite.incr("c", 5);
        assert_eq!(lite.decision_count(), 0);
        assert_eq!(lite.counters_snapshot()["c"], 5);
        drop(lite.span("stage"));
        assert_eq!(
            lite.metrics().unwrap().histograms_snapshot()["stage"].count,
            1
        );
    }

    #[test]
    fn timeline_records_through_handle() {
        let obs = Obs::enabled();
        obs.timeline_nodes(&[(0, 0, 8), (0, 1, 8)]);
        obs.job_event(0.0, 3, JobEventKind::Submit);
        obs.job_event(
            5.0,
            3,
            JobEventKind::Place {
                pool: 0,
                gpus: 4,
                prev: None,
                opportunistic: false,
            },
        );
        obs.alloc_event(5.0, 3, 0, &[(0, 4)], true);
        obs.job_event(10.0, 3, JobEventKind::RunStart);
        obs.timeline_close(50.0);
        let t = obs.report().timeline;
        t.validate().unwrap();
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.allocs.len(), 1);
        assert_eq!(t.end_s, 50.0);
        let acc = t.accounts()[&3];
        assert_eq!(acc.queue_s, 5.0);
        assert_eq!(acc.placed_s, 5.0);
        assert_eq!(acc.run_s, 40.0);
    }

    #[test]
    fn moving_from_serialises_and_renders() {
        let d = Decision::place(4, 1, 8).moving_from(0, 4).why("rescale");
        let js = d.to_json();
        assert!(js.contains("\"prev_pool\":0,\"prev_gpus\":4"));
        assert!(d.compact().contains("from=0/4"));
        // Without a previous placement neither field appears.
        let plain = Decision::place(4, 1, 8).why("x");
        assert!(!plain.to_json().contains("prev_pool"));
        assert!(!plain.compact().contains("from="));
    }

    #[test]
    fn spans_record_on_drop() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("work");
        }
        {
            let _g = obs.span("work");
        }
        let r = obs.report();
        let s = r.spans["work"];
        assert_eq!(s.count, 2);
        assert!(s.total_s >= 0.0);
        assert!(s.max_s <= s.total_s + 1e-12);
    }

    #[test]
    fn json_line_is_wellformed() {
        let obs = Obs::enabled();
        obs.context(2.5, "Gavel", "round");
        obs.decision(Decision::place(3, 1, 4).with_score(0.5).why("best-rate"));
        obs.decision(Decision::requeue(3).why("capacity-race"));
        let jsonl = obs.report().decisions_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"kind\":\"place\""));
        assert!(lines[0].contains("\"score\":0.5"));
        assert!(lines[1].contains("\"pool\":null"));
        assert!(lines[1].contains("\"reason\":\"capacity-race\""));
    }

    #[test]
    fn non_finite_scores_serialise_as_null() {
        let d = Decision::place(1, 0, 2).with_score(f64::INFINITY);
        assert!(d.to_json().contains("\"score\":null"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn golden_summary_counts_and_edges() {
        let obs = Obs::enabled();
        obs.context(0.0, "FCFS", "round");
        for i in 0..12 {
            obs.decision(Decision::place(i, 0, 2).why("head-of-line"));
        }
        obs.decision(Decision::drop(99).why("infeasible"));
        let s = obs.report().golden_summary(5);
        assert!(s.contains("decisions total 13"));
        assert!(s.contains("count place/head-of-line 12"));
        assert!(s.contains("count drop/infeasible 1"));
        assert_eq!(s.matches("first ").count(), 5);
        assert_eq!(s.matches("last ").count(), 5);
    }

    #[test]
    fn golden_summary_short_log_has_no_overlap() {
        let obs = Obs::enabled();
        obs.context(0.0, "p", "round");
        for i in 0..3 {
            obs.decision(Decision::drop(i).why("r"));
        }
        let s = obs.report().golden_summary(5);
        assert_eq!(s.matches("first ").count(), 3);
        assert_eq!(s.matches("last ").count(), 0);
    }
}
