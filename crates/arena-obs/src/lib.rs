//! Deterministic observability for the Arena stack.
//!
//! Every layer of the reproduction — the simulator's event loop, each
//! scheduling policy, the Cell estimator — answers the same questions
//! through this crate: *why* was a job placed, dropped or requeued, how
//! often do the caches hit, and where does wall-time go. It is built from
//! four primitives:
//!
//! * [`Decision`] — a structured provenance record, one per scheduling
//!   action (and per engine-side eviction/requeue), carrying the chosen
//!   pool/GPU count, the candidate score and a static reason string.
//! * **Counters** ([`Obs::incr`]) — monotonically increasing event tallies.
//! * **Gauges** ([`Obs::gauge`]) — `(sim-time, value)` samples of a level,
//!   e.g. queue depth at every scheduling pass.
//! * **Spans** ([`Obs::span`]) and **histograms** ([`Obs::observe`]) —
//!   wall-clock timers and value distributions.
//!
//! The handle is cheap to clone and defaults to [`Obs::disabled`], in
//! which every recording call is a no-op returning immediately: the
//! instrumented code paths compute nothing extra, so a disabled run is
//! bitwise identical to an uninstrumented one. Everything except span
//! wall-times is **deterministic**: two runs of the same simulation
//! produce the same decision log, counters and gauges, which is what the
//! golden-trace test harness snapshots.
//!
//! # Example
//!
//! ```
//! use arena_obs::{Decision, Obs};
//!
//! let obs = Obs::enabled();
//! obs.context(5.0, "Arena", "arrival");
//! obs.decision(Decision::place(7, 0, 8).with_score(0.93).why("best-cell"));
//! obs.incr("sched.pass", 1);
//! let report = obs.report();
//! assert_eq!(report.decisions.len(), 1);
//! assert_eq!(report.decisions[0].policy, "Arena");
//! assert_eq!(report.counters["sched.pass"], 1);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// What kind of action a [`Decision`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionKind {
    /// A job was (re)placed on a pool at a GPU count.
    Place,
    /// A job was stopped and returned to the queue by the policy.
    Evict,
    /// A job was permanently rejected.
    Drop,
    /// The engine returned a job to the queue (node failure, capacity
    /// race, infeasible placement) — provenance the policy never sees.
    Requeue,
}

impl DecisionKind {
    /// Stable lowercase label used in logs and snapshots.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Place => "place",
            DecisionKind::Evict => "evict",
            DecisionKind::Drop => "drop",
            DecisionKind::Requeue => "requeue",
        }
    }
}

/// One scheduling decision with full provenance.
///
/// Built with [`Decision::place`] / [`Decision::evict`] /
/// [`Decision::drop`] / [`Decision::requeue`] plus the builder methods;
/// `seq`, `time_s`, `policy` and `trigger` are stamped by
/// [`Obs::decision`] from the context the engine set.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Global sequence number within the run (stamped on record).
    pub seq: u64,
    /// Simulation time of the scheduling pass, seconds (stamped).
    pub time_s: f64,
    /// Deciding policy's display name (stamped), `"engine"` for
    /// engine-originated records.
    pub policy: String,
    /// The event that fired the pass (stamped): `arrival`, `departure`,
    /// `round`, `node-failure`, `node-repair`.
    pub trigger: String,
    /// Action kind.
    pub kind: DecisionKind,
    /// Subject job id.
    pub job: u64,
    /// Target pool (placements only).
    pub pool: Option<usize>,
    /// Target GPU count (placements only).
    pub gpus: Option<usize>,
    /// Whether the placement is opportunistic (evictable backfill).
    pub opportunistic: bool,
    /// The candidate score the decision was taken on (policy-specific:
    /// normalised throughput for Arena, profiled rate for Gavel, …).
    pub score: Option<f64>,
    /// Why: a stable, policy-specific reason label.
    pub reason: &'static str,
}

impl Decision {
    fn new(kind: DecisionKind, job: u64) -> Self {
        Decision {
            seq: 0,
            time_s: 0.0,
            policy: String::new(),
            trigger: String::new(),
            kind,
            job,
            pool: None,
            gpus: None,
            opportunistic: false,
            score: None,
            reason: "",
        }
    }

    /// A placement of `job` on `gpus` devices of `pool`.
    #[must_use]
    pub fn place(job: u64, pool: usize, gpus: usize) -> Self {
        let mut d = Self::new(DecisionKind::Place, job);
        d.pool = Some(pool);
        d.gpus = Some(gpus);
        d
    }

    /// A policy eviction of `job`.
    #[must_use]
    pub fn evict(job: u64) -> Self {
        Self::new(DecisionKind::Evict, job)
    }

    /// A permanent rejection of `job`.
    #[must_use]
    pub fn drop(job: u64) -> Self {
        Self::new(DecisionKind::Drop, job)
    }

    /// An engine-side requeue of `job`.
    #[must_use]
    pub fn requeue(job: u64) -> Self {
        Self::new(DecisionKind::Requeue, job)
    }

    /// Attaches the candidate score the decision was taken on.
    #[must_use]
    pub fn with_score(mut self, score: f64) -> Self {
        self.score = Some(score);
        self
    }

    /// Marks the placement opportunistic.
    #[must_use]
    pub fn opportunistic(mut self) -> Self {
        self.opportunistic = true;
        self
    }

    /// Attaches the reason label.
    #[must_use]
    pub fn why(mut self, reason: &'static str) -> Self {
        self.reason = reason;
        self
    }

    /// Stable `kind/reason` key used for per-reason accounting.
    #[must_use]
    pub fn reason_key(&self) -> String {
        format!("{}/{}", self.kind.as_str(), self.reason)
    }

    /// One-line JSON object (hand-rolled: this crate is dependency-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push('{');
        let _ = write!(s, "\"seq\":{}", self.seq);
        let _ = write!(s, ",\"time_s\":{}", json_f64(self.time_s));
        let _ = write!(s, ",\"policy\":\"{}\"", json_escape(&self.policy));
        let _ = write!(s, ",\"trigger\":\"{}\"", json_escape(&self.trigger));
        let _ = write!(s, ",\"kind\":\"{}\"", self.kind.as_str());
        let _ = write!(s, ",\"job\":{}", self.job);
        match self.pool {
            Some(p) => {
                let _ = write!(s, ",\"pool\":{p}");
            }
            None => s.push_str(",\"pool\":null"),
        }
        match self.gpus {
            Some(g) => {
                let _ = write!(s, ",\"gpus\":{g}");
            }
            None => s.push_str(",\"gpus\":null"),
        }
        let _ = write!(s, ",\"opportunistic\":{}", self.opportunistic);
        match self.score {
            Some(v) => {
                let _ = write!(s, ",\"score\":{}", json_f64(v));
            }
            None => s.push_str(",\"score\":null"),
        }
        let _ = write!(s, ",\"reason\":\"{}\"", json_escape(self.reason));
        s.push('}');
        s
    }

    /// Compact one-line rendering for snapshots and debugging.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut s = format!(
            "t={} {} {} {} j{}",
            trim_f64(self.time_s),
            self.policy,
            self.trigger,
            self.kind.as_str(),
            self.job
        );
        if let (Some(p), Some(g)) = (self.pool, self.gpus) {
            let _ = write!(s, " pool={p} gpus={g}");
        }
        if self.opportunistic {
            s.push_str(" opp");
        }
        let _ = write!(s, " reason={}", self.reason);
        s
    }
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float rendering (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Deterministic short float rendering for snapshot lines: times in this
/// simulator are sums of exact config constants, so plain `{}` printing
/// is stable across runs and platforms.
fn trim_f64(v: f64) -> String {
    format!("{v}")
}

/// Aggregated wall-clock of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock, seconds.
    pub total_s: f64,
    /// Longest single span, seconds.
    pub max_s: f64,
}

/// Summary of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistStats {
    /// Recorded values.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl HistStats {
    /// Mean value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    // Context stamped onto decisions.
    time_s: f64,
    policy: String,
    trigger: String,
    seq: u64,
    decisions: Vec<Decision>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(f64, f64)>>,
    histograms: BTreeMap<String, HistStats>,
    spans: BTreeMap<String, SpanStats>,
}

/// The observability handle.
///
/// Cheap to clone (an `Option<Arc>`); [`Obs::disabled`] carries no state
/// at all and makes every recording method a no-op.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Obs {
    /// The default no-op handle: nothing is recorded, nothing is paid.
    #[must_use]
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A recording handle with empty state.
    #[must_use]
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Sets the decision-stamping context: simulation time, deciding
    /// policy and the event that fired the pass. The engine calls this
    /// before every dispatch; recorded decisions inherit the values.
    pub fn context(&self, time_s: f64, policy: &str, trigger: &str) {
        if let Some(mut g) = self.lock() {
            g.time_s = time_s;
            if g.policy != policy {
                g.policy = policy.to_string();
            }
            if g.trigger != trigger {
                g.trigger = trigger.to_string();
            }
        }
    }

    /// Records a decision, stamping seq/time/policy/trigger from the
    /// current context.
    pub fn decision(&self, mut d: Decision) {
        if let Some(mut g) = self.lock() {
            d.seq = g.seq;
            g.seq += 1;
            d.time_s = g.time_s;
            d.policy.clone_from(&g.policy);
            d.trigger.clone_from(&g.trigger);
            g.decisions.push(d);
        }
    }

    /// Number of decisions recorded so far.
    #[must_use]
    pub fn decision_count(&self) -> usize {
        self.lock().map_or(0, |g| g.decisions.len())
    }

    /// Clones the decisions recorded at or after index `from`.
    #[must_use]
    pub fn decisions_after(&self, from: usize) -> Vec<Decision> {
        self.lock().map_or_else(Vec::new, |g| {
            g.decisions.get(from..).unwrap_or(&[]).to_vec()
        })
    }

    /// Increments a counter.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(mut g) = self.lock() {
            match g.counters.get_mut(name) {
                Some(v) => *v += by,
                None => {
                    g.counters.insert(name.to_string(), by);
                }
            }
        }
    }

    /// Records one `(time, value)` sample of a gauge.
    pub fn gauge(&self, name: &str, time_s: f64, value: f64) {
        if let Some(mut g) = self.lock() {
            match g.gauges.get_mut(name) {
                Some(v) => v.push((time_s, value)),
                None => {
                    g.gauges.insert(name.to_string(), vec![(time_s, value)]);
                }
            }
        }
    }

    /// Records a value into a histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(mut g) = self.lock() {
            let h = g.histograms.entry(name.to_string()).or_default();
            if h.count == 0 {
                h.min = value;
                h.max = value;
            } else {
                h.min = h.min.min(value);
                h.max = h.max.max(value);
            }
            h.count += 1;
            h.sum += value;
        }
    }

    /// Starts a wall-clock span; the guard records on drop. Disabled
    /// handles never read the clock.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            obs: self.inner.as_ref().map(|_| (self, Instant::now())),
            name,
        }
    }

    /// Snapshots everything recorded so far into a [`TraceReport`].
    #[must_use]
    pub fn report(&self) -> TraceReport {
        self.lock()
            .map_or_else(TraceReport::default, |g| TraceReport {
                decisions: g.decisions.clone(),
                counters: g.counters.clone(),
                gauges: g.gauges.clone(),
                histograms: g.histograms.clone(),
                spans: g.spans.clone(),
            })
    }
}

/// RAII wall-clock span; records its elapsed time on drop.
pub struct Span<'a> {
    obs: Option<(&'a Obs, Instant)>,
    name: &'static str,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((obs, start)) = self.obs.take() {
            let dt = start.elapsed().as_secs_f64();
            if let Some(mut g) = obs.lock() {
                let s = g.spans.entry(self.name.to_string()).or_default();
                s.count += 1;
                s.total_s += dt;
                s.max_s = s.max_s.max(dt);
            }
        }
    }
}

/// Everything one traced run recorded, returned alongside the metrics.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// The full decision log, in recording order.
    pub decisions: Vec<Decision>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge sample series.
    pub gauges: BTreeMap<String, Vec<(f64, f64)>>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistStats>,
    /// Span wall-clock summaries (the only non-deterministic content).
    pub spans: BTreeMap<String, SpanStats>,
}

impl TraceReport {
    /// Whether nothing was recorded (the disabled-run report).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Decision counts per `kind/reason` key, sorted by key.
    #[must_use]
    pub fn decision_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for d in &self.decisions {
            *out.entry(d.reason_key()).or_insert(0) += 1;
        }
        out
    }

    /// The full decision log as JSON Lines (one object per decision).
    #[must_use]
    pub fn decisions_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }

    /// Deterministic snapshot text for the golden-trace harness: decision
    /// counts per `kind/reason`, then the first and last `edge` decisions
    /// in compact form. Span wall-times are deliberately excluded.
    #[must_use]
    pub fn golden_summary(&self, edge: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "decisions total {}", self.decisions.len());
        for (key, n) in self.decision_counts() {
            let _ = writeln!(out, "count {key} {n}");
        }
        let head = self.decisions.iter().take(edge);
        for d in head {
            let _ = writeln!(out, "first {}", d.compact());
        }
        if self.decisions.len() > edge {
            let tail_from = self.decisions.len().saturating_sub(edge).max(edge);
            for d in &self.decisions[tail_from..] {
                let _ = writeln!(out, "last {}", d.compact());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.context(1.0, "p", "round");
        obs.decision(Decision::place(1, 0, 4));
        obs.incr("c", 3);
        obs.gauge("g", 0.0, 1.0);
        obs.observe("h", 2.0);
        drop(obs.span("s"));
        assert_eq!(obs.decision_count(), 0);
        assert!(obs.report().is_empty());
    }

    #[test]
    fn decisions_are_stamped_in_order() {
        let obs = Obs::enabled();
        obs.context(10.0, "Arena", "arrival");
        obs.decision(Decision::place(1, 0, 8).with_score(0.9).why("best-cell"));
        obs.context(20.0, "Arena", "round");
        obs.decision(Decision::drop(2).why("no-feasible-cell"));
        let r = obs.report();
        assert_eq!(r.decisions.len(), 2);
        assert_eq!(r.decisions[0].seq, 0);
        assert_eq!(r.decisions[0].time_s, 10.0);
        assert_eq!(r.decisions[0].trigger, "arrival");
        assert_eq!(r.decisions[1].seq, 1);
        assert_eq!(r.decisions[1].kind, DecisionKind::Drop);
        assert_eq!(r.decisions[1].reason, "no-feasible-cell");
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.context(0.0, "p", "round");
        clone.decision(Decision::evict(5).why("pressure"));
        assert_eq!(obs.decision_count(), 1);
        assert_eq!(obs.decisions_after(0)[0].job, 5);
        assert!(obs.decisions_after(1).is_empty());
    }

    #[test]
    fn counters_gauges_histograms() {
        let obs = Obs::enabled();
        obs.incr("a", 1);
        obs.incr("a", 2);
        obs.gauge("q", 0.0, 3.0);
        obs.gauge("q", 1.0, 4.0);
        obs.observe("h", 1.0);
        obs.observe("h", 5.0);
        let r = obs.report();
        assert_eq!(r.counters["a"], 3);
        assert_eq!(r.gauges["q"], vec![(0.0, 3.0), (1.0, 4.0)]);
        let h = r.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn spans_record_on_drop() {
        let obs = Obs::enabled();
        {
            let _g = obs.span("work");
        }
        {
            let _g = obs.span("work");
        }
        let r = obs.report();
        let s = r.spans["work"];
        assert_eq!(s.count, 2);
        assert!(s.total_s >= 0.0);
        assert!(s.max_s <= s.total_s + 1e-12);
    }

    #[test]
    fn json_line_is_wellformed() {
        let obs = Obs::enabled();
        obs.context(2.5, "Gavel", "round");
        obs.decision(Decision::place(3, 1, 4).with_score(0.5).why("best-rate"));
        obs.decision(Decision::requeue(3).why("capacity-race"));
        let jsonl = obs.report().decisions_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"kind\":\"place\""));
        assert!(lines[0].contains("\"score\":0.5"));
        assert!(lines[1].contains("\"pool\":null"));
        assert!(lines[1].contains("\"reason\":\"capacity-race\""));
    }

    #[test]
    fn non_finite_scores_serialise_as_null() {
        let d = Decision::place(1, 0, 2).with_score(f64::INFINITY);
        assert!(d.to_json().contains("\"score\":null"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn golden_summary_counts_and_edges() {
        let obs = Obs::enabled();
        obs.context(0.0, "FCFS", "round");
        for i in 0..12 {
            obs.decision(Decision::place(i, 0, 2).why("head-of-line"));
        }
        obs.decision(Decision::drop(99).why("infeasible"));
        let s = obs.report().golden_summary(5);
        assert!(s.contains("decisions total 13"));
        assert!(s.contains("count place/head-of-line 12"));
        assert!(s.contains("count drop/infeasible 1"));
        assert_eq!(s.matches("first ").count(), 5);
        assert_eq!(s.matches("last ").count(), 5);
    }

    #[test]
    fn golden_summary_short_log_has_no_overlap() {
        let obs = Obs::enabled();
        obs.context(0.0, "p", "round");
        for i in 0..3 {
            obs.decision(Decision::drop(i).why("r"));
        }
        let s = obs.report().golden_summary(5);
        assert_eq!(s.matches("first ").count(), 3);
        assert_eq!(s.matches("last ").count(), 0);
    }
}
