//! Lock-free live telemetry: the metrics registry and the flight
//! recorder behind `arena-server`'s `query metrics` / `watch` / `dump`.
//!
//! The original [`Obs`](crate::Obs) primitives aggregate under one
//! `Mutex` and only surface at end-of-run `TraceReport` time — fine for
//! batch simulation, unacceptable inside a resident daemon's sharded
//! decision loop. This module adds an **always-on, lock-free plane**:
//!
//! * [`Counter`] / [`Gauge`] — one cache-line-padded `AtomicU64` each,
//!   so two hot counters never false-share.
//! * [`Histogram`] — a fixed array of 64 log2-bucketed atomic counters
//!   plus atomic count/sum/min/max. Recording is `fetch_add` +
//!   `fetch_min`/`fetch_max`; snapshots from different shards merge by
//!   bucket-wise addition. Log2 buckets cover ten decades of latency
//!   (1 ns … ~18 s and beyond) in 64 fixed slots with ≤2x relative
//!   error and no allocation, which is why they are used instead of
//!   exact sample vectors.
//! * [`FlightRecorder`] — a fixed-capacity ring of seqlock-versioned
//!   word slots holding the last N decisions in POD form, dumped
//!   post-mortem as JSONL byte-identical to the decision log.
//! * [`MetricsRegistry`] — name → handle maps published through
//!   [`RcuCell`], so `incr("name")`-style lookups are wait-free;
//!   registration of a new name is the only operation that takes a
//!   lock, and it happens at most once per distinct metric name.
//!
//! Nothing on the record path takes a `Mutex` or allocates a `String`:
//! counters, gauges and histogram observations are a handful of atomic
//! ops; flight-recorder writes store pre-interned ids (interning
//! happens on the cold context-change path).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arena_runtime::RcuCell;

use crate::{Decision, DecisionKind, HistStats};

/// Number of log2 buckets per histogram. Bucket `k` (k ≥ 1) holds
/// values whose nanosecond tick count has bit-length `k`, i.e. ticks in
/// `[2^(k-1), 2^k)`; bucket 0 holds exact zeros. Values past bucket 62
/// clamp into the last bucket.
pub const HIST_BUCKETS: usize = 64;

/// One cache line per counter: adjacent hot counters in the registry
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PadAtomic(AtomicU64);

/// A monotonically increasing atomic counter handle.
///
/// Cloning shares the cell; `incr` is a single relaxed `fetch_add`.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<PadAtomic>,
}

impl Counter {
    /// Adds `by` to the counter.
    pub fn incr(&self, by: u64) {
        self.cell.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.0.load(Ordering::Relaxed)
    }
}

/// A last-value atomic gauge handle storing `f64` bits.
///
/// Non-finite values are recorded as `0` so exposition output never
/// carries `NaN`/`Inf` samples.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<PadAtomic>,
}

impl Gauge {
    /// Stores `value` (non-finite values store `0`).
    pub fn set(&self, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.cell.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.0.load(Ordering::Relaxed))
    }
}

/// Shared state of one histogram; padded so the header atomics live on
/// their own line and the bucket array packs behind them.
#[derive(Debug)]
#[repr(align(64))]
struct HistCore {
    count: AtomicU64,
    /// Sum in nanosecond ticks: `fetch_add` keeps it exact and
    /// monotone, which the concurrent-reader tests rely on.
    sum_ticks: AtomicU64,
    min_ticks: AtomicU64,
    max_ticks: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            count: AtomicU64::new(0),
            sum_ticks: AtomicU64::new(0),
            min_ticks: AtomicU64::new(u64::MAX),
            max_ticks: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Converts a value in seconds (or any non-negative unit) to integer
/// nanosecond ticks; negative and non-finite values clamp to zero.
fn to_ticks(value: f64) -> u64 {
    if value.is_finite() && value > 0.0 {
        // `as` saturates at u64::MAX for huge values.
        (value * 1e9).round() as u64
    } else {
        0
    }
}

fn ticks_to_value(ticks: u64) -> f64 {
    ticks as f64 / 1e9
}

/// Bucket index for a tick count: 0 for zero, else bit length clamped
/// to the last bucket.
#[must_use]
pub fn bucket_of(ticks: u64) -> usize {
    if ticks == 0 {
        0
    } else {
        ((64 - ticks.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `idx` in value units (seconds).
#[must_use]
pub fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        0.0
    } else if idx >= HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        ticks_to_value((1_u64 << idx) - 1)
    }
}

/// A log2-bucketed atomic histogram handle.
///
/// Recording is four relaxed atomic ops; no lock, no allocation.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    /// Records one value (seconds for latency histograms; any
    /// non-negative unit works — ticks are `value * 1e9`).
    pub fn observe(&self, value: f64) {
        self.observe_ticks(to_ticks(value));
    }

    /// Records one pre-converted tick count.
    pub fn observe_ticks(&self, ticks: u64) {
        let c = &*self.core;
        c.buckets[bucket_of(ticks)].fetch_add(1, Ordering::Relaxed);
        c.sum_ticks.fetch_add(ticks, Ordering::Relaxed);
        c.min_ticks.fetch_min(ticks, Ordering::Relaxed);
        c.max_ticks.fetch_max(ticks, Ordering::Relaxed);
        // Count last: a concurrent reader that sees the new count also
        // wants to see a sum at least as new, and x86/ARM RMW ordering
        // plus the monotone-sum test tolerance make Relaxed adequate —
        // consistency is asserted as "sum and count never decrease".
        c.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let c = &*self.core;
        HistSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            count: c.count.load(Ordering::Relaxed),
            sum_ticks: c.sum_ticks.load(Ordering::Relaxed),
            min_ticks: c.min_ticks.load(Ordering::Relaxed),
            max_ticks: c.max_ticks.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of one histogram's buckets, mergeable across shards.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Per-bucket counts (not cumulative).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Exact sum in ticks.
    pub sum_ticks: u64,
    /// Smallest recorded tick count (`u64::MAX` when empty).
    pub min_ticks: u64,
    /// Largest recorded tick count.
    pub max_ticks: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ticks: 0,
            min_ticks: u64::MAX,
            max_ticks: 0,
        }
    }
}

impl HistSnapshot {
    /// Adds another shard's snapshot into this one (bucket-wise).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ticks += other.sum_ticks;
        self.min_ticks = self.min_ticks.min(other.min_ticks);
        self.max_ticks = self.max_ticks.max(other.max_ticks);
    }

    /// Sum in value units.
    #[must_use]
    pub fn sum(&self) -> f64 {
        ticks_to_value(self.sum_ticks)
    }

    /// Nearest-rank quantile approximated by the bucket upper bound,
    /// clamped into the exact `[min, max]` envelope. Never NaN: an
    /// empty snapshot answers `0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0_u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = ticks_to_value(self.min_ticks);
                let hi = ticks_to_value(self.max_ticks);
                return bucket_upper(idx).clamp(lo, hi);
            }
        }
        ticks_to_value(self.max_ticks)
    }

    /// Summarises into the shared [`HistStats`] shape; all fields are
    /// finite for every possible snapshot (empty included).
    #[must_use]
    pub fn stats(&self) -> HistStats {
        if self.count == 0 {
            return HistStats::default();
        }
        HistStats {
            count: self.count,
            sum: self.sum(),
            min: ticks_to_value(self.min_ticks),
            max: ticks_to_value(self.max_ticks),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

// --- flight recorder -------------------------------------------------

/// Words per flight-recorder slot (one encoded [`Decision`]).
const FLIGHT_WORDS: usize = 8;

/// One ring slot: a seqlock version plus the encoded record. An odd
/// version means a write is in progress; an even version `2 * (i + 1)`
/// means the slot holds record number `i` completely.
#[derive(Debug)]
struct FlightSlot {
    version: AtomicU64,
    words: [AtomicU64; FLIGHT_WORDS],
}

/// Interned strings referenced by ring entries. Touched only when a
/// *new* policy/trigger/reason first appears (cold) and at dump time.
#[derive(Debug, Default)]
struct FlightStrings {
    policies: Vec<String>,
    triggers: Vec<String>,
    reasons: Vec<&'static str>,
}

impl FlightStrings {
    fn intern_owned(table: &mut Vec<String>, s: &str) -> u16 {
        if let Some(i) = table.iter().position(|t| t == s) {
            return i as u16;
        }
        table.push(s.to_string());
        (table.len() - 1) as u16
    }
}

/// Fixed-capacity post-mortem ring holding the last N decisions in POD
/// form. Writers store pre-interned ids with a per-slot seqlock — no
/// `Mutex`, no allocation; readers retry torn slots and drop entries
/// the writer lapped mid-read. Writes must be externally serialised
/// (in practice they happen inside [`Obs::decision`](crate::Obs), which
/// already holds the trace lock to stamp sequence numbers).
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[FlightSlot]>,
    /// Total records ever written.
    head: AtomicU64,
    strings: Mutex<FlightStrings>,
}

// Bit layout of word 3.
const FL_HAS_POOL: u64 = 1 << 8;
const FL_HAS_GPUS: u64 = 1 << 9;
const FL_OPPORTUNISTIC: u64 = 1 << 10;
const FL_HAS_SCORE: u64 = 1 << 11;
const FL_HAS_PREV: u64 = 1 << 12;
const FL_HAS_SHARD: u64 = 1 << 13;

impl FlightRecorder {
    /// A ring holding the most recent `capacity` decisions.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity)
                .map(|_| FlightSlot {
                    version: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            strings: Mutex::new(FlightStrings::default()),
        }
    }

    /// Ring capacity (max decisions retained).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total decisions ever recorded (not capped by capacity).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Interns a policy name, returning its stable id. Cold path: the
    /// engine calls this only when the context policy string changes.
    #[must_use]
    pub fn intern_policy(&self, s: &str) -> u16 {
        let mut g = self
            .strings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        FlightStrings::intern_owned(&mut g.policies, s)
    }

    /// Interns a trigger label (cold path, on change only).
    #[must_use]
    pub fn intern_trigger(&self, s: &str) -> u16 {
        let mut g = self
            .strings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        FlightStrings::intern_owned(&mut g.triggers, s)
    }

    /// Interns a static reason label (cold path, first occurrence only;
    /// callers cache the id).
    #[must_use]
    pub fn intern_reason(&self, s: &'static str) -> u16 {
        let mut g = self
            .strings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(i) = g.reasons.iter().position(|t| *t == s) {
            return i as u16;
        }
        g.reasons.push(s);
        (g.reasons.len() - 1) as u16
    }

    /// Records one stamped decision. Atomic stores only; see the type
    /// docs for the single-writer requirement.
    pub fn record(&self, d: &Decision, policy_id: u16, trigger_id: u16, reason_id: u16) {
        let mut w3 = match d.kind {
            DecisionKind::Place => 0_u64,
            DecisionKind::Evict => 1,
            DecisionKind::Drop => 2,
            DecisionKind::Requeue => 3,
        };
        if d.pool.is_some() {
            w3 |= FL_HAS_POOL;
        }
        if d.gpus.is_some() {
            w3 |= FL_HAS_GPUS;
        }
        if d.opportunistic {
            w3 |= FL_OPPORTUNISTIC;
        }
        if d.score.is_some() {
            w3 |= FL_HAS_SCORE;
        }
        if d.prev_pool.is_some() && d.prev_gpus.is_some() {
            w3 |= FL_HAS_PREV;
        }
        if d.shard.is_some() {
            w3 |= FL_HAS_SHARD;
        }
        w3 |= u64::from(policy_id) << 16;
        w3 |= u64::from(trigger_id) << 32;
        w3 |= u64::from(reason_id) << 48;
        let words: [u64; FLIGHT_WORDS] = [
            d.seq,
            d.time_s.to_bits(),
            d.job,
            w3,
            (d.pool.unwrap_or(0) as u64) | ((d.gpus.unwrap_or(0) as u64) << 32),
            d.score.unwrap_or(0.0).to_bits(),
            (d.prev_pool.unwrap_or(0) as u64) | ((d.prev_gpus.unwrap_or(0) as u64) << 32),
            u64::from(d.shard.unwrap_or(0)),
        ];
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot.version.store(2 * h + 1, Ordering::Release);
        for (cell, v) in slot.words.iter().zip(words.iter()) {
            cell.store(*v, Ordering::Relaxed);
        }
        slot.version.store(2 * (h + 1), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// The last `n` decisions, oldest first. Entries the writer lapped
    /// or tore during the read are dropped (a quiescent ring returns
    /// exactly the newest `min(n, total, capacity)` records).
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Decision> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let take = (n as u64).min(head).min(cap);
        let strings = self
            .strings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::with_capacity(take as usize);
        for i in head - take..head {
            let slot = &self.slots[(i % cap) as usize];
            for _attempt in 0..64 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 != 2 * (i + 1) {
                    // Mid-write or already overwritten by a newer record.
                    if v1.is_multiple_of(2) {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                let words: [u64; FLIGHT_WORDS] =
                    std::array::from_fn(|k| slot.words[k].load(Ordering::Acquire));
                if slot.version.load(Ordering::Acquire) == v1 {
                    out.push(Self::decode(&words, &strings));
                    break;
                }
            }
        }
        out
    }

    /// The last `n` decisions rendered as JSONL, byte-identical to the
    /// tail of the decision log the trace layer writes.
    #[must_use]
    pub fn dump_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for d in self.recent(n) {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }

    fn decode(words: &[u64; FLIGHT_WORDS], strings: &FlightStrings) -> Decision {
        let w3 = words[3];
        let kind = match w3 & 0xff {
            0 => DecisionKind::Place,
            1 => DecisionKind::Evict,
            2 => DecisionKind::Drop,
            _ => DecisionKind::Requeue,
        };
        let lookup_owned = |table: &Vec<String>, id: u64| -> String {
            table
                .get((id & 0xffff) as usize)
                .cloned()
                .unwrap_or_default()
        };
        let mut d = Decision::requeue(words[2]);
        d.kind = kind;
        d.seq = words[0];
        d.time_s = f64::from_bits(words[1]);
        d.policy = lookup_owned(&strings.policies, w3 >> 16);
        d.trigger = lookup_owned(&strings.triggers, w3 >> 32);
        d.reason = strings
            .reasons
            .get(((w3 >> 48) & 0xffff) as usize)
            .copied()
            .unwrap_or("");
        if w3 & FL_HAS_POOL != 0 {
            d.pool = Some((words[4] & 0xffff_ffff) as usize);
        }
        if w3 & FL_HAS_GPUS != 0 {
            d.gpus = Some((words[4] >> 32) as usize);
        }
        d.opportunistic = w3 & FL_OPPORTUNISTIC != 0;
        if w3 & FL_HAS_SCORE != 0 {
            d.score = Some(f64::from_bits(words[5]));
        }
        if w3 & FL_HAS_PREV != 0 {
            d.prev_pool = Some((words[6] & 0xffff_ffff) as usize);
            d.prev_gpus = Some((words[6] >> 32) as usize);
        }
        if w3 & FL_HAS_SHARD != 0 {
            d.shard = Some(words[7] as u32);
        }
        d
    }
}

// --- registry --------------------------------------------------------

/// Immutable handle map republished on every registration.
#[derive(Debug, Default, Clone)]
struct MetricsMap {
    counters: HashMap<String, Counter>,
    gauges: HashMap<String, Gauge>,
    hists: HashMap<String, Histogram>,
}

/// The lock-free metrics registry: named counters, gauges and
/// histograms plus the flight recorder.
///
/// Reads and records are wait-free (an [`RcuCell`] load plus a hash
/// lookup plus the handle's atomics). Registering a *new* name clones
/// the map under a registration lock and republishes — at most once
/// per distinct name over the registry's lifetime. Callers on hot
/// paths should pre-register and hold handles directly.
pub struct MetricsRegistry {
    map: RcuCell<MetricsMap>,
    reg_lock: Mutex<()>,
    flight: FlightRecorder,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.map.load())
            .field("flight_total", &self.flight.total())
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new(256)
    }
}

impl MetricsRegistry {
    /// A registry whose flight recorder retains `flight_capacity`
    /// decisions.
    #[must_use]
    pub fn new(flight_capacity: usize) -> Self {
        MetricsRegistry {
            map: RcuCell::new(Arc::new(MetricsMap::default())),
            reg_lock: Mutex::new(()),
            flight: FlightRecorder::new(flight_capacity),
        }
    }

    /// The flight recorder.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    fn register<H: Clone>(
        &self,
        name: &str,
        pick: impl Fn(&MetricsMap) -> Option<H>,
        insert: impl Fn(&mut MetricsMap, String, H),
        fresh: impl Fn() -> H,
    ) -> H {
        let _g = self
            .reg_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check under the lock: another thread may have registered
        // the name between our fast-path miss and here.
        let cur = self.map.load();
        if let Some(h) = pick(&cur) {
            return h;
        }
        let handle = fresh();
        let mut next = (*cur).clone();
        insert(&mut next, name.to_string(), handle.clone());
        self.map.store(Arc::new(next));
        handle
    }

    /// Get-or-register a counter handle.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.map.load().counters.get(name) {
            return c.clone();
        }
        self.register(
            name,
            |m| m.counters.get(name).cloned(),
            |m, k, h| {
                m.counters.insert(k, h);
            },
            Counter::default,
        )
    }

    /// Get-or-register a gauge handle.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.map.load().gauges.get(name) {
            return g.clone();
        }
        self.register(
            name,
            |m| m.gauges.get(name).cloned(),
            |m, k, h| {
                m.gauges.insert(k, h);
            },
            Gauge::default,
        )
    }

    /// Get-or-register a histogram handle.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.map.load().hists.get(name) {
            return h.clone();
        }
        self.register(
            name,
            |m| m.hists.get(name).cloned(),
            |m, k, h| {
                m.hists.insert(k, h);
            },
            Histogram::default,
        )
    }

    /// Name-routed counter increment: wait-free when the name is
    /// already registered.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(c) = self.map.load().counters.get(name) {
            c.incr(by);
            return;
        }
        self.counter(name).incr(by);
    }

    /// Name-routed gauge store.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(g) = self.map.load().gauges.get(name) {
            g.set(value);
            return;
        }
        self.gauge(name).set(value);
    }

    /// Name-routed histogram observation.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(h) = self.map.load().hists.get(name) {
            h.observe(value);
            return;
        }
        self.histogram(name).observe(value);
    }

    /// Point-in-time counter values, sorted by name.
    #[must_use]
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        self.map
            .load()
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Point-in-time histogram summaries, sorted by name.
    #[must_use]
    pub fn histograms_snapshot(&self) -> BTreeMap<String, HistStats> {
        self.map
            .load()
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot().stats()))
            .collect()
    }

    /// Deterministic Prometheus-style text exposition: every counter,
    /// gauge and histogram, sorted by full sample name, one `# TYPE`
    /// header per metric family. Histograms render cumulative
    /// `_bucket{le=...}` samples (only buckets that change the
    /// cumulative count, plus `+Inf`), `_sum` and `_count`.
    #[must_use]
    pub fn expose(&self) -> String {
        let map = self.map.load();
        let mut out = String::new();
        let mut sorted_c: Vec<_> = map.counters.iter().collect();
        sorted_c.sort_by(|a, b| a.0.cmp(b.0));
        for (name, c) in sorted_c {
            let (base, labels) = split_labels(name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let _ = writeln!(out, "{base}{labels} {}", c.get());
        }
        let mut sorted_g: Vec<_> = map.gauges.iter().collect();
        sorted_g.sort_by(|a, b| a.0.cmp(b.0));
        for (name, g) in sorted_g {
            let (base, labels) = split_labels(name);
            let _ = writeln!(out, "# TYPE {base} gauge");
            let _ = writeln!(out, "{base}{labels} {}", fmt_value(g.get()));
        }
        let mut sorted_h: Vec<_> = map.hists.iter().collect();
        sorted_h.sort_by(|a, b| a.0.cmp(b.0));
        for (name, h) in sorted_h {
            let (base, labels) = split_labels(name);
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {base} histogram");
            let mut cum = 0_u64;
            for (idx, &n) in snap.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let le = bucket_upper(idx);
                if le.is_finite() {
                    let _ = writeln!(
                        out,
                        "{base}_bucket{} {cum}",
                        with_label(&labels, "le", &fmt_value(le))
                    );
                }
            }
            let _ = writeln!(
                out,
                "{base}_bucket{} {}",
                with_label(&labels, "le", "+Inf"),
                snap.count
            );
            let _ = writeln!(out, "{base}_sum{labels} {}", fmt_value(snap.sum()));
            let _ = writeln!(out, "{base}_count{labels} {}", snap.count);
        }
        out
    }
}

/// Publishes a memory ledger into the registry as one gauge family per
/// field, labelled by section:
///
/// * `mem.bytes{section="..."}` — live accounted bytes,
/// * `mem.entries{section="..."}` — live entries behind those bytes,
/// * `mem.budget_bytes{section="..."}` — the byte budget, `0` meaning
///   unlimited,
/// * `mem.evictions{section="..."}` — cumulative entries evicted to
///   stay under budget (monotone; a gauge because the source counter
///   is already cumulative).
///
/// Callers refresh on their own cadence (the engine republishes after
/// each scheduling pass); between refreshes the gauges hold the last
/// published ledger.
pub fn publish_mem_sections(reg: &MetricsRegistry, sections: &[arena_runtime::MemSection]) {
    for s in sections {
        let labels: &[(&str, &str)] = &[("section", &s.name)];
        reg.set_gauge(&labeled("mem.bytes", labels), s.bytes as f64);
        reg.set_gauge(&labeled("mem.entries", labels), s.entries as f64);
        reg.set_gauge(
            &labeled("mem.budget_bytes", labels),
            s.budget_bytes.unwrap_or(0) as f64,
        );
        reg.set_gauge(&labeled("mem.evictions", labels), s.evictions as f64);
    }
}

/// Builds a registry key with Prometheus label syntax:
/// `labeled("sim.shard.heap_depth", &[("shard", "3")])` →
/// `sim.shard.heap_depth{shard="3"}`.
#[must_use]
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut s = String::with_capacity(base.len() + 16 * labels.len());
    s.push_str(base);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s.push('}');
    s
}

/// Splits a registry key into (sanitised base, label part). The base
/// sanitises to `[A-Za-z0-9_]` exactly like the legacy counter
/// exposition; labels pass through verbatim.
fn split_labels(key: &str) -> (String, String) {
    let (base, labels) = match key.find('{') {
        Some(i) => (&key[..i], key[i..].to_string()),
        None => (key, String::new()),
    };
    let sanitised: String = base
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    (sanitised, labels)
}

/// Appends one label to an existing (possibly empty) label block.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        // `{a="b"}` -> `{a="b",key="value"}`
        format!("{},{key}=\"{value}\"}}", &labels[..labels.len() - 1])
    }
}

/// Deterministic float rendering for exposition samples (plain `{}`;
/// non-finite values render as `0` — they cannot occur for histogram
/// fields and gauges clamp on store).
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_handles() {
        let reg = MetricsRegistry::new(4);
        let c = reg.counter("a.b");
        c.incr(2);
        reg.incr("a.b", 3);
        assert_eq!(reg.counter("a.b").get(), 5);
        let g = reg.gauge("depth");
        g.set(4.0);
        reg.set_gauge("depth", 7.5);
        assert_eq!(reg.gauge("depth").get(), 7.5);
        g.set(f64::NAN);
        assert_eq!(reg.gauge("depth").get(), 0.0);
    }

    #[test]
    fn histogram_buckets_merge_and_summarise() {
        let reg = MetricsRegistry::new(4);
        let h = reg.histogram("lat");
        for v in [1e-6, 2e-6, 1e-3, 0.5] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert!((snap.sum() - 0.501003).abs() < 1e-6);
        let stats = snap.stats();
        assert_eq!(stats.count, 4);
        assert!(stats.min > 0.0 && stats.min < 2e-6);
        assert!((stats.max - 0.5).abs() < 1e-9);
        // Quantiles are bucket upper bounds clamped to [min, max]:
        // finite, ordered, never NaN.
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        assert!(stats.p99 <= stats.max + 1e-12);
        // Merge doubles everything.
        let mut merged = h.snapshot();
        merged.merge(&h.snapshot());
        assert_eq!(merged.count, 8);
        assert_eq!(merged.sum_ticks, 2 * snap.sum_ticks);
    }

    #[test]
    fn empty_and_single_sample_histograms_are_finite() {
        let h = Histogram::default();
        let empty = h.snapshot().stats();
        assert_eq!(empty, HistStats::default());
        h.observe(0.25);
        let one = h.snapshot().stats();
        assert_eq!(one.count, 1);
        assert_eq!(one.min, one.max);
        assert_eq!(one.p50, one.max);
        assert_eq!(one.p99, one.max);
        // NaN / negative observations clamp into the zero bucket rather
        // than poisoning the stats.
        h.observe(f64::NAN);
        h.observe(-3.0);
        let s = h.snapshot().stats();
        assert_eq!(s.count, 3);
        assert!(s.sum.is_finite() && s.p50.is_finite() && s.min == 0.0);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut prev = -1.0;
        for i in 0..HIST_BUCKETS - 1 {
            let ub = bucket_upper(i);
            assert!(ub > prev);
            prev = ub;
        }
        assert!(bucket_upper(HIST_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn flight_recorder_roundtrips_decisions() {
        let fr = FlightRecorder::new(8);
        let pid = fr.intern_policy("Arena");
        let tid = fr.intern_trigger("arrival");
        let rid = fr.intern_reason("best-cell");
        let mut d = Decision::place(7, 1, 8)
            .with_score(0.93)
            .moving_from(0, 4)
            .why("best-cell")
            .on_shard(2);
        d.seq = 41;
        d.time_s = 123.5;
        d.policy = "Arena".to_string();
        d.trigger = "arrival".to_string();
        fr.record(&d, pid, tid, rid);
        let got = fr.recent(10);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], d);
        assert_eq!(fr.dump_jsonl(10), format!("{}\n", d.to_json()));
    }

    #[test]
    fn flight_recorder_keeps_only_last_capacity() {
        let fr = FlightRecorder::new(4);
        let pid = fr.intern_policy("p");
        let tid = fr.intern_trigger("round");
        let rid = fr.intern_reason("r");
        for i in 0..10_u64 {
            let mut d = Decision::drop(i).why("r");
            d.seq = i;
            d.policy = "p".to_string();
            d.trigger = "round".to_string();
            fr.record(&d, pid, tid, rid);
        }
        assert_eq!(fr.total(), 10);
        let got = fr.recent(100);
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // A narrower dump returns the newest slice.
        assert_eq!(
            fr.recent(2).iter().map(|d| d.seq).collect::<Vec<_>>(),
            [8, 9]
        );
    }

    #[test]
    fn exposition_is_sorted_and_labelled() {
        let reg = MetricsRegistry::new(4);
        reg.counter("sim.event.arrival").incr(3);
        reg.counter(&labeled("srv.cmd", &[("kind", "submit")]))
            .incr(1);
        reg.gauge(&labeled("sim.shard.heap_depth", &[("shard", "0")]))
            .set(5.0);
        reg.histogram("srv.publish_seconds").observe(1e-6);
        let text = reg.expose();
        let arrival = text.find("sim_event_arrival 3").expect("counter sample");
        let labelled = text
            .find("srv_cmd{kind=\"submit\"} 1")
            .expect("labelled counter");
        assert!(arrival < labelled, "counters sort by name");
        assert!(text.contains("# TYPE sim_shard_heap_depth gauge"));
        assert!(text.contains("sim_shard_heap_depth{shard=\"0\"} 5"));
        assert!(text.contains("# TYPE srv_publish_seconds histogram"));
        assert!(text.contains("srv_publish_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("srv_publish_seconds_count 1"));
        // Deterministic: two expositions of the same registry match.
        assert_eq!(text, reg.expose());
    }

    #[test]
    fn mem_sections_publish_as_labelled_gauges() {
        let reg = MetricsRegistry::new(4);
        let sections = vec![
            arena_runtime::MemSection {
                name: "estimator.profiles".to_string(),
                bytes: 4096,
                entries: 12,
                budget_bytes: Some(1 << 20),
                evictions: 3,
            },
            arena_runtime::MemSection::unbudgeted("plans.graphs", 512, 2),
        ];
        publish_mem_sections(&reg, &sections);
        let g = |name: &str| reg.gauge(name).get();
        assert_eq!(g("mem.bytes{section=\"estimator.profiles\"}"), 4096.0);
        assert_eq!(g("mem.entries{section=\"estimator.profiles\"}"), 12.0);
        assert_eq!(
            g("mem.budget_bytes{section=\"estimator.profiles\"}"),
            (1_u64 << 20) as f64
        );
        assert_eq!(g("mem.evictions{section=\"estimator.profiles\"}"), 3.0);
        // Unbudgeted sections expose 0 (= unlimited) rather than no series.
        assert_eq!(g("mem.budget_bytes{section=\"plans.graphs\"}"), 0.0);
        let text = reg.expose();
        assert!(text.contains("mem_bytes{section=\"plans.graphs\"} 512"));
        // Republishing overwrites in place — gauges track the ledger.
        let mut grown = sections;
        grown[0].bytes = 8192;
        publish_mem_sections(&reg, &grown);
        assert_eq!(g("mem.bytes{section=\"estimator.profiles\"}"), 8192.0);
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let reg = Arc::new(MetricsRegistry::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        reg.incr("hot", 1);
                        reg.observe("lat", 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(reg.counter("hot").get(), 40_000);
        let snap = reg.histogram("lat").snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.sum_ticks, 40_000 * 1_000);
    }
}
