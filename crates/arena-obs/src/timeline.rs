//! Job-lifecycle timelines and GPU-utilization accounting.
//!
//! Every traced simulation records two deterministic event streams here:
//!
//! * **Job events** — the per-job state machine
//!   `Queued → Placed → Running → {Queued | Finished | Dropped}`, where a
//!   return to `Queued` is a preemption (policy eviction, capacity race
//!   or node failure with checkpoint rollback) and a `Placed` from
//!   `Running` is a rescale or migration. Each transition carries its
//!   provenance (old → new pool/GPU counts, lost iterations).
//! * **Allocation events** — every acquire/release of GPUs, with the
//!   exact `(node, gpus)` layout, so per-node busy intervals and
//!   cluster-utilization time-series can be reconstructed.
//!
//! From the raw events the [`Timeline`] derives per-job intervals
//! ([`Timeline::job_intervals`]), interval accounting
//! ([`Timeline::accounts`]: queueing delay, restart overhead, run time,
//! allocated vs. productive GPU-seconds), a cluster-utilization
//! time-series ([`Timeline::utilization`], including a fragmentation
//! measure) and two export formats: Chrome-trace/Perfetto JSON
//! ([`Timeline::perfetto_json`], loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>) and a JSONL utilization series
//! ([`Timeline::utilization_jsonl`]). Everything is a pure function of
//! simulation time — two runs of the same workload export byte-identical
//! artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{json_escape, json_f64, trim_f64};

/// The lifecycle states of the per-job state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobState {
    /// Waiting for GPUs (initial state, and after any preemption).
    Queued,
    /// Holding GPUs but not yet making progress: restart overhead,
    /// checkpoint restore, plan acquisition.
    Placed,
    /// Making progress.
    Running,
    /// Completed all iterations (terminal).
    Finished,
    /// Permanently rejected by the scheduler (terminal).
    Dropped,
}

impl JobState {
    /// Stable label used in exports and snapshots.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "Queued",
            JobState::Placed => "Placed",
            JobState::Running => "Running",
            JobState::Finished => "Finished",
            JobState::Dropped => "Dropped",
        }
    }

    /// Whether the state is terminal.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Finished | JobState::Dropped)
    }
}

/// Why a job stopped holding GPUs and returned to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The policy evicted it (scaling move, reclaim, parking).
    Preemption,
    /// Two placements raced for the same capacity; this one lost.
    CapacityRace,
    /// A node it ran on failed; progress rolled back to the last
    /// checkpoint.
    NodeFailure,
}

impl StopCause {
    /// Stable lowercase label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StopCause::Preemption => "preemption",
            StopCause::CapacityRace => "capacity-race",
            StopCause::NodeFailure => "node-failure",
        }
    }
}

/// One transition of a job's state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEventKind {
    /// The job entered the queue (`→ Queued`).
    Submit,
    /// The scheduler granted GPUs (`Queued|Placed|Running → Placed`).
    /// `prev` carries the old `(pool, gpus)` when this is a rescale or
    /// migration of an active job.
    Place {
        /// Target pool.
        pool: usize,
        /// Target GPU count.
        gpus: usize,
        /// Previous `(pool, gpus)` if the job was active (rescale or
        /// migration), `None` for a placement out of the queue.
        prev: Option<(usize, usize)>,
        /// Whether the placement is opportunistic backfill.
        opportunistic: bool,
    },
    /// Restart overhead over; progress resumes (`Placed → Running`).
    RunStart,
    /// The job lost its GPUs and returned to the queue
    /// (`Placed|Running → Queued`). `lost_iters` is the progress rolled
    /// back (non-zero only for node failures).
    Stop {
        /// Why the job stopped.
        cause: StopCause,
        /// Iterations of progress lost to the checkpoint rollback.
        lost_iters: f64,
    },
    /// All iterations done (`Running → Finished`).
    Finish,
    /// Permanently rejected (`Queued|Placed|Running → Dropped`).
    Drop,
}

impl JobEventKind {
    /// Stable lowercase label.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            JobEventKind::Submit => "submit",
            JobEventKind::Place { .. } => "place",
            JobEventKind::RunStart => "run-start",
            JobEventKind::Stop { .. } => "stop",
            JobEventKind::Finish => "finish",
            JobEventKind::Drop => "drop",
        }
    }
}

/// One recorded job-state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Global sequence number within the timeline (stamped on record).
    pub seq: u64,
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Subject job id.
    pub job: u64,
    /// The transition.
    pub kind: JobEventKind,
}

/// One GPU acquire or release with its exact node layout.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocEvent {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Holding job.
    pub job: u64,
    /// Pool the GPUs come from.
    pub pool: usize,
    /// `(node index, GPUs on that node)` pairs.
    pub node_gpus: Vec<(usize, usize)>,
    /// `true` for acquire, `false` for release.
    pub acquire: bool,
}

/// One node's identity and capacity, registered before the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSlot {
    /// Pool (GPU type) index.
    pub pool: usize,
    /// Node index within the pool.
    pub node: usize,
    /// GPUs on the node.
    pub capacity: usize,
}

/// One contiguous interval a job spent in one state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobInterval {
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval end, seconds (the close time for still-open intervals).
    pub end_s: f64,
    /// State during the interval.
    pub state: JobState,
    /// GPUs held during the interval (0 while queued/terminal).
    pub gpus: usize,
    /// Pool of the held GPUs (meaningful only when `gpus > 0`).
    pub pool: usize,
}

/// Interval accounting of one job's life.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobAccount {
    /// Total time in `Queued`, seconds (queueing delay, all visits).
    pub queue_s: f64,
    /// Total time in `Placed`, seconds (restart/acquisition overhead).
    pub placed_s: f64,
    /// Total time in `Running`, seconds.
    pub run_s: f64,
    /// GPU-seconds held (`Placed` + `Running` intervals × GPUs).
    pub allocated_gpu_s: f64,
    /// GPU-seconds making progress (`Running` intervals × GPUs).
    pub productive_gpu_s: f64,
    /// Placements out of the queue or while active.
    pub placements: u32,
    /// Rescales/migrations (placements of an already-active job).
    pub moves: u32,
    /// Times the job lost its GPUs and re-queued.
    pub preemptions: u32,
    /// Iterations of progress lost to checkpoint rollbacks.
    pub lost_iters: f64,
}

/// One sample of the cluster-utilization time-series (event-driven: one
/// sample per time at which any allocation changed).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilSample {
    /// Sample time, seconds.
    pub time_s: f64,
    /// Busy GPUs across the cluster.
    pub busy_gpus: usize,
    /// Total GPUs across the cluster.
    pub total_gpus: usize,
    /// Nodes with at least one busy GPU.
    pub busy_nodes: usize,
    /// Fraction of *free* GPUs stranded on partially-occupied nodes — a
    /// fragmentation measure: 1.0 means every free GPU shares a node
    /// with a running job, 0.0 means all free capacity is on whole idle
    /// nodes.
    pub frag_frac: f64,
    /// Per-pool busy GPU counts.
    pub busy_per_pool: Vec<usize>,
}

impl UtilSample {
    /// Busy fraction of the cluster.
    #[must_use]
    pub fn util_frac(&self) -> f64 {
        if self.total_gpus == 0 {
            0.0
        } else {
            self.busy_gpus as f64 / self.total_gpus as f64
        }
    }
}

/// The recorded timeline of one traced run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Registered nodes (pool, node, capacity), in registration order.
    pub nodes: Vec<NodeSlot>,
    /// Job-state transitions, in recording order.
    pub events: Vec<JobEvent>,
    /// GPU acquire/release events, in recording order.
    pub allocs: Vec<AllocEvent>,
    /// Close time: open intervals end here (the run's horizon).
    pub end_s: f64,
}

impl Timeline {
    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.allocs.is_empty()
    }

    /// The legal transition function of the job state machine. Returns
    /// the successor state, or `None` for an illegal transition.
    #[must_use]
    pub fn transition(state: Option<JobState>, kind: &JobEventKind) -> Option<JobState> {
        match (state, kind) {
            (None, JobEventKind::Submit) => Some(JobState::Queued),
            (
                Some(JobState::Queued | JobState::Placed | JobState::Running),
                JobEventKind::Place { .. },
            ) => Some(JobState::Placed),
            (Some(JobState::Placed), JobEventKind::RunStart) => Some(JobState::Running),
            (Some(JobState::Placed | JobState::Running), JobEventKind::Stop { .. }) => {
                Some(JobState::Queued)
            }
            (Some(JobState::Running), JobEventKind::Finish) => Some(JobState::Finished),
            (Some(JobState::Queued | JobState::Placed | JobState::Running), JobEventKind::Drop) => {
                Some(JobState::Dropped)
            }
            _ => None,
        }
    }

    /// Checks every per-job event sequence against the state machine and
    /// time monotonicity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first illegal transition or
    /// non-monotonic timestamp found.
    pub fn validate(&self) -> Result<(), String> {
        let mut state: BTreeMap<u64, (Option<JobState>, f64)> = BTreeMap::new();
        for ev in &self.events {
            let (cur, last_t) = state.get(&ev.job).copied().unwrap_or((None, f64::MIN));
            if ev.time_s < last_t {
                return Err(format!(
                    "job {}: event {} at t={} precedes t={}",
                    ev.job,
                    ev.kind.as_str(),
                    ev.time_s,
                    last_t
                ));
            }
            let Some(next) = Self::transition(cur, &ev.kind) else {
                return Err(format!(
                    "job {}: illegal transition {:?} --{}--> at t={}",
                    ev.job,
                    cur,
                    ev.kind.as_str(),
                    ev.time_s
                ));
            };
            state.insert(ev.job, (Some(next), ev.time_s));
        }
        Ok(())
    }

    /// Derives each job's state intervals from its events. Open intervals
    /// of non-terminal states are closed at [`Timeline::end_s`].
    ///
    /// # Panics
    ///
    /// Panics on an illegal event sequence (use [`Timeline::validate`]
    /// first when the stream is untrusted).
    #[must_use]
    pub fn job_intervals(&self) -> BTreeMap<u64, Vec<JobInterval>> {
        let mut out: BTreeMap<u64, Vec<JobInterval>> = BTreeMap::new();
        // (state, since, pool, gpus) per job.
        let mut cur: BTreeMap<u64, (JobState, f64, usize, usize)> = BTreeMap::new();
        for ev in &self.events {
            let prev = cur.get(&ev.job).copied();
            let next = Self::transition(prev.map(|(s, ..)| s), &ev.kind)
                .unwrap_or_else(|| panic!("illegal timeline event: {ev:?}"));
            if let Some((state, since, pool, gpus)) = prev {
                out.entry(ev.job).or_default().push(JobInterval {
                    start_s: since,
                    end_s: ev.time_s,
                    state,
                    gpus,
                    pool,
                });
            }
            let (pool, gpus) = match ev.kind {
                JobEventKind::Place { pool, gpus, .. } => (pool, gpus),
                // Run keeps its grant; queue/terminal states hold none.
                JobEventKind::RunStart => prev.map_or((0, 0), |(.., p, g)| (p, g)),
                _ => (0, 0),
            };
            cur.insert(ev.job, (next, ev.time_s, pool, gpus));
        }
        for (job, (state, since, pool, gpus)) in cur {
            if !state.is_terminal() && self.end_s > since {
                out.entry(job).or_default().push(JobInterval {
                    start_s: since,
                    end_s: self.end_s,
                    state,
                    gpus,
                    pool,
                });
            } else {
                out.entry(job).or_default();
            }
        }
        out
    }

    /// Interval accounting per job. GPU-second sums accumulate interval
    /// by interval in chronological order, so they match an engine that
    /// does the same arithmetic bitwise.
    #[must_use]
    pub fn accounts(&self) -> BTreeMap<u64, JobAccount> {
        let mut out: BTreeMap<u64, JobAccount> = BTreeMap::new();
        for (job, intervals) in self.job_intervals() {
            let acc = out.entry(job).or_default();
            for iv in intervals {
                let dt = iv.end_s - iv.start_s;
                match iv.state {
                    JobState::Queued => acc.queue_s += dt,
                    JobState::Placed => {
                        acc.placed_s += dt;
                        acc.allocated_gpu_s += dt * iv.gpus as f64;
                    }
                    JobState::Running => {
                        acc.run_s += dt;
                        acc.productive_gpu_s += dt * iv.gpus as f64;
                        acc.allocated_gpu_s += dt * iv.gpus as f64;
                    }
                    JobState::Finished | JobState::Dropped => {}
                }
            }
        }
        for ev in &self.events {
            let acc = out.entry(ev.job).or_default();
            match ev.kind {
                JobEventKind::Place { prev, .. } => {
                    acc.placements += 1;
                    if prev.is_some() {
                        acc.moves += 1;
                    }
                }
                JobEventKind::Stop { lost_iters, .. } => {
                    acc.preemptions += 1;
                    acc.lost_iters += lost_iters;
                }
                _ => {}
            }
        }
        out
    }

    /// Total time across all jobs in each state, seconds.
    #[must_use]
    pub fn time_in_state(&self) -> BTreeMap<&'static str, f64> {
        let mut out = BTreeMap::new();
        for intervals in self.job_intervals().values() {
            for iv in intervals {
                *out.entry(iv.state.as_str()).or_insert(0.0) += iv.end_s - iv.start_s;
            }
        }
        out
    }

    /// Event-driven cluster-utilization time-series: one sample per
    /// distinct time at which any allocation changed, plus a closing
    /// sample at [`Timeline::end_s`].
    #[must_use]
    pub fn utilization(&self) -> Vec<UtilSample> {
        let total_gpus: usize = self.nodes.iter().map(|n| n.capacity).sum();
        let num_pools = self
            .nodes
            .iter()
            .map(|n| n.pool + 1)
            .max()
            .unwrap_or_default();
        // Busy GPUs per registered node.
        let mut busy: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut out: Vec<UtilSample> = Vec::new();
        let mut i = 0;
        while i < self.allocs.len() {
            let t = self.allocs[i].time_s;
            // Apply every event at this instant before sampling.
            while i < self.allocs.len() && self.allocs[i].time_s == t {
                let ev = &self.allocs[i];
                for &(node, gpus) in &ev.node_gpus {
                    let slot = busy.entry((ev.pool, node)).or_insert(0);
                    if ev.acquire {
                        *slot += gpus;
                    } else {
                        *slot = slot.saturating_sub(gpus);
                    }
                }
                i += 1;
            }
            out.push(Self::sample(t, &busy, &self.nodes, total_gpus, num_pools));
        }
        if let Some(last) = out.last() {
            if self.end_s > last.time_s {
                let mut closing = last.clone();
                closing.time_s = self.end_s;
                out.push(closing);
            }
        }
        out
    }

    fn sample(
        t: f64,
        busy: &BTreeMap<(usize, usize), usize>,
        nodes: &[NodeSlot],
        total_gpus: usize,
        num_pools: usize,
    ) -> UtilSample {
        let busy_gpus: usize = busy.values().sum();
        let busy_nodes = busy.values().filter(|&&b| b > 0).count();
        let mut busy_per_pool = vec![0_usize; num_pools];
        for (&(pool, _), &b) in busy {
            if pool < num_pools {
                busy_per_pool[pool] += b;
            }
        }
        // Free GPUs on nodes that are partially occupied, over all free
        // GPUs: capacity stranded next to running jobs.
        let mut free_total = 0_usize;
        let mut free_stranded = 0_usize;
        for n in nodes {
            let b = busy.get(&(n.pool, n.node)).copied().unwrap_or(0);
            let free = n.capacity.saturating_sub(b);
            free_total += free;
            if b > 0 {
                free_stranded += free;
            }
        }
        UtilSample {
            time_s: t,
            busy_gpus,
            total_gpus,
            busy_nodes,
            frag_frac: if free_total == 0 {
                0.0
            } else {
                free_stranded as f64 / free_total as f64
            },
            busy_per_pool,
        }
    }

    /// Mean busy fraction of the cluster, time-weighted over the
    /// utilization series.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        let series = self.utilization();
        let (mut area, mut span) = (0.0, 0.0);
        for w in series.windows(2) {
            let dt = w[1].time_s - w[0].time_s;
            area += w[0].util_frac() * dt;
            span += dt;
        }
        if span > 0.0 {
            area / span
        } else {
            0.0
        }
    }

    /// The utilization series as JSON Lines, one object per sample.
    #[must_use]
    pub fn utilization_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.utilization() {
            let _ = write!(
                out,
                "{{\"time_s\":{},\"busy_gpus\":{},\"total_gpus\":{},\"util\":{},\
                 \"busy_nodes\":{},\"frag_frac\":{},\"busy_per_pool\":[",
                json_f64(s.time_s),
                s.busy_gpus,
                s.total_gpus,
                json_f64(s.util_frac()),
                s.busy_nodes,
                json_f64(s.frag_frac),
            );
            for (i, b) in s.busy_per_pool.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Chrome-trace/Perfetto JSON: one track per job (pid 1, complete
    /// events per state interval) and one counter track per node (busy
    /// GPUs). Load in `chrome://tracing` or <https://ui.perfetto.dev>.
    /// Timestamps are simulation time in microseconds — the export is
    /// deterministic.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn perfetto_json(&self, label: &str) -> String {
        const US: f64 = 1.0e6;
        let mut ev: Vec<String> = Vec::new();
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"jobs ({})\"}}}}",
            json_escape(label)
        ));
        ev.push(
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"nodes (busy GPUs)\"}}"
                .to_string(),
        );
        let intervals = self.job_intervals();
        for (&job, ivs) in &intervals {
            // Perfetto reserves tid 0; jobs are 1-based tracks.
            let tid = job + 1;
            ev.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"job {job}\"}}}}"
            ));
            for iv in ivs {
                if iv.end_s <= iv.start_s {
                    continue;
                }
                let mut args = String::new();
                if iv.gpus > 0 {
                    let _ = write!(args, "\"pool\":{},\"gpus\":{}", iv.pool, iv.gpus);
                }
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"args\":{{{args}}}}}",
                    json_f64(iv.start_s * US),
                    json_f64((iv.end_s - iv.start_s) * US),
                    iv.state.as_str(),
                ));
            }
        }
        // Per-node busy-GPU counters, emitted in event order.
        let mut busy: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut i = 0;
        while i < self.allocs.len() {
            let t = self.allocs[i].time_s;
            let mut touched: Vec<(usize, usize)> = Vec::new();
            while i < self.allocs.len() && self.allocs[i].time_s == t {
                let a = &self.allocs[i];
                for &(node, gpus) in &a.node_gpus {
                    let slot = busy.entry((a.pool, node)).or_insert(0);
                    if a.acquire {
                        *slot += gpus;
                    } else {
                        *slot = slot.saturating_sub(gpus);
                    }
                    if !touched.contains(&(a.pool, node)) {
                        touched.push((a.pool, node));
                    }
                }
                i += 1;
            }
            touched.sort_unstable();
            for (pool, node) in touched {
                ev.push(format!(
                    "{{\"ph\":\"C\",\"pid\":2,\"ts\":{},\"name\":\"pool{pool}/node{node}\",\
                     \"args\":{{\"busy\":{}}}}}",
                    json_f64(t * US),
                    busy.get(&(pool, node)).copied().unwrap_or(0),
                ));
            }
        }
        let mut out = String::with_capacity(ev.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in ev.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Compact time-in-state footer for golden snapshots: one line per
    /// state plus event/allocation totals.
    #[must_use]
    pub fn golden_footer(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline events {} allocs {}",
            self.events.len(),
            self.allocs.len()
        );
        for (state, total) in self.time_in_state() {
            let _ = writeln!(out, "state {state} {}", trim_f64(total));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(pool: usize, gpus: usize) -> JobEventKind {
        JobEventKind::Place {
            pool,
            gpus,
            prev: None,
            opportunistic: false,
        }
    }

    fn tl(events: Vec<(f64, u64, JobEventKind)>, end_s: f64) -> Timeline {
        Timeline {
            nodes: vec![
                NodeSlot {
                    pool: 0,
                    node: 0,
                    capacity: 4,
                },
                NodeSlot {
                    pool: 0,
                    node: 1,
                    capacity: 4,
                },
            ],
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, (t, job, kind))| JobEvent {
                    seq: i as u64,
                    time_s: t,
                    job,
                    kind,
                })
                .collect(),
            allocs: Vec::new(),
            end_s,
        }
    }

    #[test]
    fn lifecycle_intervals_and_account() {
        let t = tl(
            vec![
                (0.0, 7, JobEventKind::Submit),
                (10.0, 7, place(0, 4)),
                (40.0, 7, JobEventKind::RunStart),
                (
                    100.0,
                    7,
                    JobEventKind::Stop {
                        cause: StopCause::NodeFailure,
                        lost_iters: 5.0,
                    },
                ),
                (120.0, 7, place(1, 2)),
                (130.0, 7, JobEventKind::RunStart),
                (200.0, 7, JobEventKind::Finish),
            ],
            500.0,
        );
        t.validate().unwrap();
        let ivs = &t.job_intervals()[&7];
        let states: Vec<(JobState, f64, f64)> =
            ivs.iter().map(|i| (i.state, i.start_s, i.end_s)).collect();
        assert_eq!(
            states,
            vec![
                (JobState::Queued, 0.0, 10.0),
                (JobState::Placed, 10.0, 40.0),
                (JobState::Running, 40.0, 100.0),
                (JobState::Queued, 100.0, 120.0),
                (JobState::Placed, 120.0, 130.0),
                (JobState::Running, 130.0, 200.0),
            ]
        );
        let acc = t.accounts()[&7];
        assert_eq!(acc.queue_s, 30.0);
        assert_eq!(acc.placed_s, 40.0);
        assert_eq!(acc.run_s, 130.0);
        assert_eq!(acc.productive_gpu_s, 60.0 * 4.0 + 70.0 * 2.0);
        assert_eq!(acc.allocated_gpu_s, 90.0 * 4.0 + 80.0 * 2.0);
        assert_eq!(acc.placements, 2);
        assert_eq!(acc.preemptions, 1);
        assert_eq!(acc.lost_iters, 5.0);
        // Terminal: no open interval at end_s.
        assert_eq!(ivs.last().unwrap().end_s, 200.0);
    }

    #[test]
    fn open_intervals_close_at_end() {
        let t = tl(
            vec![(0.0, 1, JobEventKind::Submit), (50.0, 1, place(0, 8))],
            80.0,
        );
        let ivs = &t.job_intervals()[&1];
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[1].state, JobState::Placed);
        assert_eq!(ivs[1].end_s, 80.0);
        let tis = t.time_in_state();
        assert_eq!(tis["Queued"], 50.0);
        assert_eq!(tis["Placed"], 30.0);
    }

    #[test]
    fn rescale_is_legal_and_counted_as_move() {
        let t = tl(
            vec![
                (0.0, 1, JobEventKind::Submit),
                (1.0, 1, place(0, 4)),
                (2.0, 1, JobEventKind::RunStart),
                (
                    3.0,
                    1,
                    JobEventKind::Place {
                        pool: 0,
                        gpus: 8,
                        prev: Some((0, 4)),
                        opportunistic: false,
                    },
                ),
                (4.0, 1, JobEventKind::RunStart),
                (9.0, 1, JobEventKind::Finish),
            ],
            10.0,
        );
        t.validate().unwrap();
        let acc = t.accounts()[&1];
        assert_eq!(acc.placements, 2);
        assert_eq!(acc.moves, 1);
        assert_eq!(acc.preemptions, 0);
        assert_eq!(acc.productive_gpu_s, 1.0 * 4.0 + 5.0 * 8.0);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        for events in [
            // Finish from queue.
            vec![
                (0.0, 1, JobEventKind::Submit),
                (1.0, 1, JobEventKind::Finish),
            ],
            // RunStart without placement.
            vec![
                (0.0, 1, JobEventKind::Submit),
                (1.0, 1, JobEventKind::RunStart),
            ],
            // Double submit.
            vec![
                (0.0, 1, JobEventKind::Submit),
                (1.0, 1, JobEventKind::Submit),
            ],
            // Event before submit.
            vec![(0.0, 1, place(0, 2))],
        ] {
            assert!(tl(events, 10.0).validate().is_err());
        }
        // Time going backwards.
        let t = tl(
            vec![(5.0, 1, JobEventKind::Submit), (1.0, 1, place(0, 2))],
            10.0,
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn utilization_tracks_alloc_events() {
        let mut t = tl(vec![], 100.0);
        t.allocs = vec![
            AllocEvent {
                time_s: 0.0,
                job: 1,
                pool: 0,
                node_gpus: vec![(0, 4), (1, 2)],
                acquire: true,
            },
            AllocEvent {
                time_s: 50.0,
                job: 1,
                pool: 0,
                node_gpus: vec![(0, 4), (1, 2)],
                acquire: false,
            },
        ];
        let series = t.utilization();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].busy_gpus, 6);
        assert_eq!(series[0].busy_nodes, 2);
        // Node 1 has 2 free GPUs next to a busy pair; node 0 is full.
        assert!((series[0].frag_frac - 1.0).abs() < 1e-12);
        assert_eq!(series[1].busy_gpus, 0);
        assert_eq!(series[1].frag_frac, 0.0);
        // Closing sample at end_s.
        assert_eq!(series[2].time_s, 100.0);
        let jsonl = t.utilization_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.lines().next().unwrap().contains("\"busy_gpus\":6"));
    }

    #[test]
    fn perfetto_export_is_wellformed_and_deterministic() {
        let mut t = tl(
            vec![
                (0.0, 1, JobEventKind::Submit),
                (1.0, 1, place(0, 4)),
                (2.0, 1, JobEventKind::RunStart),
                (9.0, 1, JobEventKind::Finish),
            ],
            10.0,
        );
        t.allocs = vec![AllocEvent {
            time_s: 1.0,
            job: 1,
            pool: 0,
            node_gpus: vec![(0, 4)],
            acquire: true,
        }];
        let a = t.perfetto_json("Test");
        let b = t.perfetto_json("Test");
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"name\":\"Running\""));
        assert!(a.contains("pool0/node0"));
        assert!(a.contains("\"name\":\"job 1\""));
        // Balanced braces ⇒ structurally plausible JSON.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn golden_footer_lists_states() {
        let t = tl(
            vec![
                (0.0, 1, JobEventKind::Submit),
                (4.0, 1, place(0, 2)),
                (5.0, 1, JobEventKind::RunStart),
                (9.0, 1, JobEventKind::Finish),
            ],
            10.0,
        );
        let f = t.golden_footer();
        assert!(f.contains("timeline events 4 allocs 0"));
        assert!(f.contains("state Queued 4"));
        assert!(f.contains("state Running 4"));
    }
}
