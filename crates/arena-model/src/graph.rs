//! The model graph: a linear chain of coarse operators.

use serde::Serialize;

use crate::op::{Operator, FP16_BYTES};
use crate::zoo::ModelFamily;

/// A model to be trained: a named linear chain of [`Operator`]s.
///
/// Large-model training graphs are chains at the granularity relevant to
/// pipeline partitioning (a residual block or transformer layer never
/// spans a stage boundary), so a `Vec<Operator>` with implicit `i → i+1`
/// edges is a faithful representation.
#[derive(Debug, Clone, Serialize)]
pub struct ModelGraph {
    /// Display name, e.g. `"BERT-2.6B"`.
    pub name: String,
    /// Model family.
    pub family: ModelFamily,
    /// Operators in execution order.
    pub ops: Vec<Operator>,
}

impl ModelGraph {
    /// Creates a graph, validating that it is non-empty and all quantities
    /// are finite and non-negative.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or any operator carries a negative or
    /// non-finite quantity; graphs are constructed by the zoo builders,
    /// which must produce valid data.
    #[must_use]
    pub fn new(name: String, family: ModelFamily, ops: Vec<Operator>) -> Self {
        assert!(!ops.is_empty(), "model graph must have at least one op");
        for op in &ops {
            assert!(
                op.flops_fwd.is_finite()
                    && op.flops_fwd >= 0.0
                    && op.out_bytes.is_finite()
                    && op.out_bytes >= 0.0
                    && op.tp_comm_bytes.is_finite()
                    && op.tp_comm_bytes >= 0.0
                    && op.dispatch_bytes.is_finite()
                    && op.dispatch_bytes >= 0.0
                    && op.act_bytes.is_finite()
                    && op.act_bytes >= 0.0,
                "operator {} carries invalid quantities",
                op.name
            );
        }
        ModelGraph { name, family, ops }
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no operators (never true for zoo models).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.ops.iter().map(|o| o.params).sum()
    }

    /// Total parameter bytes at FP16.
    #[must_use]
    pub fn total_param_bytes(&self) -> f64 {
        self.total_params() as f64 * FP16_BYTES
    }

    /// Total forward FLOPs per sample.
    #[must_use]
    pub fn total_flops_fwd(&self) -> f64 {
        self.ops.iter().map(|o| o.flops_fwd).sum()
    }

    /// Activation traffic in bytes/sample crossing the boundary after
    /// operator `i` (i.e. between `ops[i]` and `ops[i + 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `i + 1 >= len()`: the boundary must be internal.
    #[must_use]
    pub fn boundary_bytes(&self, i: usize) -> f64 {
        assert!(i + 1 < self.ops.len(), "boundary {i} is not internal");
        self.ops[i].out_bytes
    }

    /// Parameter count in billions, convenient for printouts.
    #[must_use]
    pub fn params_billion(&self) -> f64 {
        self.total_params() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn op(name: &str, flops: f64, params: u64, out: f64) -> Operator {
        Operator {
            name: name.into(),
            kind: OpKind::TransformerLayer,
            flops_fwd: flops,
            params,
            out_bytes: out,
            tp_comm_bytes: 0.0,
            dispatch_bytes: 0.0,
            act_bytes: out,
        }
    }

    #[test]
    fn aggregates() {
        let g = ModelGraph::new(
            "toy".into(),
            ModelFamily::Bert,
            vec![op("a", 10.0, 100, 1.0), op("b", 20.0, 200, 2.0)],
        );
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_params(), 300);
        assert_eq!(g.total_param_bytes(), 600.0);
        assert_eq!(g.total_flops_fwd(), 30.0);
        assert_eq!(g.boundary_bytes(0), 1.0);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_graph_rejected() {
        let _ = ModelGraph::new("bad".into(), ModelFamily::Bert, vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid quantities")]
    fn nan_rejected() {
        let mut bad = op("a", 1.0, 1, 1.0);
        bad.flops_fwd = f64::NAN;
        let _ = ModelGraph::new("bad".into(), ModelFamily::Bert, vec![bad]);
    }

    #[test]
    #[should_panic(expected = "not internal")]
    fn boundary_out_of_range() {
        let g = ModelGraph::new("toy".into(), ModelFamily::Bert, vec![op("a", 1.0, 1, 1.0)]);
        let _ = g.boundary_bytes(0);
    }
}
