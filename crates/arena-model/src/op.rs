//! Coarse training operators.

use serde::Serialize;

/// Bytes per parameter / activation element in mixed-precision training.
pub const FP16_BYTES: f64 = 2.0;

/// The kind of a coarse operator.
///
/// The kind determines how the performance model treats the operator:
/// achievable compute efficiency, whether tensor parallelism incurs
/// activation collectives, and whether expert dispatch (all-to-all) traffic
/// exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum OpKind {
    /// Input embedding / patchify / stem convolution.
    Embedding,
    /// A convolutional residual block (WideResNet).
    ConvBlock,
    /// A dense transformer layer (attention + FFN).
    TransformerLayer,
    /// A transformer layer whose FFN is a mixture-of-experts.
    MoeLayer,
    /// Final classifier / language-model head.
    Head,
}

impl OpKind {
    /// Short label used in printouts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Embedding => "emb",
            OpKind::ConvBlock => "conv",
            OpKind::TransformerLayer => "xfmr",
            OpKind::MoeLayer => "moe",
            OpKind::Head => "head",
        }
    }
}

/// One coarse operator in a model graph.
///
/// All per-sample quantities are for the *forward* pass of one training
/// sample (one image, one sequence); the cost model applies the standard
/// 2× multiplier for the backward pass.
#[derive(Debug, Clone, Serialize)]
pub struct Operator {
    /// Human-readable name, e.g. `"layer17"`.
    pub name: String,
    /// Operator kind.
    pub kind: OpKind,
    /// Forward FLOPs per sample.
    pub flops_fwd: f64,
    /// Trainable parameter count.
    pub params: u64,
    /// Output activation size per sample in bytes (inter-operator traffic).
    pub out_bytes: f64,
    /// Bytes moved through tensor-parallel collectives per sample in the
    /// forward pass when this operator is sharded across a TP group.
    pub tp_comm_bytes: f64,
    /// Bytes moved through expert-dispatch all-to-all per sample in the
    /// forward pass (non-zero only for [`OpKind::MoeLayer`]).
    pub dispatch_bytes: f64,
    /// Peak live activation bytes per sample while computing this operator
    /// (inputs + intermediates retained for the backward pass).
    pub act_bytes: f64,
}

impl Operator {
    /// Parameter bytes at FP16.
    #[must_use]
    pub fn param_bytes(&self) -> f64 {
        self.params as f64 * FP16_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_bytes_is_fp16() {
        let op = Operator {
            name: "x".into(),
            kind: OpKind::Head,
            flops_fwd: 1.0,
            params: 1000,
            out_bytes: 1.0,
            tp_comm_bytes: 0.0,
            dispatch_bytes: 0.0,
            act_bytes: 1.0,
        };
        assert_eq!(op.param_bytes(), 2000.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            OpKind::Embedding.label(),
            OpKind::ConvBlock.label(),
            OpKind::TransformerLayer.label(),
            OpKind::MoeLayer.label(),
            OpKind::Head.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
