//! Large-model workload substrate: operator graphs and the Table-2 model zoo.
//!
//! The paper trains three model families — WideResNet, BERT and GShard
//! MoE — under adaptive parallelism. This crate replaces the real networks
//! with *operator graphs*: linear chains of coarse operators (a residual
//! block, a transformer layer, an MoE layer, …), each annotated with
//!
//! * forward FLOPs per training sample,
//! * parameter count,
//! * output activation bytes per sample (the inter-operator traffic that
//!   stage partitioning minimises), and
//! * tensor-parallel collective traffic per sample (the cost of sharding
//!   the operator across a TP group).
//!
//! These four quantities are exactly what the paper's stage-determination
//! heuristic (§4.2), memory-feasibility check (§5.1) and cost estimation
//! need; nothing in the scheduling/parallelism stack looks inside an
//! operator.
//!
//! The zoo ([`zoo`]) provides every `(family, size, global batch)`
//! configuration of Table 2, with architecture hyper-parameters chosen so
//! the realised parameter counts land near the nominal sizes.

pub mod bert;
pub mod graph;
pub mod moe;
pub mod op;
pub mod wresnet;
pub mod zoo;

pub use graph::ModelGraph;
pub use op::{OpKind, Operator};
pub use zoo::{ModelConfig, ModelFamily};
