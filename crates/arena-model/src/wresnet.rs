//! WideResNet graphs (Table 2: 0.5B – 6.8B parameters).

use crate::graph::ModelGraph;
use crate::op::{OpKind, Operator};
use crate::zoo::ModelFamily;

/// Bottleneck-block structure of ResNet-50: blocks per stage.
const BLOCKS: [usize; 4] = [3, 4, 6, 3];
/// Internal (3×3) widths of each stage at width multiplier 1.
const BASE_WIDTH: [usize; 4] = [64, 128, 256, 512];
/// Output spatial extent (H = W) of each stage on a 224×224 input.
const SPATIAL: [usize; 4] = [56, 28, 14, 7];

/// Architecture of one WideResNet configuration: ResNet-50 structure with
/// all channel counts scaled by `width`.
#[derive(Debug, Clone, Copy)]
pub struct WResNetConfig {
    /// Channel width multiplier applied to every convolution.
    pub width: f64,
}

/// Parameter count of the WRN-50-`width` architecture.
#[must_use]
pub fn param_count(width: f64) -> u64 {
    build_ops(width).iter().map(|o| o.params).sum()
}

/// Finds the width multiplier whose realised parameter count hits
/// `target_params` (binary search; parameters grow monotonically in width).
#[must_use]
pub fn width_for_params(target_params: f64) -> f64 {
    let (mut lo, mut hi) = (1.0_f64, 64.0_f64);
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        if (param_count(mid) as f64) < target_params {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Returns the architecture used for a nominal Table-2 size.
///
/// # Panics
///
/// Panics on a size that is not listed in Table 2.
#[must_use]
pub fn config_for(params_b: f64) -> WResNetConfig {
    const SIZES: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 6.8];
    assert!(
        SIZES.iter().any(|&s| (s - params_b).abs() < 1e-6),
        "WRes-{params_b}B is not a Table-2 configuration"
    );
    WResNetConfig {
        width: width_for_params(params_b * 1e9),
    }
}

/// Rounded channel count at a given width multiplier.
fn ch(base: usize, width: f64) -> u64 {
    ((base as f64 * width).round() as u64).max(1)
}

/// Builds the operator list for WRN-50-`width`.
fn build_ops(width: f64) -> Vec<Operator> {
    let mut ops = Vec::with_capacity(2 + BLOCKS.iter().sum::<usize>());

    // Stem: 7×7 stride-2 convolution to 112×112, then pooling to 56×56.
    let stem_out = ch(64, width);
    let stem_params = 3 * 49 * stem_out;
    ops.push(Operator {
        name: "stem".into(),
        kind: OpKind::Embedding,
        flops_fwd: 2.0 * stem_params as f64 * 112.0 * 112.0,
        params: stem_params,
        out_bytes: (stem_out * 56 * 56) as f64 * 2.0,
        tp_comm_bytes: 0.0,
        dispatch_bytes: 0.0,
        act_bytes: (stem_out * 112 * 112) as f64 * 2.0 * 2.0,
    });

    let mut cin = stem_out;
    for (stage, (&nblocks, (&bw, &sp))) in BLOCKS
        .iter()
        .zip(BASE_WIDTH.iter().zip(SPATIAL.iter()))
        .enumerate()
    {
        let w = ch(bw, width);
        let cout = 4 * w;
        for b in 0..nblocks {
            // Bottleneck: 1×1 cin→w, 3×3 w→w, 1×1 w→cout (+ projection on
            // the first block of a stage).
            let mut params = cin * w + 9 * w * w + w * cout;
            if b == 0 {
                params += cin * cout;
            }
            let hw = (sp * sp) as f64;
            ops.push(Operator {
                name: format!("s{stage}b{b}"),
                kind: OpKind::ConvBlock,
                flops_fwd: 2.0 * params as f64 * hw,
                params,
                out_bytes: cout as f64 * hw * 2.0,
                // Channel-sharded convolutions all-reduce the block output.
                tp_comm_bytes: cout as f64 * hw * 2.0,
                dispatch_bytes: 0.0,
                // Beyond the raw block tensors, convolution stacks retain
                // BN statistics, pre-activation copies and im2col buffers;
                // the 1.6x factor calibrates the live footprint so that
                // WRes-2B cannot fit on 2 x 40 GiB devices (Fig. 3).
                act_bytes: (cin + 2 * w + cout) as f64 * hw * 2.0 * 1.6,
            });
            cin = cout;
        }
    }

    // Classifier head on pooled features.
    let feat = cin;
    ops.push(Operator {
        name: "fc".into(),
        kind: OpKind::Head,
        flops_fwd: 2.0 * (feat * 1000) as f64,
        params: feat * 1000,
        out_bytes: 1000.0 * 4.0,
        tp_comm_bytes: 0.0,
        dispatch_bytes: 0.0,
        act_bytes: (feat + 1000) as f64 * 2.0,
    });

    ops
}

/// Builds the operator graph for a nominal Table-2 WideResNet size.
#[must_use]
pub fn build(params_b: f64) -> ModelGraph {
    let cfg = config_for(params_b);
    ModelGraph::new(
        format!("WRes-{params_b}B"),
        ModelFamily::WideResNet,
        build_ops(cfg.width),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realised_params_match_nominal() {
        for &size in &[0.5, 1.0, 2.0, 4.0, 6.8] {
            let g = build(size);
            let realised = g.params_billion();
            let err = (realised - size).abs() / size;
            assert!(
                err < 0.02,
                "WRes-{size}B realises {realised:.3}B params ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn width_search_is_monotone() {
        assert!(width_for_params(1e9) > width_for_params(0.5e9));
        assert!(width_for_params(6.8e9) > width_for_params(4e9));
    }

    #[test]
    fn block_structure() {
        let g = build(1.0);
        let blocks = g.ops.iter().filter(|o| o.kind == OpKind::ConvBlock).count();
        assert_eq!(blocks, BLOCKS.iter().sum::<usize>());
        assert_eq!(g.ops.len(), blocks + 2);
    }

    #[test]
    fn early_stages_have_larger_activations() {
        // Convolutional nets move most activation bytes early: the first
        // stage boundary must carry more traffic than the last.
        let g = build(2.0);
        let first = g.boundary_bytes(1);
        let last = g.boundary_bytes(g.len() - 3);
        assert!(first > last);
    }

    #[test]
    #[should_panic(expected = "not a Table-2 configuration")]
    fn unknown_size_panics() {
        let _ = config_for(3.0);
    }
}
