//! GShard mixture-of-experts transformer graphs (Table 2: 0.69B – 27B).

use crate::graph::ModelGraph;
use crate::op::{OpKind, Operator};
use crate::zoo::ModelFamily;

/// Architecture hyper-parameters of one GShard-MoE configuration.
#[derive(Debug, Clone, Copy)]
pub struct MoeConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Number of transformer layers (alternating dense / MoE FFN).
    pub layers: usize,
    /// Number of experts in each MoE layer.
    pub experts: usize,
    /// Number of experts each token is routed to.
    pub top_k: usize,
    /// Sequence length per sample.
    pub seq: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

/// Returns the architecture used for a nominal Table-2 size.
///
/// Following GShard, every other layer replaces the dense FFN with an
/// expert-parallel MoE FFN; parameter counts are dominated by expert
/// weights while per-token FLOPs stay close to the dense model (top-2
/// routing).
///
/// # Panics
///
/// Panics on a size that is not listed in Table 2.
#[must_use]
pub fn config_for(params_b: f64) -> MoeConfig {
    let (hidden, layers, experts) = match params_b {
        x if (x - 0.69).abs() < 1e-6 => (768, 8, 32),
        x if (x - 1.3).abs() < 1e-6 => (768, 16, 32),
        x if (x - 2.4).abs() < 1e-6 => (1024, 16, 32),
        x if (x - 10.0).abs() < 1e-6 => (1536, 16, 64),
        x if (x - 27.0).abs() < 1e-6 => (2048, 24, 64),
        other => panic!("MoE-{other}B is not a Table-2 configuration"),
    };
    MoeConfig {
        hidden,
        layers,
        experts,
        top_k: 2,
        seq: 1024,
        vocab: 30528,
    }
}

/// Builds the operator graph for a nominal Table-2 MoE size.
#[must_use]
pub fn build(params_b: f64) -> ModelGraph {
    let cfg = config_for(params_b);
    let h = cfg.hidden as f64;
    let s = cfg.seq as f64;
    let v = cfg.vocab as f64;
    let k = cfg.top_k as f64;

    let mut ops = Vec::with_capacity(cfg.layers + 2);

    ops.push(Operator {
        name: "embedding".into(),
        kind: OpKind::Embedding,
        flops_fwd: 2.0 * s * h,
        params: (cfg.vocab * cfg.hidden) as u64,
        out_bytes: s * h * 2.0,
        tp_comm_bytes: 0.0,
        dispatch_bytes: 0.0,
        act_bytes: 2.0 * s * h * 2.0,
    });

    // Attention FLOPs/params shared by both layer kinds.
    let attn_flops = 8.0 * s * h * h + 4.0 * s * s * h;
    let attn_params = 4 * cfg.hidden * cfg.hidden;

    for i in 0..cfg.layers {
        if i % 2 == 1 {
            // MoE layer: E experts of 8h^2 params each; each token runs
            // through top_k experts (16h^2 FLOPs per token per expert).
            // Expert dispatch moves each routed token's activation through
            // an all-to-all twice (dispatch + combine).
            ops.push(Operator {
                name: format!("moe_layer{i}"),
                kind: OpKind::MoeLayer,
                flops_fwd: attn_flops + k * 16.0 * s * h * h,
                params: (attn_params + cfg.experts * 8 * cfg.hidden * cfg.hidden) as u64,
                out_bytes: s * h * 2.0,
                tp_comm_bytes: 2.0 * s * h * 2.0,
                dispatch_bytes: 2.0 * k * s * h * 2.0,
                act_bytes: (14.0 + 2.0 * k) * s * h * 2.0,
            });
        } else {
            // Dense transformer layer.
            ops.push(Operator {
                name: format!("dense_layer{i}"),
                kind: OpKind::TransformerLayer,
                flops_fwd: attn_flops + 16.0 * s * h * h,
                params: (attn_params + 8 * cfg.hidden * cfg.hidden) as u64,
                out_bytes: s * h * 2.0,
                tp_comm_bytes: 2.0 * s * h * 2.0,
                dispatch_bytes: 0.0,
                act_bytes: 14.0 * s * h * 2.0,
            });
        }
    }

    ops.push(Operator {
        name: "lm_head".into(),
        kind: OpKind::Head,
        flops_fwd: 2.0 * s * h * v,
        params: (cfg.vocab * cfg.hidden) as u64,
        out_bytes: s * 4.0,
        tp_comm_bytes: s * v * 2.0 / 16.0,
        dispatch_bytes: 0.0,
        act_bytes: s * v * 2.0,
    });

    ModelGraph::new(format!("MoE-{params_b}B"), ModelFamily::Moe, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realised_params_match_nominal() {
        for &size in &[0.69, 1.3, 2.4, 10.0, 27.0] {
            let g = build(size);
            let realised = g.params_billion();
            let err = (realised - size).abs() / size;
            assert!(
                err < 0.12,
                "MoE-{size}B realises {realised:.2}B params ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn moe_layers_alternate() {
        let g = build(1.3);
        let moe = g.ops.iter().filter(|o| o.kind == OpKind::MoeLayer).count();
        let dense = g
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::TransformerLayer)
            .count();
        assert_eq!(moe, 8);
        assert_eq!(dense, 8);
    }

    #[test]
    fn flops_grow_much_slower_than_params() {
        // MoE's defining property: 20x the parameters of the 1.3B model at
        // far less than 20x the per-sample FLOPs.
        let small = build(1.3);
        let large = build(27.0);
        let param_ratio = large.total_params() as f64 / small.total_params() as f64;
        let flop_ratio = large.total_flops_fwd() / small.total_flops_fwd();
        assert!(param_ratio > 15.0);
        assert!(flop_ratio < param_ratio / 2.0);
    }

    #[test]
    fn moe_layers_have_dispatch_traffic() {
        let g = build(2.4);
        for op in &g.ops {
            match op.kind {
                OpKind::MoeLayer => assert!(op.dispatch_bytes > 0.0),
                _ => assert_eq!(op.dispatch_bytes, 0.0),
            }
        }
    }
}
