//! BERT-family transformer graphs (Table 2: 0.76B – 6.7B parameters).

use crate::graph::ModelGraph;
use crate::op::{OpKind, Operator};
use crate::zoo::ModelFamily;

/// Architecture hyper-parameters of one BERT configuration.
#[derive(Debug, Clone, Copy)]
pub struct BertConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Sequence length per sample.
    pub seq: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

/// Returns the architecture used for a nominal Table-2 size.
///
/// The `(hidden, layers)` pairs follow the Megatron-LM scaling ladder used
/// by Alpa for the same nominal sizes.
///
/// # Panics
///
/// Panics on a size that is not listed in Table 2.
#[must_use]
pub fn config_for(params_b: f64) -> BertConfig {
    let (hidden, layers) = match params_b {
        x if (x - 0.76).abs() < 1e-6 => (1536, 24),
        x if (x - 1.3).abs() < 1e-6 => (2048, 24),
        x if (x - 2.6).abs() < 1e-6 => (2560, 32),
        x if (x - 6.7).abs() < 1e-6 => (4096, 32),
        other => panic!("BERT-{other}B is not a Table-2 configuration"),
    };
    BertConfig {
        hidden,
        layers,
        seq: 512,
        vocab: 30528,
    }
}

/// Builds the operator graph for a nominal Table-2 BERT size.
#[must_use]
pub fn build(params_b: f64) -> ModelGraph {
    let cfg = config_for(params_b);
    let h = cfg.hidden as f64;
    let s = cfg.seq as f64;
    let v = cfg.vocab as f64;

    let mut ops = Vec::with_capacity(cfg.layers + 2);

    // Token + position embeddings: a lookup, negligible FLOPs.
    ops.push(Operator {
        name: "embedding".into(),
        kind: OpKind::Embedding,
        flops_fwd: 2.0 * s * h,
        params: (cfg.vocab * cfg.hidden) as u64,
        out_bytes: s * h * 2.0,
        tp_comm_bytes: 0.0,
        dispatch_bytes: 0.0,
        act_bytes: 2.0 * s * h * 2.0,
    });

    // Transformer layers: 12h^2 parameters; forward FLOPs per sample are
    // the standard 24·s·h^2 (QKV/proj/FFN matmuls) + 4·s^2·h (attention
    // scores and context). Megatron-style tensor parallelism all-reduces
    // the s×h activation twice per layer in the forward pass.
    for i in 0..cfg.layers {
        ops.push(Operator {
            name: format!("layer{i}"),
            kind: OpKind::TransformerLayer,
            flops_fwd: 24.0 * s * h * h + 4.0 * s * s * h,
            params: (12 * cfg.hidden * cfg.hidden + 13 * cfg.hidden) as u64,
            out_bytes: s * h * 2.0,
            tp_comm_bytes: 2.0 * s * h * 2.0,
            dispatch_bytes: 0.0,
            act_bytes: 14.0 * s * h * 2.0,
        });
    }

    // Masked-LM head projecting back to the vocabulary.
    ops.push(Operator {
        name: "mlm_head".into(),
        kind: OpKind::Head,
        flops_fwd: 2.0 * s * h * v,
        params: (cfg.vocab * cfg.hidden) as u64,
        out_bytes: s * 4.0,
        tp_comm_bytes: s * v * 2.0 / 16.0,
        dispatch_bytes: 0.0,
        act_bytes: s * v * 2.0,
    });

    ModelGraph::new(format!("BERT-{params_b}B"), ModelFamily::Bert, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realised_params_match_nominal() {
        for &size in &[0.76, 1.3, 2.6, 6.7] {
            let g = build(size);
            let realised = g.params_billion();
            let err = (realised - size).abs() / size;
            assert!(
                err < 0.1,
                "BERT-{size}B realises {realised:.2}B params ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn bigger_config_has_more_flops() {
        let small = build(0.76);
        let large = build(6.7);
        assert!(large.total_flops_fwd() > 4.0 * small.total_flops_fwd());
    }

    #[test]
    fn layer_count_matches_config() {
        let g = build(2.6);
        let layers = g
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::TransformerLayer)
            .count();
        assert_eq!(layers, 32);
        // Embedding first, head last.
        assert_eq!(g.ops.first().unwrap().kind, OpKind::Embedding);
        assert_eq!(g.ops.last().unwrap().kind, OpKind::Head);
    }

    #[test]
    #[should_panic(expected = "not a Table-2 configuration")]
    fn unknown_size_panics() {
        let _ = config_for(5.0);
    }
}
