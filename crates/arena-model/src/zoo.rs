//! The Table-2 model zoo: every `(family, size, global batch)` used in the
//! paper's experiments.

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;
use crate::{bert, moe, wresnet};

/// The three model families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// WideResNet (vision).
    WideResNet,
    /// BERT (dense transformer).
    Bert,
    /// GShard mixture-of-experts transformer.
    Moe,
}

impl ModelFamily {
    /// Short label used in job names, e.g. `"WRes"`.
    #[must_use]
    pub fn short(self) -> &'static str {
        match self {
            ModelFamily::WideResNet => "WRes",
            ModelFamily::Bert => "BERT",
            ModelFamily::Moe => "MoE",
        }
    }

    /// Nominal sizes (billions of parameters) listed in Table 2.
    #[must_use]
    pub fn table2_sizes(self) -> &'static [f64] {
        match self {
            ModelFamily::WideResNet => &[0.5, 1.0, 2.0, 4.0, 6.8],
            ModelFamily::Bert => &[0.76, 1.3, 2.6, 6.7],
            ModelFamily::Moe => &[0.69, 1.3, 2.4, 10.0, 27.0],
        }
    }

    /// Global batch sizes listed in Table 2.
    #[must_use]
    pub fn table2_batches(self) -> &'static [usize] {
        match self {
            ModelFamily::WideResNet => &[256, 512, 1024],
            ModelFamily::Bert => &[128, 256, 512],
            ModelFamily::Moe => &[256, 512, 1024],
        }
    }

    /// All three families.
    #[must_use]
    pub fn all() -> [ModelFamily; 3] {
        [ModelFamily::WideResNet, ModelFamily::Bert, ModelFamily::Moe]
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short())
    }
}

/// One trainable configuration: a family, a nominal size and a global
/// batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model family.
    pub family: ModelFamily,
    /// Nominal size in billions of parameters (a Table-2 value).
    pub params_b: f64,
    /// Global (cluster-wide) batch size in samples.
    pub global_batch: usize,
}

impl ModelConfig {
    /// Creates a configuration.
    #[must_use]
    pub fn new(family: ModelFamily, params_b: f64, global_batch: usize) -> Self {
        ModelConfig {
            family,
            params_b,
            global_batch,
        }
    }

    /// Display name, e.g. `"BERT-2.6B"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}-{}B", self.family.short(), self.params_b)
    }

    /// Builds the operator graph for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the size is not a Table-2 value for the family.
    #[must_use]
    pub fn build(&self) -> ModelGraph {
        match self.family {
            ModelFamily::WideResNet => wresnet::build(self.params_b),
            ModelFamily::Bert => bert::build(self.params_b),
            ModelFamily::Moe => moe::build(self.params_b),
        }
    }
}

/// Every `(family, size)` pair of Table 2 at its middle global batch size.
#[must_use]
pub fn table2_configs() -> Vec<ModelConfig> {
    let mut out = Vec::new();
    for family in ModelFamily::all() {
        let batch = family.table2_batches()[1];
        for &size in family.table2_sizes() {
            out.push(ModelConfig::new(family, size, batch));
        }
    }
    out
}

/// Every `(family, size, batch)` combination of Table 2.
#[must_use]
pub fn table2_full_grid() -> Vec<ModelConfig> {
    let mut out = Vec::new();
    for family in ModelFamily::all() {
        for &size in family.table2_sizes() {
            for &batch in family.table2_batches() {
                out.push(ModelConfig::new(family, size, batch));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_fourteen_sizes() {
        assert_eq!(table2_configs().len(), 5 + 4 + 5);
    }

    #[test]
    fn full_grid_is_cross_product() {
        assert_eq!(table2_full_grid().len(), 5 * 3 + 4 * 3 + 5 * 3);
    }

    #[test]
    fn every_table2_config_builds() {
        for cfg in table2_configs() {
            let g = cfg.build();
            assert!(g.len() >= 3, "{} has too few ops", cfg.name());
            assert!(g.total_flops_fwd() > 0.0);
            assert_eq!(g.family, cfg.family);
        }
    }

    #[test]
    fn names_round_trip_family_and_size() {
        let cfg = ModelConfig::new(ModelFamily::Moe, 2.4, 512);
        assert_eq!(cfg.name(), "MoE-2.4B");
        assert_eq!(cfg.build().name, "MoE-2.4B");
    }
}
