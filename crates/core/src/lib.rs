//! **Arena** — a co-design of cluster scheduling and adaptive parallelism
//! for large-model training on heterogeneous GPU clusters.
//!
//! This umbrella crate re-exports the full stack and hosts the
//! [`experiments`] module that regenerates every table and figure of the
//! paper's evaluation.
//!
//! # Layers
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`cluster`] | `arena-cluster` | heterogeneous GPU cluster model |
//! | [`model`] | `arena-model` | operator graphs + Table-2 model zoo |
//! | [`parallelism`] | `arena-parallelism` | plans, stage determination, plan spaces |
//! | [`perf`] | `arena-perf` | analytical ground-truth performance model |
//! | [`estimator`] | `arena-estimator` | the Cell abstraction + agile estimation |
//! | [`tuner`] | `arena-tuner` | Cell-guided pruned parallelism tuning |
//! | [`sched`] | `arena-sched` | Arena's scheduler + FCFS/Gandiva/Gavel/ElasticFlow |
//! | [`runtime`] | `arena-runtime` | deterministic worker pool for parallel fan-out |
//! | [`trace`] | `arena-trace` | synthetic Philly/Helios/PAI workloads |
//! | [`sim`] | `arena-sim` | discrete-event cluster simulator |
//! | [`server`] | `arena-server` | resident scheduling daemon + JSONL protocol |
//!
//! # Quickstart
//!
//! ```
//! use arena::prelude::*;
//!
//! // A heterogeneous cluster and a job.
//! let cluster = arena::cluster::presets::physical_testbed();
//! let service = PlanService::new(&cluster, CostParams::default(), 42);
//! let model = ModelConfig::new(ModelFamily::Bert, 1.3, 256);
//!
//! // Arena's view: estimate the job's Cells on 8 A40 GPUs...
//! let choice = service.cell_choice(&model, 8, GpuTypeId(0)).unwrap();
//! // ...then tune the chosen Cell to its real plan.
//! let plan = service.arena_run(&model, 8, GpuTypeId(0)).unwrap();
//! assert!(plan.throughput_sps > 0.0);
//! assert!(choice.stages >= 1);
//! ```

pub use arena_cluster as cluster;
pub use arena_estimator as estimator;
pub use arena_model as model;
pub use arena_parallelism as parallelism;
pub use arena_perf as perf;
pub use arena_runtime as runtime;
pub use arena_sched as sched;
pub use arena_server as server;
pub use arena_sim as sim;
pub use arena_trace as trace;
pub use arena_tuner as tuner;

pub mod experiments;
pub mod report;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use arena_cluster::{Cluster, GpuSpec, GpuTypeId, LinkKind, NodeSpec, PartitionMap};
    pub use arena_estimator::{Cell, CellEstimator, Favor};
    pub use arena_model::zoo::{ModelConfig, ModelFamily};
    pub use arena_model::ModelGraph;
    pub use arena_parallelism::{PipelinePlan, PlanSpace, StagePlan};
    pub use arena_perf::{CostParams, GroundTruth, HwTarget};
    pub use arena_runtime::WorkerPool;
    pub use arena_sched::{
        ArenaPolicy, ArenaSolverPolicy, ArenaVariant, ElasticFlowPolicy, FcfsPolicy, GandivaPolicy,
        GavelPolicy, PlanService, Policy, QueueOrder,
    };
    pub use arena_sim::{
        simulate, simulate_sharded, simulate_sharded_traced, simulate_sharded_with_faults,
        simulate_sharded_with_faults_traced, simulate_stream, simulate_stream_with_faults,
        simulate_traced, simulate_with_faults, simulate_with_faults_traced, Decision, DecisionKind,
        MetricsRegistry, Obs, ShardPlan, SimConfig, SimResult, StreamSummary, TraceReport,
    };
    pub use arena_trace::{generate, GenSource, JobSpec, TraceConfig, TraceKind, TraceSource};
}
