//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a name → count mapping as a two-column table, sorted by key
/// (the shape of a decision-reason breakdown).
#[must_use]
pub fn count_table(title: &str, counts: &std::collections::BTreeMap<String, usize>) -> Table {
    let mut t = Table::new(title, &["key", "count"]);
    for (k, v) in counts {
        t.row(vec![k.clone(), v.to_string()]);
    }
    t
}

/// Formats a float with 3 significant decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats seconds as `h:mm:ss`.
#[must_use]
pub fn hms(seconds: f64) -> String {
    let s = seconds.max(0.0).round() as u64;
    format!("{}:{:02}:{:02}", s / 3600, (s % 3600) / 60, s % 60)
}

/// Formats a ratio as a percentage with 1 decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "column_b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["long_cell".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a          column_b"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn bad_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(hms(3723.0), "1:02:03");
        assert_eq!(pct(0.489), "48.9%");
    }
}
