//! Observability conformance workload: the five-way policy comparison
//! run with decision tracing enabled.
//!
//! Every policy schedules the same testbed trace while an [`Obs`] handle
//! records a [`Decision`](arena_sim::Decision) for each place / evict /
//! drop / requeue it takes, plus engine counters (event mix, queue-depth
//! gauges) and estimator cache statistics. The output is one provenance
//! summary per policy and the full decision log as JSON Lines — the
//! workload the golden-trace test harness snapshots.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use arena_cluster::presets;
use arena_perf::CostParams;
use arena_runtime::WorkerPool;
use arena_sched::PlanService;
use arena_sim::{simulate_traced, DecisionKind, Obs, SimConfig, SimResult, Timeline};
use arena_trace::{generate, TraceConfig, TraceKind};

use crate::report::{count_table, f3, Table};

/// One policy's decision-provenance summary from the traced workload.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSummary {
    /// Policy display name.
    pub policy: String,
    /// Total recorded decisions (policy + engine provenance).
    pub decisions: usize,
    /// Placement decisions.
    pub places: usize,
    /// Placements flagged opportunistic (evictable backfill).
    pub opportunistic_places: usize,
    /// Eviction decisions.
    pub evictions: usize,
    /// Job-rejection decisions.
    pub drops: usize,
    /// Engine requeue provenance (failure evictions, capacity races).
    pub requeues: usize,
    /// Distinct `kind/reason` labels observed.
    pub distinct_reasons: usize,
    /// Scheduling passes (completed `sim.schedule` spans).
    pub sched_passes: u64,
    /// Estimator estimate-cache hits over the run.
    pub estimate_hits: u64,
    /// Estimator estimate-cache misses over the run.
    pub estimate_misses: u64,
    /// Decision counts per `kind/reason` key.
    pub reason_counts: BTreeMap<String, usize>,
}

/// One traced policy run: its summary plus the exported decision log.
#[derive(Debug, Clone, Serialize)]
pub struct TraceRun {
    /// Per-policy provenance summary.
    pub summary: TraceSummary,
    /// The full decision log as JSON Lines (one object per decision).
    pub jsonl: String,
}

/// Runs the five-way comparison with tracing enabled.
///
/// Each policy gets a fresh [`PlanService`] built from the same seed, so
/// all runs see identical ground truth *and* the estimator counters in
/// each report cover exactly that run.
#[must_use]
pub fn conformance_workload(quick: bool) -> Vec<TraceRun> {
    let cluster = presets::physical_testbed();
    let hours = if quick { 1.0 } else { 2.0 };
    let trace_cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&trace_cfg);
    let sim_cfg = SimConfig::new(if quick { 12.0 * 3600.0 } else { 24.0 * 3600.0 });

    // One traced run per worker thread: each policy already gets its own
    // service and Obs sink, so runs are independent; the pool merges them
    // back in the comparison set's order.
    let n = crate::experiments::comparison_policies().len();
    WorkerPool::from_env().map_indices(n, |i| {
        let mut policy = crate::experiments::comparison_policies()
            .into_iter()
            .nth(i)
            .expect("policy index in range");
        let service = PlanService::new(&cluster, CostParams::default(), 27);
        let obs = Obs::enabled();
        let r = simulate_traced(&cluster, &jobs, policy.as_mut(), &service, &sim_cfg, &obs);
        let t = &r.trace;
        let kind_count = |k: DecisionKind| t.decisions.iter().filter(|d| d.kind == k).count();
        let summary = TraceSummary {
            policy: r.policy.clone(),
            decisions: t.decisions.len(),
            places: kind_count(DecisionKind::Place),
            opportunistic_places: t.decisions.iter().filter(|d| d.opportunistic).count(),
            evictions: kind_count(DecisionKind::Evict),
            drops: kind_count(DecisionKind::Drop),
            requeues: kind_count(DecisionKind::Requeue),
            distinct_reasons: t.decision_counts().len(),
            sched_passes: t.spans.get("sim.schedule").map_or(0, |s| s.count),
            estimate_hits: t
                .counters
                .get("estimator.estimate.hits")
                .copied()
                .unwrap_or(0),
            estimate_misses: t
                .counters
                .get("estimator.estimate.misses")
                .copied()
                .unwrap_or(0),
            reason_counts: t.decision_counts(),
        };
        TraceRun {
            summary,
            jsonl: t.decisions_jsonl(),
        }
    })
}

/// Renders the per-policy provenance comparison.
#[must_use]
pub fn trace_table(runs: &[TraceRun]) -> Table {
    let mut t = Table::new(
        "Observability: decision provenance per policy (traced workload)",
        &[
            "policy",
            "decisions",
            "place",
            "opp",
            "evict",
            "drop",
            "requeue",
            "reasons",
            "passes",
            "est hit rate",
        ],
    );
    for run in runs {
        let s = &run.summary;
        let lookups = s.estimate_hits + s.estimate_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            s.estimate_hits as f64 / lookups as f64
        };
        t.row(vec![
            s.policy.clone(),
            s.decisions.to_string(),
            s.places.to_string(),
            s.opportunistic_places.to_string(),
            s.evictions.to_string(),
            s.drops.to_string(),
            s.requeues.to_string(),
            s.distinct_reasons.to_string(),
            s.sched_passes.to_string(),
            f3(hit_rate),
        ]);
    }
    t
}

/// Renders one policy's `kind/reason` breakdown.
#[must_use]
pub fn reason_table(run: &TraceRun) -> Table {
    count_table(
        &format!("Decision reasons: {}", run.summary.policy),
        &run.summary.reason_counts,
    )
}

/// One job's slice of a timeline summary (interval accounting + JCT).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobTimelineSummary {
    /// Job id.
    pub id: u64,
    /// Total queueing delay, seconds (all visits to `Queued`).
    pub queue_s: f64,
    /// Restart/acquisition overhead, seconds (time in `Placed`).
    pub placed_s: f64,
    /// Time making progress, seconds.
    pub run_s: f64,
    /// GPU-seconds making progress.
    pub productive_gpu_s: f64,
    /// GPU-seconds held (productive + restart stalls).
    pub allocated_gpu_s: f64,
    /// Placements out of the queue or while active.
    pub placements: u32,
    /// Rescales/migrations of an active job.
    pub moves: u32,
    /// Times the job lost its GPUs and re-queued.
    pub preemptions: u32,
    /// Completion time minus submission, seconds (None if unfinished).
    pub jct_s: Option<f64>,
}

/// One policy's timeline summary: time-in-state, utilization and the
/// per-job accounting. Serialised to `results/` by `repro timeline` and
/// consumed back by `arena-analyze summarize` / `diff`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineSummary {
    /// Policy display name.
    pub policy: String,
    /// Close time of the timeline, seconds.
    pub end_s: f64,
    /// Recorded job-state transitions.
    pub events: usize,
    /// Recorded GPU acquire/release events.
    pub allocs: usize,
    /// Total job-time per state, seconds.
    pub time_in_state: BTreeMap<String, f64>,
    /// Time-weighted mean busy fraction of the cluster.
    pub mean_util_frac: f64,
    /// Time-weighted mean fragmentation (free GPUs stranded on
    /// partially-busy nodes).
    pub mean_frag_frac: f64,
    /// GPU-seconds making progress, summed over jobs.
    pub productive_gpu_s: f64,
    /// GPU-seconds held, summed over jobs.
    pub allocated_gpu_s: f64,
    /// Productive GPU-seconds over nameplate capacity.
    pub cluster_util_frac: f64,
    /// Mean JCT over finished jobs, seconds.
    pub avg_jct_s: f64,
    /// Jobs finished before the horizon.
    pub finished: usize,
    /// Per-job accounting, ordered by job id.
    pub jobs: Vec<JobTimelineSummary>,
}

/// One traced policy run with its exported timeline artifacts.
#[derive(Debug, Clone, Serialize)]
pub struct TimelineRun {
    /// The summary `arena-analyze` consumes.
    pub summary: TimelineSummary,
    /// Chrome-trace/Perfetto JSON (load in `chrome://tracing` or
    /// ui.perfetto.dev).
    pub perfetto_json: String,
    /// Utilization time-series as JSON Lines.
    pub utilization_jsonl: String,
}

/// Time-weighted mean of the fragmentation series.
fn mean_frag(tl: &Timeline) -> f64 {
    let series = tl.utilization();
    let (mut area, mut span) = (0.0, 0.0);
    for w in series.windows(2) {
        let dt = w[1].time_s - w[0].time_s;
        area += w[0].frag_frac * dt;
        span += dt;
    }
    if span > 0.0 {
        area / span
    } else {
        0.0
    }
}

/// Builds the summary + exports for one traced run.
#[must_use]
pub fn summarize_run(r: &SimResult) -> TimelineRun {
    let tl = &r.trace.timeline;
    let accounts = tl.accounts();
    let jobs: Vec<JobTimelineSummary> = r
        .records
        .iter()
        .map(|rec| {
            let acc = accounts.get(&rec.id).copied().unwrap_or_default();
            JobTimelineSummary {
                id: rec.id,
                queue_s: acc.queue_s,
                placed_s: acc.placed_s,
                run_s: acc.run_s,
                productive_gpu_s: acc.productive_gpu_s,
                allocated_gpu_s: acc.allocated_gpu_s,
                placements: acc.placements,
                moves: acc.moves,
                preemptions: acc.preemptions,
                jct_s: rec.jct_s(),
            }
        })
        .collect();
    let summary = TimelineSummary {
        policy: r.policy.clone(),
        end_s: tl.end_s,
        events: tl.events.len(),
        allocs: tl.allocs.len(),
        time_in_state: tl
            .time_in_state()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        mean_util_frac: tl.mean_utilization(),
        mean_frag_frac: mean_frag(tl),
        productive_gpu_s: r.metrics.productive_gpu_s,
        allocated_gpu_s: r.metrics.allocated_gpu_s,
        cluster_util_frac: r.metrics.cluster_util_frac,
        avg_jct_s: r.metrics.avg_jct_s,
        finished: r.metrics.finished,
        jobs,
    };
    TimelineRun {
        summary,
        perfetto_json: tl.perfetto_json(&r.policy),
        utilization_jsonl: tl.utilization_jsonl(),
    }
}

/// Runs the five-way comparison with tracing enabled and collects each
/// policy's timeline summary plus its Perfetto / utilization exports.
/// Same workload and seed as [`conformance_workload`], so the decision
/// logs and timelines describe the same runs.
#[must_use]
pub fn timeline_workload(quick: bool) -> Vec<TimelineRun> {
    let cluster = presets::physical_testbed();
    let hours = if quick { 1.0 } else { 2.0 };
    let trace_cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&trace_cfg);
    let sim_cfg = SimConfig::new(if quick { 12.0 * 3600.0 } else { 24.0 * 3600.0 });

    let n = crate::experiments::comparison_policies().len();
    WorkerPool::from_env().map_indices(n, |i| {
        let mut policy = crate::experiments::comparison_policies()
            .into_iter()
            .nth(i)
            .expect("policy index in range");
        let service = PlanService::new(&cluster, CostParams::default(), 27);
        let obs = Obs::enabled();
        let r = simulate_traced(&cluster, &jobs, policy.as_mut(), &service, &sim_cfg, &obs);
        r.trace
            .timeline
            .validate()
            .expect("engine emits a legal timeline");
        summarize_run(&r)
    })
}

/// Renders the per-policy time-in-state + utilization comparison.
#[must_use]
pub fn timeline_summary_table(summaries: &[TimelineSummary]) -> Table {
    let mut t = Table::new(
        "Observability: per-policy time-in-state and utilization",
        &[
            "policy",
            "events",
            "queued_s",
            "placed_s",
            "running_s",
            "util",
            "frag",
            "prod/alloc",
            "cluster util",
            "avg JCT s",
        ],
    );
    for s in summaries {
        let state = |k: &str| s.time_in_state.get(k).copied().unwrap_or(0.0);
        let eff = if s.allocated_gpu_s > 0.0 {
            s.productive_gpu_s / s.allocated_gpu_s
        } else {
            0.0
        };
        t.row(vec![
            s.policy.clone(),
            s.events.to_string(),
            format!("{:.0}", state("Queued")),
            format!("{:.0}", state("Placed")),
            format!("{:.0}", state("Running")),
            f3(s.mean_util_frac),
            f3(s.mean_frag_frac),
            f3(eff),
            f3(s.cluster_util_frac),
            format!("{:.0}", s.avg_jct_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabricated() -> TraceRun {
        TraceRun {
            summary: TraceSummary {
                policy: "Test".into(),
                decisions: 3,
                places: 2,
                opportunistic_places: 1,
                evictions: 0,
                drops: 1,
                requeues: 0,
                distinct_reasons: 2,
                sched_passes: 5,
                estimate_hits: 3,
                estimate_misses: 1,
                reason_counts: [
                    ("place/best-cell".to_string(), 2),
                    ("drop/x".to_string(), 1),
                ]
                .into_iter()
                .collect(),
            },
            jsonl: String::new(),
        }
    }

    #[test]
    fn tables_render() {
        let runs = vec![fabricated()];
        let t = trace_table(&runs);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("0.750"), "hit rate column");
        let rt = reason_table(&runs[0]);
        assert_eq!(rt.num_rows(), 2);
        assert!(rt.render().contains("place/best-cell"));
    }

    #[test]
    fn summarize_run_accounts_for_a_tiny_traced_run() {
        use arena_trace::JobSpec;
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 27);
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: 60.0 * i as f64,
                model: arena_model::zoo::ModelConfig::new(
                    arena_model::zoo::ModelFamily::Bert,
                    0.76,
                    256,
                ),
                iterations: 300,
                requested_gpus: 4,
                requested_pool: 0,
                deadline_s: None,
            })
            .collect();
        let obs = Obs::enabled();
        let r = simulate_traced(
            &cluster,
            &jobs,
            &mut arena_sched::FcfsPolicy::new(),
            &service,
            &SimConfig::new(24.0 * 3600.0),
            &obs,
        );
        let run = summarize_run(&r);
        assert_eq!(run.summary.jobs.len(), 3);
        assert!(run.summary.events >= 3, "at least one event per job");
        assert!(run.summary.productive_gpu_s > 0.0);
        assert!(run.summary.mean_util_frac > 0.0);
        for job in &run.summary.jobs {
            assert!(job.placements >= 1, "job {} never placed", job.id);
            assert!(job.allocated_gpu_s >= job.productive_gpu_s);
        }
        assert!(run.perfetto_json.starts_with('{'));
        assert!(run.perfetto_json.contains("\"traceEvents\":["));
        assert!(run.perfetto_json.trim_end().ends_with('}'));
        assert!(!run.utilization_jsonl.is_empty());
        let table = timeline_summary_table(&[run.summary.clone()]);
        assert_eq!(table.num_rows(), 1);
        assert!(table.render().contains("FCFS"));
        // Round-trips through JSON for arena-analyze.
        let json = serde_json::to_string(&run.summary).unwrap();
        let back: TimelineSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policy, run.summary.policy);
        assert_eq!(back.jobs.len(), 3);
    }

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn workload_produces_nonempty_logs_for_every_policy() {
        let runs = conformance_workload(true);
        assert_eq!(runs.len(), 5);
        for run in &runs {
            assert!(
                run.summary.decisions > 0,
                "{} recorded no decisions",
                run.summary.policy
            );
            assert!(!run.jsonl.is_empty());
            assert_eq!(run.jsonl.lines().count(), run.summary.decisions);
        }
    }
}
