//! Observability conformance workload: the five-way policy comparison
//! run with decision tracing enabled.
//!
//! Every policy schedules the same testbed trace while an [`Obs`] handle
//! records a [`Decision`](arena_sim::Decision) for each place / evict /
//! drop / requeue it takes, plus engine counters (event mix, queue-depth
//! gauges) and estimator cache statistics. The output is one provenance
//! summary per policy and the full decision log as JSON Lines — the
//! workload the golden-trace test harness snapshots.

use std::collections::BTreeMap;

use serde::Serialize;

use arena_cluster::presets;
use arena_perf::CostParams;
use arena_sched::PlanService;
use arena_sim::{simulate_traced, DecisionKind, Obs, SimConfig};
use arena_trace::{generate, TraceConfig, TraceKind};

use crate::report::{count_table, f3, Table};

/// One policy's decision-provenance summary from the traced workload.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSummary {
    /// Policy display name.
    pub policy: String,
    /// Total recorded decisions (policy + engine provenance).
    pub decisions: usize,
    /// Placement decisions.
    pub places: usize,
    /// Placements flagged opportunistic (evictable backfill).
    pub opportunistic_places: usize,
    /// Eviction decisions.
    pub evictions: usize,
    /// Job-rejection decisions.
    pub drops: usize,
    /// Engine requeue provenance (failure evictions, capacity races).
    pub requeues: usize,
    /// Distinct `kind/reason` labels observed.
    pub distinct_reasons: usize,
    /// Scheduling passes (completed `sim.schedule` spans).
    pub sched_passes: u64,
    /// Estimator estimate-cache hits over the run.
    pub estimate_hits: u64,
    /// Estimator estimate-cache misses over the run.
    pub estimate_misses: u64,
    /// Decision counts per `kind/reason` key.
    pub reason_counts: BTreeMap<String, usize>,
}

/// One traced policy run: its summary plus the exported decision log.
#[derive(Debug, Clone, Serialize)]
pub struct TraceRun {
    /// Per-policy provenance summary.
    pub summary: TraceSummary,
    /// The full decision log as JSON Lines (one object per decision).
    pub jsonl: String,
}

/// Runs the five-way comparison with tracing enabled.
///
/// Each policy gets a fresh [`PlanService`] built from the same seed, so
/// all runs see identical ground truth *and* the estimator counters in
/// each report cover exactly that run.
#[must_use]
pub fn conformance_workload(quick: bool) -> Vec<TraceRun> {
    let cluster = presets::physical_testbed();
    let hours = if quick { 1.0 } else { 2.0 };
    let trace_cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&trace_cfg);
    let sim_cfg = SimConfig::new(if quick { 12.0 * 3600.0 } else { 24.0 * 3600.0 });

    let mut runs = Vec::new();
    for mut policy in crate::experiments::comparison_policies() {
        let service = PlanService::new(&cluster, CostParams::default(), 27);
        let obs = Obs::enabled();
        let r = simulate_traced(&cluster, &jobs, policy.as_mut(), &service, &sim_cfg, &obs);
        let t = &r.trace;
        let kind_count = |k: DecisionKind| t.decisions.iter().filter(|d| d.kind == k).count();
        let summary = TraceSummary {
            policy: r.policy.clone(),
            decisions: t.decisions.len(),
            places: kind_count(DecisionKind::Place),
            opportunistic_places: t.decisions.iter().filter(|d| d.opportunistic).count(),
            evictions: kind_count(DecisionKind::Evict),
            drops: kind_count(DecisionKind::Drop),
            requeues: kind_count(DecisionKind::Requeue),
            distinct_reasons: t.decision_counts().len(),
            sched_passes: t.spans.get("sim.schedule").map_or(0, |s| s.count),
            estimate_hits: t
                .counters
                .get("estimator.estimate.hits")
                .copied()
                .unwrap_or(0),
            estimate_misses: t
                .counters
                .get("estimator.estimate.misses")
                .copied()
                .unwrap_or(0),
            reason_counts: t.decision_counts(),
        };
        runs.push(TraceRun {
            summary,
            jsonl: t.decisions_jsonl(),
        });
    }
    runs
}

/// Renders the per-policy provenance comparison.
#[must_use]
pub fn trace_table(runs: &[TraceRun]) -> Table {
    let mut t = Table::new(
        "Observability: decision provenance per policy (traced workload)",
        &[
            "policy",
            "decisions",
            "place",
            "opp",
            "evict",
            "drop",
            "requeue",
            "reasons",
            "passes",
            "est hit rate",
        ],
    );
    for run in runs {
        let s = &run.summary;
        let lookups = s.estimate_hits + s.estimate_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            s.estimate_hits as f64 / lookups as f64
        };
        t.row(vec![
            s.policy.clone(),
            s.decisions.to_string(),
            s.places.to_string(),
            s.opportunistic_places.to_string(),
            s.evictions.to_string(),
            s.drops.to_string(),
            s.requeues.to_string(),
            s.distinct_reasons.to_string(),
            s.sched_passes.to_string(),
            f3(hit_rate),
        ]);
    }
    t
}

/// Renders one policy's `kind/reason` breakdown.
#[must_use]
pub fn reason_table(run: &TraceRun) -> Table {
    count_table(
        &format!("Decision reasons: {}", run.summary.policy),
        &run.summary.reason_counts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabricated() -> TraceRun {
        TraceRun {
            summary: TraceSummary {
                policy: "Test".into(),
                decisions: 3,
                places: 2,
                opportunistic_places: 1,
                evictions: 0,
                drops: 1,
                requeues: 0,
                distinct_reasons: 2,
                sched_passes: 5,
                estimate_hits: 3,
                estimate_misses: 1,
                reason_counts: [
                    ("place/best-cell".to_string(), 2),
                    ("drop/x".to_string(), 1),
                ]
                .into_iter()
                .collect(),
            },
            jsonl: String::new(),
        }
    }

    #[test]
    fn tables_render() {
        let runs = vec![fabricated()];
        let t = trace_table(&runs);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("0.750"), "hit rate column");
        let rt = reason_table(&runs[0]);
        assert_eq!(rt.num_rows(), 2);
        assert!(rt.render().contains("place/best-cell"));
    }

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn workload_produces_nonempty_logs_for_every_policy() {
        let runs = conformance_workload(true);
        assert_eq!(runs.len(), 5);
        for run in &runs {
            assert!(
                run.summary.decisions > 0,
                "{} recorded no decisions",
                run.summary.policy
            );
            assert!(!run.jsonl.is_empty());
            assert_eq!(run.jsonl.lines().count(), run.summary.decisions);
        }
    }
}
