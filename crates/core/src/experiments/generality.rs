//! Generality experiments: deadline awareness (Fig. 19), the
//! adaptivity/heterogeneity ablation (Fig. 20) and search-depth
//! sensitivity (Fig. 21).

use serde::Serialize;

use arena_cluster::presets;
use arena_sched::{ArenaPolicy, ArenaVariant, ElasticFlowPolicy, PlanService, Policy};
use arena_sim::SimConfig;
use arena_trace::{generate, TraceConfig, TraceKind};

use super::{fill_common_jct, run_policies, PolicySummary};
use crate::experiments::clustersim::ClusterExperiment;
use crate::report::{f3, hms, pct, Table};

fn pool_mems(cluster: &arena_cluster::Cluster) -> Vec<f64> {
    cluster
        .pool_stats()
        .iter()
        .map(|p| p.spec.gpu.mem_gib)
        .collect()
}

/// Fig. 19: deadline-aware Arena-DDL versus ElasticFlow's primary
/// deadline policy, on a fully deadline-carrying workload.
#[must_use]
pub fn fig19(quick: bool) -> ClusterExperiment {
    let cluster = if quick {
        presets::physical_testbed()
    } else {
        presets::table1_simulated()
    };
    let hours = if quick { 3.0 } else { 24.0 };
    let mut cfg = TraceConfig::new(
        TraceKind::HeliosModerate,
        hours * 3600.0,
        cluster.total_gpus(),
        pool_mems(&cluster),
    );
    cfg.deadline_fraction = 1.0;
    cfg.duration_scale = if quick { 1.0 } else { 20.0 };
    cfg.seed = 19;
    let jobs = generate(&cfg);

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(ElasticFlowPolicy::deadline()),
        Box::new(ArenaPolicy::with_variant(ArenaVariant::Deadline)),
    ];
    let service = PlanService::new(&cluster, arena_perf::CostParams::default(), 19);
    let results = run_policies(
        &cluster,
        &jobs,
        policies,
        &service,
        &SimConfig::new(hours * 3600.0 * 4.0),
    );
    let mut summaries: Vec<PolicySummary> = results.iter().map(PolicySummary::from).collect();
    fill_common_jct(&results, &mut summaries);
    ClusterExperiment {
        name: "Fig 19: deadline-aware scheduling".into(),
        num_jobs: jobs.len(),
        summaries,
        timelines: Vec::new(),
    }
}

/// Renders Fig. 19 with the deadline-satisfaction column front and
/// centre.
#[must_use]
pub fn fig19_table(exp: &ClusterExperiment) -> Table {
    let mut t = Table::new(
        &exp.name,
        &[
            "policy",
            "ddl satisfied",
            "avg JCT",
            "avg thpt",
            "peak thpt",
            "dropped",
        ],
    );
    for s in &exp.summaries {
        t.row(vec![
            s.policy.clone(),
            pct(s.deadline_satisfaction),
            hms(s.avg_jct_s),
            f3(s.avg_throughput),
            f3(s.peak_throughput),
            s.dropped.to_string(),
        ]);
    }
    t
}

/// Fig. 20: ablation of adaptivity scaling (Arena-NA) and heterogeneity
/// scaling (Arena-NH) against full Arena.
#[must_use]
pub fn fig20(quick: bool) -> ClusterExperiment {
    let cluster = if quick {
        presets::physical_testbed()
    } else {
        presets::table1_simulated()
    };
    let hours = if quick { 3.0 } else { 48.0 };
    let mut cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        pool_mems(&cluster),
    );
    cfg.duration_scale = if quick { 1.0 } else { 40.0 };
    cfg.load_scale = 1.25;
    cfg.seed = 20;
    let jobs = generate(&cfg);

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(ArenaPolicy::new()),
        Box::new(ArenaPolicy::with_variant(ArenaVariant::NoAdaptivity)),
        Box::new(ArenaPolicy::with_variant(ArenaVariant::NoHeterogeneity)),
    ];
    let service = PlanService::new(&cluster, arena_perf::CostParams::default(), 20);
    let results = run_policies(
        &cluster,
        &jobs,
        policies,
        &service,
        &SimConfig::new(hours * 3600.0 * 4.0),
    );
    let mut summaries: Vec<PolicySummary> = results.iter().map(PolicySummary::from).collect();
    fill_common_jct(&results, &mut summaries);
    ClusterExperiment {
        name: "Fig 20: adaptivity / heterogeneity ablation".into(),
        num_jobs: jobs.len(),
        summaries,
        timelines: Vec::new(),
    }
}

/// Renders Fig. 20 with metrics normalised to full Arena.
#[must_use]
pub fn fig20_table(exp: &ClusterExperiment) -> Table {
    let full = &exp.summaries[0];
    let mut t = Table::new(
        &exp.name,
        &[
            "variant",
            "JCT vs Arena",
            "finished",
            "avg thpt vs Arena",
            "peak thpt vs Arena",
        ],
    );
    for s in &exp.summaries {
        t.row(vec![
            s.policy.clone(),
            format!("{:.2}x", s.avg_jct_s / full.avg_jct_s.max(1e-9)),
            s.finished.to_string(),
            pct(s.avg_throughput / full.avg_throughput.max(1e-9)),
            pct(s.peak_throughput / full.peak_throughput.max(1e-9)),
        ]);
    }
    t
}

/// One search-depth data point (Fig. 21).
#[derive(Debug, Clone, Serialize)]
pub struct Fig21Row {
    /// Search depth.
    pub depth: usize,
    /// Mean wall-clock per scheduling decision, seconds.
    pub avg_decision_s: f64,
    /// Mean JCT, seconds.
    pub avg_jct_s: f64,
    /// Time-averaged normalised throughput.
    pub avg_throughput: f64,
}

/// Fig. 21: scheduling overhead and efficiency across search depths under
/// an extremely heavy workload.
#[must_use]
pub fn fig21(quick: bool) -> Vec<Fig21Row> {
    let cluster = presets::physical_testbed();
    let hours = if quick { 2.0 } else { 6.0 };
    let mut cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        pool_mems(&cluster),
    );
    cfg.load_scale = 1.5; // "Increase the density of job submissions."
    cfg.seed = 21;
    let jobs = generate(&cfg);
    let service = PlanService::new(&cluster, arena_perf::CostParams::default(), 21);

    // Warm the service caches with one throwaway run so per-decision
    // timings measure scheduling logic, not first-touch exploration.
    {
        let mut policy = ArenaPolicy::new().with_search_depth(3);
        let _ = arena_sim::simulate(
            &cluster,
            &jobs,
            &mut policy,
            &service,
            &SimConfig::new(hours * 3600.0 * 6.0),
        );
    }

    (1..=5)
        .map(|depth| {
            let mut policy = ArenaPolicy::new().with_search_depth(depth);
            let r = arena_sim::simulate(
                &cluster,
                &jobs,
                &mut policy,
                &service,
                &SimConfig::new(hours * 3600.0 * 6.0),
            );
            Fig21Row {
                depth,
                avg_decision_s: r.metrics.avg_decision_s,
                avg_jct_s: r.metrics.avg_jct_s,
                avg_throughput: r.metrics.avg_throughput,
            }
        })
        .collect()
}

/// Renders Fig. 21.
#[must_use]
pub fn fig21_table(rows: &[Fig21Row]) -> Table {
    let mut t = Table::new(
        "Fig 21: search-depth sensitivity (heavy workload)",
        &["depth", "decision wall (ms)", "avg JCT", "avg thpt"],
    );
    for r in rows {
        t.row(vec![
            r.depth.to_string(),
            format!("{:.3}", r.avg_decision_s * 1e3),
            hms(r.avg_jct_s),
            f3(r.avg_throughput),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn fig19_arena_ddl_dominates() {
        let exp = fig19(true);
        let ef = &exp.summaries[0];
        let arena = &exp.summaries[1];
        assert!(arena.deadline_satisfaction >= ef.deadline_satisfaction);
    }

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn fig21_depth_increases_decision_time() {
        let rows = fig21(true);
        assert!(rows.last().unwrap().avg_decision_s >= rows[0].avg_decision_s * 0.5);
    }
}
