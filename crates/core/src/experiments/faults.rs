//! Fault-injection ablation: how gracefully each policy degrades as node
//! failures become more frequent.
//!
//! The sweep runs the testbed trace under increasingly hostile MTBF
//! settings (from the zero-fault baseline down to a failure every two
//! hours per node) and reports goodput — samples that contributed to
//! final progress — against raw throughput, the fraction of work re-done
//! after checkpoint rollbacks, and recovery latency.

use serde::Serialize;

use arena_cluster::presets;
use arena_perf::CostParams;
use arena_sched::{ArenaPolicy, FcfsPolicy, PlanService, Policy};
use arena_sim::{simulate_with_faults, SimConfig};
use arena_trace::{generate, generate_faults, FaultConfig, TraceConfig, TraceKind};

use crate::report::{f3, hms, pct, Table};

/// One `(MTBF, policy)` cell of the fault sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRow {
    /// Human-readable MTBF setting.
    pub mtbf_label: String,
    /// Per-node mean time between failures, seconds (`None` = no faults).
    pub mtbf_s: Option<f64>,
    /// Policy display name.
    pub policy: String,
    /// Useful samples per second (work lost to failures excluded).
    pub goodput_sps: f64,
    /// Raw processed samples per second, including re-done work.
    pub throughput_sps: f64,
    /// Fraction of processed samples re-done after rollbacks.
    pub work_lost_frac: f64,
    /// Failure-caused job evictions.
    pub failure_evictions: usize,
    /// Mean failure-to-running-again latency, seconds.
    pub mean_recovery_s: f64,
    /// Mean JCT over finished jobs, seconds.
    pub avg_jct_s: f64,
    /// Jobs finished before the horizon.
    pub finished: usize,
}

/// The MTBF settings of the sweep, harshest last.
#[must_use]
pub fn mtbf_sweep() -> Vec<(String, Option<f64>)> {
    vec![
        ("no faults".into(), None),
        ("24 h".into(), Some(24.0 * 3600.0)),
        ("8 h".into(), Some(8.0 * 3600.0)),
        ("2 h".into(), Some(2.0 * 3600.0)),
    ]
}

/// Runs the fault sweep on the physical-testbed trace for Arena and the
/// FCFS baseline.
#[must_use]
pub fn fault_ablation(quick: bool) -> Vec<FaultRow> {
    let cluster = presets::physical_testbed();
    let hours = if quick { 2.0 } else { 4.0 };
    let trace_cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&trace_cfg);
    let service = PlanService::new(&cluster, CostParams::default(), 14);
    let sim_cfg = SimConfig::new(36.0 * 3600.0);
    let pool_nodes: Vec<usize> = cluster.pool_ids().map(|p| cluster.num_nodes(p)).collect();

    let mut rows = Vec::new();
    for (label, mtbf_s) in mtbf_sweep() {
        let faults = match mtbf_s {
            None => Vec::new(),
            Some(m) => generate_faults(&FaultConfig::with_mtbf(m), &pool_nodes, sim_cfg.horizon_s),
        };
        let mut policies: Vec<Box<dyn Policy>> =
            vec![Box::new(FcfsPolicy::new()), Box::new(ArenaPolicy::new())];
        for policy in &mut policies {
            let r = simulate_with_faults(
                &cluster,
                &jobs,
                policy.as_mut(),
                &service,
                &sim_cfg,
                &faults,
            );
            rows.push(FaultRow {
                mtbf_label: label.clone(),
                mtbf_s,
                policy: r.policy.clone(),
                goodput_sps: r.metrics.goodput_sps,
                throughput_sps: r.metrics.avg_raw_throughput_sps,
                work_lost_frac: r.metrics.work_lost_frac,
                failure_evictions: r.metrics.failure_evictions,
                mean_recovery_s: r.metrics.mean_recovery_s,
                avg_jct_s: r.metrics.avg_jct_s,
                finished: r.metrics.finished,
            });
        }
    }
    rows
}

/// Renders the fault sweep.
#[must_use]
pub fn fault_table(rows: &[FaultRow]) -> Table {
    let mut t = Table::new(
        "Ablation: fault injection (MTBF sweep, testbed trace)",
        &[
            "MTBF",
            "policy",
            "goodput (sps)",
            "thpt (sps)",
            "work lost",
            "evictions",
            "mean recovery",
            "avg JCT",
            "finished",
        ],
    );
    for r in rows {
        t.row(vec![
            r.mtbf_label.clone(),
            r.policy.clone(),
            f3(r.goodput_sps),
            f3(r.throughput_sps),
            pct(r.work_lost_frac),
            r.failure_evictions.to_string(),
            hms(r.mean_recovery_s),
            hms(r.avg_jct_s),
            r.finished.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_at_least_three_fault_settings() {
        let sweep = mtbf_sweep();
        assert!(sweep.iter().filter(|(_, m)| m.is_some()).count() >= 3);
        // Harshest last: MTBFs strictly decrease.
        let mtbfs: Vec<f64> = sweep.iter().filter_map(|(_, m)| *m).collect();
        assert!(mtbfs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn arena_goodput_degrades_gracefully() {
        let rows = fault_ablation(true);
        let arena: Vec<&FaultRow> = rows.iter().filter(|r| r.policy == "Arena").collect();
        assert_eq!(arena.len(), mtbf_sweep().len());
        assert_eq!(arena[0].work_lost_frac, 0.0, "zero-fault row lost work");
        // Goodput decreases (weakly) as failures grow more frequent.
        assert!(
            arena
                .windows(2)
                .all(|w| w[1].goodput_sps <= w[0].goodput_sps * 1.001),
            "goodput not monotone: {arena:#?}"
        );
    }
}
