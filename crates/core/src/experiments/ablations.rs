//! Ablations of the reproduction's own design choices (beyond the
//! paper's Fig. 20): estimator noise robustness, opportunistic execution,
//! queue discipline, and checkpoint-bandwidth sensitivity.

use serde::Serialize;

use arena_cluster::presets;
use arena_estimator::{Cell, CellEstimator};
use arena_perf::{CostParams, GroundTruth};
use arena_sched::{ArenaPolicy, ArenaSolverPolicy, PlanService, Policy, QueueOrder};
use arena_sim::{simulate, SimConfig};
use arena_trace::{generate, TraceConfig, TraceKind};

use crate::experiments::microbench::{a100_target, fig12_configs};
use crate::report::{f3, hms, pct, Table};

/// Estimation accuracy under one noise setting.
#[derive(Debug, Clone, Serialize)]
pub struct NoiseRow {
    /// Measurement-noise sigma.
    pub sigma: f64,
    /// Mean estimation accuracy over the Fig. 12 configurations.
    pub avg_accuracy: f64,
    /// Worst-case accuracy.
    pub worst_accuracy: f64,
}

/// Sweeps measurement noise and reports estimation accuracy: the
/// estimator's error should be driven by noise and grid sampling, not by
/// a modelling gap (at `sigma = 0` accuracy approaches 100%).
#[must_use]
pub fn noise_sensitivity() -> Vec<NoiseRow> {
    let hw = a100_target();
    [0.0, 0.01, 0.03, 0.06, 0.10]
        .into_iter()
        .map(|sigma| {
            let mut accs = Vec::new();
            for (i, (model, gpus)) in fig12_configs().into_iter().enumerate() {
                let params = CostParams {
                    noise_sigma: sigma,
                    table_sigma: sigma * 2.0 / 3.0,
                    ..CostParams::default()
                };
                let gt = GroundTruth::new(params.clone(), 800 + i as u64);
                let est = CellEstimator::new(params, 800 + i as u64);
                let graph = model.build();
                let Some((_, e)) = Cell::generate(&graph, gpus)
                    .into_iter()
                    .filter_map(|c| {
                        est.estimate(&graph, model.global_batch, &c, &hw)
                            .map(|e| (c, e))
                    })
                    .max_by(|a, b| a.1.throughput_sps.partial_cmp(&b.1.throughput_sps).unwrap())
                else {
                    continue;
                };
                let Ok(m) = gt.measure(&graph, model.global_batch, &e.plan, &hw) else {
                    continue;
                };
                accs.push(1.0 - (e.iter_time_s - m.iter_time_s).abs() / m.iter_time_s);
            }
            NoiseRow {
                sigma,
                avg_accuracy: accs.iter().sum::<f64>() / accs.len().max(1) as f64,
                worst_accuracy: accs.iter().copied().fold(f64::INFINITY, f64::min),
            }
        })
        .collect()
}

/// Renders the noise sweep.
#[must_use]
pub fn noise_table(rows: &[NoiseRow]) -> Table {
    let mut t = Table::new(
        "Ablation: estimation accuracy vs measurement noise",
        &["sigma", "avg accuracy", "worst accuracy"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.2}", r.sigma),
            pct(r.avg_accuracy),
            pct(r.worst_accuracy),
        ]);
    }
    t
}

/// One Arena-mechanism variant's outcome on the testbed trace.
#[derive(Debug, Clone, Serialize)]
pub struct MechanismRow {
    /// Variant label.
    pub variant: String,
    /// Mean JCT, seconds.
    pub avg_jct_s: f64,
    /// Mean queueing time, seconds.
    pub avg_queue_s: f64,
    /// Time-averaged normalised throughput.
    pub avg_throughput: f64,
    /// Finished jobs.
    pub finished: usize,
}

/// Ablates Arena's scheduling mechanisms on the Fig. 14 testbed trace:
/// opportunistic execution off, and the shortest-work-first queue
/// discipline as an alternative objective.
#[must_use]
pub fn mechanism_ablation() -> Vec<MechanismRow> {
    let cluster = presets::physical_testbed();
    let cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        6.0 * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&cfg);
    let service = PlanService::new(&cluster, CostParams::default(), 14);
    let sim_cfg = SimConfig::new(36.0 * 3600.0);

    let variants: Vec<(String, ArenaPolicy)> = vec![
        ("Arena".into(), ArenaPolicy::new()),
        (
            "Arena (no opportunistic)".into(),
            ArenaPolicy::new().without_opportunistic(),
        ),
        (
            "Arena (shortest-first)".into(),
            ArenaPolicy::new().with_queue_order(QueueOrder::ShortestFirst),
        ),
    ];
    variants
        .into_iter()
        .map(|(label, mut policy)| {
            let r = simulate(&cluster, &jobs, &mut policy, &service, &sim_cfg);
            MechanismRow {
                variant: label,
                avg_jct_s: r.metrics.avg_jct_s,
                avg_queue_s: r.metrics.avg_queue_s,
                avg_throughput: r.metrics.avg_throughput,
                finished: r.metrics.finished,
            }
        })
        .collect()
}

/// Renders the mechanism ablation.
#[must_use]
pub fn mechanism_table(rows: &[MechanismRow]) -> Table {
    let mut t = Table::new(
        "Ablation: Arena scheduling mechanisms (testbed trace)",
        &["variant", "avg JCT", "avg queue", "avg thpt", "finished"],
    );
    for r in rows {
        t.row(vec![
            r.variant.clone(),
            hms(r.avg_jct_s),
            hms(r.avg_queue_s),
            f3(r.avg_throughput),
            r.finished.to_string(),
        ]);
    }
    t
}

/// One checkpoint-bandwidth setting's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointRow {
    /// Shared-storage bandwidth, GB/s.
    pub bw_gbps: f64,
    /// Arena's mean JCT, seconds.
    pub arena_jct_s: f64,
    /// Arena's mean restarts per job.
    pub arena_restarts: f64,
    /// ElasticFlow-LS's mean JCT, seconds.
    pub ef_jct_s: f64,
    /// ElasticFlow-LS's mean restarts per job.
    pub ef_restarts: f64,
}

/// Sweeps checkpoint bandwidth: slower storage makes every restart more
/// expensive, so restart-happy policies degrade faster than Arena.
#[must_use]
pub fn checkpoint_sensitivity() -> Vec<CheckpointRow> {
    let cluster = presets::physical_testbed();
    let cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        4.0 * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&cfg);
    let service = PlanService::new(&cluster, CostParams::default(), 15);

    [8.0, 2.0, 0.5]
        .into_iter()
        .map(|bw_gbps| {
            let mut sim_cfg = SimConfig::new(36.0 * 3600.0);
            sim_cfg.checkpoint_bw_bps = bw_gbps * 1e9;
            let mut arena = ArenaPolicy::new();
            let ra = simulate(&cluster, &jobs, &mut arena, &service, &sim_cfg);
            let mut ef = arena_sched::ElasticFlowPolicy::loosened();
            let re = simulate(&cluster, &jobs, &mut ef, &service, &sim_cfg);
            CheckpointRow {
                bw_gbps,
                arena_jct_s: ra.metrics.avg_jct_s,
                arena_restarts: ra.metrics.avg_restarts,
                ef_jct_s: re.metrics.avg_jct_s,
                ef_restarts: re.metrics.avg_restarts,
            }
        })
        .collect()
}

/// Renders the checkpoint-bandwidth sweep.
#[must_use]
pub fn checkpoint_table(rows: &[CheckpointRow]) -> Table {
    let mut t = Table::new(
        "Ablation: checkpoint-bandwidth sensitivity",
        &[
            "ckpt BW (GB/s)",
            "Arena JCT",
            "Arena restarts",
            "EF-LS JCT",
            "EF-LS restarts",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.1}", r.bw_gbps),
            hms(r.arena_jct_s),
            f3(r.arena_restarts),
            hms(r.ef_jct_s),
            f3(r.ef_restarts),
        ]);
    }
    t
}

/// One row of the ZeRO-1 ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ZeroRow {
    /// Whether ZeRO-1 optimizer sharding is on.
    pub zero1: bool,
    /// Policy label.
    pub policy: String,
    /// Mean JCT, seconds.
    pub avg_jct_s: f64,
    /// Time-averaged normalised throughput.
    pub avg_throughput: f64,
    /// Finished jobs.
    pub finished: usize,
}

/// Turns on ZeRO-1 optimizer-state sharding (an extension the paper's
/// systems lack) and re-runs the testbed comparison for Arena and
/// ElasticFlow-LS: sharded optimizer state narrows the DP-memory gap that
/// the paper's ElasticFlow critique (§8.3) rests on, so EF closes part of
/// the distance while Arena keeps its scheduling-quality edge.
#[must_use]
pub fn zero1_ablation() -> Vec<ZeroRow> {
    let cluster = presets::physical_testbed();
    let cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        4.0 * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&cfg);
    let mut out = Vec::new();
    for zero1 in [false, true] {
        let params = CostParams {
            zero1,
            ..CostParams::default()
        };
        let service = PlanService::new(&cluster, params, 17);
        let sim_cfg = SimConfig::new(36.0 * 3600.0);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(arena_sched::ElasticFlowPolicy::loosened()),
            Box::new(ArenaPolicy::new()),
        ];
        for policy in &mut policies {
            let r = simulate(&cluster, &jobs, policy.as_mut(), &service, &sim_cfg);
            out.push(ZeroRow {
                zero1,
                policy: r.policy.clone(),
                avg_jct_s: r.metrics.avg_jct_s,
                avg_throughput: r.metrics.avg_throughput,
                finished: r.metrics.finished,
            });
        }
    }
    out
}

/// Renders the ZeRO-1 ablation.
#[must_use]
pub fn zero1_table(rows: &[ZeroRow]) -> Table {
    let mut t = Table::new(
        "Ablation: ZeRO-1 optimizer sharding",
        &["ZeRO-1", "policy", "avg JCT", "avg thpt", "finished"],
    );
    for r in rows {
        t.row(vec![
            if r.zero1 { "on" } else { "off" }.into(),
            r.policy.clone(),
            hms(r.avg_jct_s),
            f3(r.avg_throughput),
            r.finished.to_string(),
        ]);
    }
    t
}

/// One row of the solver-extension comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SolverRow {
    /// Policy label.
    pub policy: String,
    /// Mean JCT, seconds.
    pub avg_jct_s: f64,
    /// Mean queueing time, seconds.
    pub avg_queue_s: f64,
    /// Time-averaged normalised throughput.
    pub avg_throughput: f64,
    /// Mean restarts per job.
    pub avg_restarts: f64,
    /// Mean wall-clock per scheduling decision, milliseconds.
    pub decision_ms: f64,
}

/// Compares greedy Arena (Algorithm 1) with the solver-enhanced variant
/// the paper sketches in §6, across beam widths.
#[must_use]
pub fn solver_extension() -> Vec<SolverRow> {
    let cluster = presets::physical_testbed();
    let cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        6.0 * 3600.0,
        cluster.total_gpus(),
        vec![48.0, 24.0],
    );
    let jobs = generate(&cfg);
    let service = PlanService::new(&cluster, CostParams::default(), 16);
    let sim_cfg = SimConfig::new(36.0 * 3600.0);

    let mut policies: Vec<(String, Box<dyn Policy>)> = vec![
        ("Arena (greedy)".into(), Box::new(ArenaPolicy::new())),
        (
            "Arena-Solver (beam 8)".into(),
            Box::new(ArenaSolverPolicy::new().with_beam_width(8)),
        ),
        (
            "Arena-Solver (beam 64)".into(),
            Box::new(ArenaSolverPolicy::new().with_beam_width(64)),
        ),
    ];
    policies
        .iter_mut()
        .map(|(label, policy)| {
            let r = simulate(&cluster, &jobs, policy.as_mut(), &service, &sim_cfg);
            SolverRow {
                policy: label.clone(),
                avg_jct_s: r.metrics.avg_jct_s,
                avg_queue_s: r.metrics.avg_queue_s,
                avg_throughput: r.metrics.avg_throughput,
                avg_restarts: r.metrics.avg_restarts,
                decision_ms: r.metrics.avg_decision_s * 1e3,
            }
        })
        .collect()
}

/// Renders the solver comparison.
#[must_use]
pub fn solver_table(rows: &[SolverRow]) -> Table {
    let mut t = Table::new(
        "Extension: solver-enhanced scheduling (testbed trace)",
        &[
            "policy",
            "avg JCT",
            "avg queue",
            "avg thpt",
            "restarts",
            "decision (ms)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.policy.clone(),
            hms(r.avg_jct_s),
            hms(r.avg_queue_s),
            f3(r.avg_throughput),
            f3(r.avg_restarts),
            format!("{:.3}", r.decision_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_estimation_is_nearly_exact() {
        let rows = noise_sensitivity();
        let zero = &rows[0];
        assert_eq!(zero.sigma, 0.0);
        assert!(
            zero.avg_accuracy > 0.97,
            "noise-free accuracy only {}",
            zero.avg_accuracy
        );
        // Accuracy must degrade (weakly) as noise grows.
        let last = rows.last().unwrap();
        assert!(last.avg_accuracy < zero.avg_accuracy + 1e-9);
    }

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn opportunistic_execution_helps() {
        let rows = mechanism_ablation();
        assert!(rows[0].avg_queue_s <= rows[1].avg_queue_s * 1.05);
    }
}
