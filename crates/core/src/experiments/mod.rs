//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each experiment is a pure function returning a serialisable result
//! struct with a `table()` (or `tables()`) renderer; the `arena-bench`
//! crate's `repro` binary drives them from the command line and records
//! outputs for `EXPERIMENTS.md`.
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`tables::table1`] | Table 1 (simulated cluster) |
//! | [`tables::table2`] | Table 2 (model zoo) |
//! | [`motivation::fig1`] | Fig. 1 (scaling/exchanging cases) |
//! | [`motivation::fig3`] | Fig. 3 (scheduling opportunities) |
//! | [`motivation::fig4`] | Fig. 4 (optimal-plan variation) |
//! | [`microbench::fig12`] | Fig. 12 (estimation accuracy/overhead) |
//! | [`microbench::fig13`] | Fig. 13 (tuning accuracy/overhead) |
//! | [`microbench::profiling_budget`] | §8.2 profiling-time budget |
//! | [`clustersim::fig14`] | Fig. 14 (physical-testbed comparison) |
//! | [`clustersim::fidelity`] | §8.3 simulation fidelity |
//! | [`clustersim::fig15`] | Fig. 15 (model-size distribution) |
//! | [`clustersim::fig16_17`] | Figs. 16–17 (large-scale Philly) |
//! | [`clustersim::fig18`] | Fig. 18 (Helios / PAI traces) |
//! | [`generality::fig19`] | Fig. 19 (deadline-aware Arena-DDL) |
//! | [`generality::fig20`] | Fig. 20 (adaptivity/heterogeneity ablation) |
//! | [`generality::fig21`] | Fig. 21 (search-depth sensitivity) |
//! | [`ablations`] | reproduction-level ablations (noise, mechanisms, checkpoints) |
//! | [`faults`] | fault-injection MTBF sweep (reproduction extension) |
//! | [`observability`] | traced conformance workload (decision provenance) |

pub mod ablations;
pub mod clustersim;
pub mod faults;
pub mod generality;
pub mod microbench;
pub mod motivation;
pub mod observability;
pub mod tables;

use serde::Serialize;

use arena_perf::CostParams;
use arena_runtime::WorkerPool;
use arena_sched::{PlanService, Policy};
use arena_sim::{simulate, SimConfig, SimResult};
use arena_trace::JobSpec;

use crate::report::{f3, hms, Table};

/// One policy's aggregate results in a cluster experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PolicySummary {
    /// Policy display name.
    pub policy: String,
    /// Mean JCT, seconds.
    pub avg_jct_s: f64,
    /// Median JCT, seconds.
    pub median_jct_s: f64,
    /// Max JCT, seconds.
    pub max_jct_s: f64,
    /// Mean queueing time, seconds.
    pub avg_queue_s: f64,
    /// Finished / dropped / unfinished job counts.
    pub finished: usize,
    /// Jobs rejected by the policy.
    pub dropped: usize,
    /// Jobs alive at the horizon.
    pub unfinished: usize,
    /// Time-averaged normalised cluster throughput.
    pub avg_throughput: f64,
    /// Peak normalised cluster throughput.
    pub peak_throughput: f64,
    /// Mean restarts per started job.
    pub avg_restarts: f64,
    /// Deadline satisfaction ratio.
    pub deadline_satisfaction: f64,
    /// Mean wall-clock per scheduling decision, seconds.
    pub avg_decision_s: f64,
    /// Mean JCT over the jobs finished by *every* compared policy —
    /// immune to survivorship bias from policies that drop hard jobs.
    pub avg_jct_common_s: f64,
}

impl From<&SimResult> for PolicySummary {
    fn from(r: &SimResult) -> Self {
        let m = &r.metrics;
        PolicySummary {
            policy: r.policy.clone(),
            avg_jct_s: m.avg_jct_s,
            median_jct_s: m.median_jct_s,
            max_jct_s: m.max_jct_s,
            avg_queue_s: m.avg_queue_s,
            finished: m.finished,
            dropped: m.dropped,
            unfinished: m.unfinished,
            avg_throughput: m.avg_throughput,
            peak_throughput: m.peak_throughput,
            avg_restarts: m.avg_restarts,
            deadline_satisfaction: m.deadline_satisfaction,
            avg_decision_s: m.avg_decision_s,
            avg_jct_common_s: 0.0,
        }
    }
}

/// Computes each policy's mean JCT over the set of jobs that finished in
/// every run, writing it into the summaries.
pub fn fill_common_jct(results: &[SimResult], summaries: &mut [PolicySummary]) {
    let mut common: Option<std::collections::HashSet<u64>> = None;
    for r in results {
        let finished: std::collections::HashSet<u64> = r
            .records
            .iter()
            .filter(|rec| rec.finish_s.is_some())
            .map(|rec| rec.id)
            .collect();
        common = Some(match common {
            None => finished,
            Some(c) => c.intersection(&finished).copied().collect(),
        });
    }
    let common = common.unwrap_or_default();
    for (r, s) in results.iter().zip(summaries.iter_mut()) {
        let jcts: Vec<f64> = r
            .records
            .iter()
            .filter(|rec| common.contains(&rec.id))
            .filter_map(crate::sim::JobRecord::jct_s)
            .collect();
        s.avg_jct_common_s = if jcts.is_empty() {
            0.0
        } else {
            jcts.iter().sum::<f64>() / jcts.len() as f64
        };
    }
}

/// Runs several policies over the same trace on the same cluster, sharing
/// one [`PlanService`] (same ground truth, fair comparison).
#[must_use]
pub fn run_policies(
    cluster: &arena_cluster::Cluster,
    jobs: &[JobSpec],
    policies: Vec<Box<dyn Policy>>,
    service: &PlanService,
    cfg: &SimConfig,
) -> Vec<SimResult> {
    policies
        .into_iter()
        .map(|mut p| simulate(cluster, jobs, p.as_mut(), service, cfg))
        .collect()
}

/// Runs several policies concurrently over the same trace, one policy per
/// worker thread, merging results in the policies' submission order.
///
/// Each policy gets its *own* [`PlanService`] built from the same
/// `(params, seed)` pair. The service is a pure function of cluster,
/// cost parameters and seed, so every run still sees identical ground
/// truth, while no wall-clock profiling meter is shared across threads —
/// apart from `avg_decision_s` (wall-clock) the results are identical to
/// a sequential run, at any worker-pool size.
#[must_use]
pub fn run_policies_parallel(
    cluster: &arena_cluster::Cluster,
    jobs: &[JobSpec],
    policies: Vec<Box<dyn Policy>>,
    params: &CostParams,
    seed: u64,
    cfg: &SimConfig,
    pool: &WorkerPool,
) -> Vec<SimResult> {
    let tasks: Vec<_> = policies
        .into_iter()
        .map(|mut p| {
            move || {
                let service = PlanService::new(cluster, params.clone(), seed);
                simulate(cluster, jobs, p.as_mut(), &service, cfg)
            }
        })
        .collect();
    pool.run_all(tasks)
}

/// The paper's five-way policy comparison set (§8.1).
#[must_use]
pub fn comparison_policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(arena_sched::FcfsPolicy::new()),
        Box::new(arena_sched::GandivaPolicy::new()),
        Box::new(arena_sched::GavelPolicy::new()),
        Box::new(arena_sched::ElasticFlowPolicy::loosened()),
        Box::new(arena_sched::ArenaPolicy::new()),
    ]
}

/// Renders a policy-summary comparison table.
#[must_use]
pub fn summary_table(title: &str, summaries: &[PolicySummary]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "policy",
            "avg JCT",
            "JCT (common)",
            "median JCT",
            "avg queue",
            "finished",
            "dropped",
            "avg thpt",
            "peak thpt",
            "restarts",
        ],
    );
    for s in summaries {
        t.row(vec![
            s.policy.clone(),
            hms(s.avg_jct_s),
            hms(s.avg_jct_common_s),
            hms(s.median_jct_s),
            hms(s.avg_queue_s),
            s.finished.to_string(),
            s.dropped.to_string(),
            f3(s.avg_throughput),
            f3(s.peak_throughput),
            f3(s.avg_restarts),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_perf::CostParams;

    #[test]
    fn comparison_set_has_five_distinct_policies() {
        let names: Vec<&str> = comparison_policies().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 5);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 5);
        assert!(names.contains(&"Arena"));
    }

    #[test]
    fn run_policies_produces_one_result_each() {
        let cluster = arena_cluster::presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 1);
        let jobs: Vec<JobSpec> = Vec::new();
        let out = run_policies(
            &cluster,
            &jobs,
            comparison_policies(),
            &service,
            &SimConfig::new(600.0),
        );
        assert_eq!(out.len(), 5);
    }
}
