//! Motivation experiments: Figs. 1, 3 and 4.

use serde::Serialize;

use arena_cluster::{Cluster, GpuSpec, GpuTypeId, LinkKind, NodeSpec};
use arena_model::zoo::{ModelConfig, ModelFamily};
use arena_perf::CostParams;
use arena_sched::PlanService;

use crate::report::{f1, f3, Table};

/// A 4×A100 server whose GPUs are connected over PCIe (Fig. 4 topology
/// axis).
#[must_use]
pub fn a100_pcie_node() -> NodeSpec {
    let mut spec = NodeSpec::with_default_links(GpuSpec::A100, 4);
    spec.intra_link = LinkKind::Pcie4;
    spec
}

/// The Ampere-PCIe server used for the exchange cases (Fig. 1 Case-B,
/// Fig. 3b).
///
/// The paper pairs an A100-PCIe box against a V100-NVLink box; in our
/// substrate the 40 GiB A100 plus gradient accumulation erases the memory
/// cliff the case demonstrates, so the 24 GiB Ampere part (A10) stands in
/// — the qualitative story (the big BERT *must* use NVLink-backed tensor
/// parallelism and cannot run on the PCIe box at all) is preserved.
#[must_use]
pub fn ampere_pcie_node() -> NodeSpec {
    NodeSpec::with_default_links(GpuSpec::A10, 4)
}

/// One job's outcome inside a scheduling scheme.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// Model name.
    pub model: String,
    /// Where it ran, e.g. `"4xA100"` or `"OOM"` / `"queued"`.
    pub placement: String,
    /// The adaptive plan used.
    pub plan: String,
    /// Raw throughput, samples/s (0 when not running).
    pub throughput_sps: f64,
    /// Throughput normalised by the job's 4-GPU best-pool ideal.
    pub normalized: f64,
}

/// One scheduling scheme of Fig. 1 / Fig. 3.
#[derive(Debug, Clone, Serialize)]
pub struct Scheme {
    /// Case label, e.g. `"Case-A"`.
    pub case: String,
    /// Scheme label, e.g. `"(2,2)"`.
    pub scheme: String,
    /// Per-job outcomes.
    pub jobs: Vec<JobOutcome>,
    /// Sum of normalised throughputs (the cluster-throughput objective).
    pub total_normalized: f64,
}

fn outcome(
    service: &PlanService,
    model: &ModelConfig,
    gpus: usize,
    pool: Option<GpuTypeId>,
    pool_name: &str,
    ideal: f64,
) -> JobOutcome {
    match pool {
        None => JobOutcome {
            model: model.name(),
            placement: "queued".into(),
            plan: "-".into(),
            throughput_sps: 0.0,
            normalized: 0.0,
        },
        Some(p) => match service.adaptive_run(model, gpus, p) {
            Some(run) => JobOutcome {
                model: model.name(),
                placement: format!("{gpus}x{pool_name}"),
                plan: run.plan_label.clone(),
                throughput_sps: run.throughput_sps,
                normalized: run.throughput_sps / ideal,
            },
            None => JobOutcome {
                model: model.name(),
                placement: format!("OOM@{gpus}x{pool_name}"),
                plan: "-".into(),
                throughput_sps: 0.0,
                normalized: 0.0,
            },
        },
    }
}

fn finish(case: &str, scheme: &str, jobs: Vec<JobOutcome>) -> Scheme {
    let total_normalized = jobs.iter().map(|j| j.normalized).sum();
    Scheme {
        case: case.into(),
        scheme: scheme.into(),
        jobs,
        total_normalized,
    }
}

/// Fig. 1: scheduling decisions change cluster throughput on identical
/// resources.
///
/// * **Case-A** (scaling): two jobs on one 4×A100-NVLink server — run
///   both at 2 GPUs, or the first exclusively at 4 with the second
///   queued.
/// * **Case-B** (exchanging): a 4×A100-PCIe server and a 4×V100-NVLink
///   server — which job gets which type.
#[must_use]
pub fn fig1() -> Vec<Scheme> {
    let mut out = Vec::new();

    // Case A: 4 x A100 NVLink.
    {
        let cluster = Cluster::new(&[(NodeSpec::with_default_links(GpuSpec::A100, 4), 1)]);
        let service = PlanService::new(&cluster, CostParams::default(), 101);
        let j1 = ModelConfig::new(ModelFamily::Moe, 2.4, 512);
        let j2 = ModelConfig::new(ModelFamily::WideResNet, 1.0, 512);
        let pool = GpuTypeId(0);
        let ideal1 = service
            .adaptive_run(&j1, 4, pool)
            .expect("feasible")
            .throughput_sps;
        let ideal2 = service
            .adaptive_run(&j2, 4, pool)
            .expect("feasible")
            .throughput_sps;
        out.push(finish(
            "Case-A",
            "(2,2) concurrent",
            vec![
                outcome(&service, &j1, 2, Some(pool), "A100", ideal1),
                outcome(&service, &j2, 2, Some(pool), "A100", ideal2),
            ],
        ));
        out.push(finish(
            "Case-A",
            "(4,queued) exclusive",
            vec![
                outcome(&service, &j1, 4, Some(pool), "A100", ideal1),
                outcome(&service, &j2, 4, None, "A100", ideal2),
            ],
        ));
    }

    // Case B: 4 x Ampere-PCIe + 4 x V100-NVLink.
    {
        let cluster = Cluster::new(&[
            (ampere_pcie_node(), 1),
            (NodeSpec::with_default_links(GpuSpec::V100, 4), 1),
        ]);
        let service = PlanService::new(&cluster, CostParams::default(), 102);
        let j1 = ModelConfig::new(ModelFamily::Bert, 6.7, 128);
        let j2 = ModelConfig::new(ModelFamily::WideResNet, 1.0, 512);
        let (amp, v100) = (GpuTypeId(0), GpuTypeId(1));
        let ideal = |m: &ModelConfig| {
            [amp, v100]
                .iter()
                .filter_map(|&p| service.adaptive_run(m, 4, p))
                .map(|r| r.throughput_sps)
                .fold(0.0, f64::max)
        };
        let (i1, i2) = (ideal(&j1), ideal(&j2));
        out.push(finish(
            "Case-B",
            "BERT-6.7B->V100nvlink, WRes->AmperePCIe",
            vec![
                outcome(&service, &j1, 4, Some(v100), "V100", i1),
                outcome(&service, &j2, 4, Some(amp), "A10", i2),
            ],
        ));
        out.push(finish(
            "Case-B",
            "BERT-6.7B->AmperePCIe, WRes->V100nvlink",
            vec![
                outcome(&service, &j1, 4, Some(amp), "A10", i1),
                outcome(&service, &j2, 4, Some(v100), "V100", i2),
            ],
        ));
    }
    out
}

/// Fig. 3(a): scaling 8 homogeneous A100 GPUs across four queuing jobs.
/// Fig. 3(b): exchanging a 4×A100 and a 4×V100 server between two jobs.
#[must_use]
pub fn fig3() -> Vec<Scheme> {
    let mut out = Vec::new();

    // (a) 2 nodes x 4 A100.
    {
        let cluster = Cluster::new(&[(NodeSpec::with_default_links(GpuSpec::A100, 4), 2)]);
        let service = PlanService::new(&cluster, CostParams::default(), 103);
        let jobs = [
            ModelConfig::new(ModelFamily::WideResNet, 6.8, 1024),
            ModelConfig::new(ModelFamily::Moe, 2.4, 512),
            ModelConfig::new(ModelFamily::Bert, 1.3, 256),
            ModelConfig::new(ModelFamily::Moe, 1.3, 512),
        ];
        let pool = GpuTypeId(0);
        let ideals: Vec<f64> = jobs
            .iter()
            .map(|m| {
                service
                    .adaptive_run(m, 8, pool)
                    .map_or(1.0, |r| r.throughput_sps)
            })
            .collect();
        for alloc in [
            [4, 2, 2, 0],
            [2, 2, 2, 2],
            [2, 4, 2, 0],
            [8, 0, 0, 0],
            [0, 4, 2, 2],
        ] {
            let outcomes: Vec<JobOutcome> = jobs
                .iter()
                .zip(&ideals)
                .zip(alloc)
                .map(|((m, &ideal), g)| {
                    let pool_opt = (g > 0).then_some(pool);
                    outcome(&service, m, g.max(1), pool_opt, "A100", ideal)
                })
                .collect();
            out.push(finish(
                "Fig3a",
                &format!("({},{},{},{})", alloc[0], alloc[1], alloc[2], alloc[3]),
                outcomes,
            ));
        }
    }

    // (b) 4 x Ampere-PCIe vs 4 x V100-NVLink exchange.
    {
        let cluster = Cluster::new(&[
            (ampere_pcie_node(), 1),
            (NodeSpec::with_default_links(GpuSpec::V100, 4), 1),
        ]);
        let service = PlanService::new(&cluster, CostParams::default(), 104);
        let j1 = ModelConfig::new(ModelFamily::Bert, 6.7, 128);
        let j2 = ModelConfig::new(ModelFamily::WideResNet, 2.0, 1024);
        let (amp, v100) = (GpuTypeId(0), GpuTypeId(1));
        let ideal = |m: &ModelConfig| {
            [amp, v100]
                .iter()
                .filter_map(|&p| service.adaptive_run(m, 4, p))
                .map(|r| r.throughput_sps)
                .fold(0.0_f64, f64::max)
                .max(1e-9)
        };
        let (i1, i2) = (ideal(&j1), ideal(&j2));
        out.push(finish(
            "Fig3b",
            "BERT-6.7B->V100, WRes-2B->AmperePCIe",
            vec![
                outcome(&service, &j1, 4, Some(v100), "V100", i1),
                outcome(&service, &j2, 4, Some(amp), "A10", i2),
            ],
        ));
        out.push(finish(
            "Fig3b",
            "BERT-6.7B->AmperePCIe, WRes-2B->V100",
            vec![
                outcome(&service, &j1, 4, Some(amp), "A10", i1),
                outcome(&service, &j2, 4, Some(v100), "V100", i2),
            ],
        ));
    }
    out
}

/// Renders Fig. 1 / Fig. 3 schemes.
#[must_use]
pub fn schemes_table(title: &str, schemes: &[Scheme]) -> Table {
    let mut t = Table::new(
        title,
        &["case", "scheme", "job placements (plan)", "Σ norm thpt"],
    );
    for s in schemes {
        let detail: Vec<String> = s
            .jobs
            .iter()
            .map(|j| format!("{}@{}[{}]", j.model, j.placement, j.plan))
            .collect();
        t.row(vec![
            s.case.clone(),
            s.scheme.clone(),
            detail.join(" "),
            f3(s.total_normalized),
        ]);
    }
    t
}

/// One configuration of Fig. 4: a model's optimal plan and throughput on
/// one hardware setting.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Sweep axis: `"gpus"`, `"type"` or `"topology"`.
    pub axis: String,
    /// Model name.
    pub model: String,
    /// Setting label, e.g. `"8xA100"`.
    pub setting: String,
    /// Optimal plan label (or `"OOM"`).
    pub plan: String,
    /// Throughput, samples/s.
    pub throughput_sps: f64,
}

/// Fig. 4: how the optimal parallelism plan and performance shift with
/// (a) GPU count, (b) GPU type and (c) GPU topology.
#[must_use]
pub fn fig4() -> Vec<Fig4Row> {
    let models = [
        ModelConfig::new(ModelFamily::Moe, 1.3, 512),
        ModelConfig::new(ModelFamily::Bert, 1.3, 256),
        ModelConfig::new(ModelFamily::WideResNet, 1.0, 512),
    ];
    let mut rows = Vec::new();

    // (a) GPU number on A100.
    {
        let cluster = Cluster::new(&[(NodeSpec::with_default_links(GpuSpec::A100, 4), 2)]);
        let service = PlanService::new(&cluster, CostParams::default(), 105);
        for m in &models {
            for gpus in [1_usize, 2, 4, 8] {
                rows.push(fig4_row(
                    &service,
                    m,
                    gpus,
                    GpuTypeId(0),
                    "gpus",
                    &format!("{gpus}xA100"),
                ));
            }
        }
    }

    // (b) GPU type at 4 GPUs.
    {
        let cluster = arena_cluster::presets::table1_simulated();
        let service = PlanService::new(&cluster, CostParams::default(), 106);
        for m in &models {
            for pool in cluster.pool_ids() {
                let name = cluster.spec(pool).gpu.name;
                rows.push(fig4_row(&service, m, 4, pool, "type", &format!("4x{name}")));
            }
        }
    }

    // (c) Topology: A100 NVLink vs PCIe at 4 GPUs.
    {
        let cluster = Cluster::new(&[
            (NodeSpec::with_default_links(GpuSpec::A100, 4), 1),
            (a100_pcie_node(), 1),
        ]);
        let service = PlanService::new(&cluster, CostParams::default(), 107);
        for m in &models {
            rows.push(fig4_row(
                &service,
                m,
                4,
                GpuTypeId(0),
                "topology",
                "4xA100-NVLink",
            ));
            rows.push(fig4_row(
                &service,
                m,
                4,
                GpuTypeId(1),
                "topology",
                "4xA100-PCIe",
            ));
        }
    }
    rows
}

fn fig4_row(
    service: &PlanService,
    m: &ModelConfig,
    gpus: usize,
    pool: GpuTypeId,
    axis: &str,
    setting: &str,
) -> Fig4Row {
    match service.adaptive_run(m, gpus, pool) {
        Some(r) => Fig4Row {
            axis: axis.into(),
            model: m.name(),
            setting: setting.into(),
            plan: r.plan_label,
            throughput_sps: r.throughput_sps,
        },
        None => Fig4Row {
            axis: axis.into(),
            model: m.name(),
            setting: setting.into(),
            plan: "OOM".into(),
            throughput_sps: 0.0,
        },
    }
}

/// Renders Fig. 4.
#[must_use]
pub fn fig4_table(rows: &[Fig4Row]) -> Table {
    let mut t = Table::new(
        "Fig 4: optimal plan variation across resources",
        &[
            "axis",
            "model",
            "setting",
            "optimal plan",
            "thpt (samples/s)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.axis.clone(),
            r.model.clone(),
            r.setting.clone(),
            r.plan.clone(),
            f1(r.throughput_sps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_case_a_concurrent_beats_exclusive() {
        let schemes = fig1();
        let conc = schemes
            .iter()
            .find(|s| s.scheme.contains("concurrent"))
            .unwrap();
        let excl = schemes
            .iter()
            .find(|s| s.scheme.contains("exclusive"))
            .unwrap();
        assert!(
            conc.total_normalized > excl.total_normalized,
            "concurrent {} <= exclusive {}",
            conc.total_normalized,
            excl.total_normalized
        );
    }

    #[test]
    fn fig1_case_b_schemes_differ() {
        let schemes = fig1();
        let b: Vec<&Scheme> = schemes.iter().filter(|s| s.case == "Case-B").collect();
        assert_eq!(b.len(), 2);
        let gap = (b[0].total_normalized - b[1].total_normalized).abs()
            / b[0].total_normalized.min(b[1].total_normalized);
        assert!(gap > 0.05, "exchange gap only {gap}");
    }

    #[test]
    fn fig3a_schemes_spread_and_mark_oom() {
        let schemes = fig3();
        let a: Vec<&Scheme> = schemes.iter().filter(|s| s.case == "Fig3a").collect();
        assert_eq!(a.len(), 5);
        // WRes-2B cannot fit on 2xA100 (paper's OOM annotation).
        let with_wres2 = a.iter().find(|s| s.scheme == "(2,2,2,2)").unwrap();
        assert!(with_wres2.jobs[0].placement.starts_with("OOM"));
        // Scheme totals differ meaningfully.
        let totals: Vec<f64> = a.iter().map(|s| s.total_normalized).collect();
        let max = totals.iter().fold(0.0_f64, |m, &x| m.max(x));
        let min = totals.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        assert!(max / min.max(1e-9) > 1.2, "totals too close: {totals:?}");
    }

    #[test]
    fn fig4_moe_scales_while_others_plateau() {
        let rows = fig4();
        let thpt = |model: &str, setting: &str| -> f64 {
            rows.iter()
                .find(|r| r.model == model && r.setting == setting && r.axis == "gpus")
                .map(|r| r.throughput_sps)
                .unwrap()
        };
        // MoE-1.3B keeps scaling 4 -> 8; speedup close to 2.
        let moe_scale = thpt("MoE-1.3B", "8xA100") / thpt("MoE-1.3B", "4xA100");
        assert!(moe_scale > 1.5, "MoE scale-up only {moe_scale}");
        // Plans change across GPU types for at least one model.
        let type_plans: std::collections::HashSet<String> = rows
            .iter()
            .filter(|r| r.axis == "type" && r.model == "BERT-1.3B" && r.plan != "OOM")
            .map(|r| r.plan.clone())
            .collect();
        assert!(type_plans.len() > 1, "plan never changes across types");
    }

    #[test]
    fn tables_render() {
        assert!(schemes_table("fig1", &fig1()).render().contains("Case-A"));
    }
}
