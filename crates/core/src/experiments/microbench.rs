//! Micro-benchmarks of the Cell machinery: Figs. 12 and 13 and the §8.2
//! profiling-time budget.

use serde::Serialize;

use arena_cluster::{GpuSpec, NodeSpec};
use arena_estimator::{Cell, CellEstimator};
use arena_model::zoo::{ModelConfig, ModelFamily};
use arena_perf::{CostParams, GroundTruth, HwTarget};
use arena_tuner::{tune_full, tune_pruned};

use crate::report::{f1, f3, pct, Table};

/// The nine configurations of Figs. 12/13: model size grows with the GPU
/// count, as in the paper.
#[must_use]
pub fn fig12_configs() -> Vec<(ModelConfig, usize)> {
    vec![
        (ModelConfig::new(ModelFamily::WideResNet, 1.0, 512), 4),
        (ModelConfig::new(ModelFamily::WideResNet, 2.0, 512), 8),
        (ModelConfig::new(ModelFamily::WideResNet, 4.0, 1024), 16),
        (ModelConfig::new(ModelFamily::Bert, 1.3, 256), 4),
        (ModelConfig::new(ModelFamily::Bert, 2.6, 256), 8),
        (ModelConfig::new(ModelFamily::Bert, 6.7, 512), 16),
        (ModelConfig::new(ModelFamily::Moe, 1.3, 512), 4),
        (ModelConfig::new(ModelFamily::Moe, 2.4, 512), 8),
        (ModelConfig::new(ModelFamily::Moe, 10.0, 1024), 16),
    ]
}

/// The A100 hardware target used by the micro-benchmarks.
#[must_use]
pub fn a100_target() -> HwTarget {
    HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4))
}

/// One configuration's estimation quality and cost (Fig. 12).
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Configuration label, e.g. `"BERT-2.6B@8"`.
    pub config: String,
    /// Estimated iteration time of the Cell's best assembled plan.
    pub estimated_s: f64,
    /// Directly measured iteration time of the same plan.
    pub measured_s: f64,
    /// Paper's estimation accuracy: `1 − (Tₑ − T_d)/T_d`.
    pub accuracy: f64,
    /// GPU-seconds paid by the agile estimator.
    pub agile_gpu_s: f64,
    /// GPU-seconds a direct profiling of the plan would pay.
    pub direct_gpu_s: f64,
    /// GPU-time reduction (`direct / agile`).
    pub reduction: f64,
}

/// Fig. 12: estimation accuracy and GPU-time reduction of the agile Cell
/// estimator versus directly profiling the job.
#[must_use]
pub fn fig12() -> Vec<Fig12Row> {
    let hw = a100_target();
    fig12_configs()
        .into_iter()
        .enumerate()
        .map(|(i, (model, gpus))| {
            let params = CostParams::default();
            let gt = GroundTruth::new(params.clone(), 500 + i as u64);
            let est = CellEstimator::new(params, 500 + i as u64);
            let graph = model.build();

            // Best Cell by estimate, then re-run the winning Cell's two
            // profilings on a fresh meter: the figure compares the cost of
            // acquiring ONE Cell's performance data agilely vs directly.
            let (cell, _) = Cell::generate(&graph, gpus)
                .into_iter()
                .filter_map(|c| {
                    est.estimate(&graph, model.global_batch, &c, &hw)
                        .map(|e| (c, e))
                })
                .max_by(|a, b| a.1.throughput_sps.partial_cmp(&b.1.throughput_sps).unwrap())
                .expect("some cell is feasible");
            let fresh = CellEstimator::new(CostParams::default(), 500 + i as u64);
            let e = fresh
                .estimate(&graph, model.global_batch, &cell, &hw)
                .expect("chosen cell estimates");
            let agile_gpu_s = fresh.meter().gpu_seconds();

            // Direct measurement of the same plan on its full allocation.
            let measured = gt
                .profile_direct(&graph, model.global_batch, &e.plan, &hw)
                .expect("estimated plan is feasible");
            let direct_gpu_s = gt.meter().gpu_seconds();

            let accuracy = 1.0 - (e.iter_time_s - measured.iter_time_s) / measured.iter_time_s;
            Fig12Row {
                config: format!("{}@{}", model.name(), gpus),
                estimated_s: e.iter_time_s,
                measured_s: measured.iter_time_s,
                accuracy,
                agile_gpu_s,
                direct_gpu_s,
                reduction: direct_gpu_s / agile_gpu_s,
            }
        })
        .collect()
}

/// Renders Fig. 12.
#[must_use]
pub fn fig12_table(rows: &[Fig12Row]) -> Table {
    let mut t = Table::new(
        "Fig 12: agile Cell estimation accuracy and GPU-time reduction",
        &[
            "config",
            "est (s)",
            "measured (s)",
            "accuracy",
            "agile GPU-s",
            "direct GPU-s",
            "reduction",
        ],
    );
    for r in rows {
        t.row(vec![
            r.config.clone(),
            f3(r.estimated_s),
            f3(r.measured_s),
            pct(r.accuracy),
            f1(r.agile_gpu_s),
            f1(r.direct_gpu_s),
            format!("{:.2}x", r.reduction),
        ]);
    }
    let avg_acc = rows.iter().map(|r| r.accuracy).sum::<f64>() / rows.len() as f64;
    let avg_red = rows.iter().map(|r| r.reduction).sum::<f64>() / rows.len() as f64;
    t.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        pct(avg_acc),
        "-".into(),
        "-".into(),
        format!("{avg_red:.2}x"),
    ]);
    t
}

/// One configuration's tuning quality and cost (Fig. 13).
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Row {
    /// Configuration label.
    pub config: String,
    /// Iteration time found by the unpruned full search.
    pub full_s: f64,
    /// Iteration time found by Cell-guided pruned search.
    pub pruned_s: f64,
    /// Paper's tuning accuracy: `1 − (T_c − T_o)/T_o`.
    pub accuracy: f64,
    /// GPU-seconds of the full search.
    pub full_gpu_s: f64,
    /// GPU-seconds of the pruned search.
    pub pruned_gpu_s: f64,
    /// Tuning-time reduction (`full / pruned`).
    pub reduction: f64,
    /// Plans profiled by each search.
    pub full_trials: u64,
    /// Plans profiled by the pruned search.
    pub pruned_trials: u64,
}

/// Fig. 13: Cell-guided tuning accuracy and tuning-time reduction versus
/// unpruned full-space search.
#[must_use]
pub fn fig13() -> Vec<Fig13Row> {
    let hw = a100_target();
    fig12_configs()
        .into_iter()
        .enumerate()
        .map(|(i, (model, gpus))| {
            let params = CostParams::default();
            let gt = GroundTruth::new(params.clone(), 700 + i as u64);
            let est = CellEstimator::new(params, 700 + i as u64);
            let graph = model.build();
            let (cell, e) = Cell::generate(&graph, gpus)
                .into_iter()
                .filter_map(|c| {
                    est.estimate(&graph, model.global_batch, &c, &hw)
                        .map(|e| (c, e))
                })
                .max_by(|a, b| a.1.throughput_sps.partial_cmp(&b.1.throughput_sps).unwrap())
                .expect("some cell is feasible");

            let full = tune_full(&gt, &graph, model.global_batch, &cell, &hw)
                .expect("full search finds a plan");
            let pruned = tune_pruned(&gt, &graph, model.global_batch, &cell, &e, &hw)
                .expect("pruned search finds a plan");

            let accuracy =
                1.0 - (pruned.perf.iter_time_s - full.perf.iter_time_s) / full.perf.iter_time_s;
            Fig13Row {
                config: format!("{}@{}", model.name(), gpus),
                full_s: full.perf.iter_time_s,
                pruned_s: pruned.perf.iter_time_s,
                accuracy,
                full_gpu_s: full.gpu_seconds,
                pruned_gpu_s: pruned.gpu_seconds,
                reduction: full.gpu_seconds / pruned.gpu_seconds,
                full_trials: full.trials,
                pruned_trials: pruned.trials,
            }
        })
        .collect()
}

/// Renders Fig. 13.
#[must_use]
pub fn fig13_table(rows: &[Fig13Row]) -> Table {
    let mut t = Table::new(
        "Fig 13: Cell-guided tuning accuracy and time reduction",
        &[
            "config",
            "full (s)",
            "pruned (s)",
            "accuracy",
            "trials full/pruned",
            "reduction",
        ],
    );
    for r in rows {
        t.row(vec![
            r.config.clone(),
            f3(r.full_s),
            f3(r.pruned_s),
            pct(r.accuracy),
            format!("{}/{}", r.full_trials, r.pruned_trials),
            format!("{:.2}x", r.reduction),
        ]);
    }
    let avg_acc = rows.iter().map(|r| r.accuracy).sum::<f64>() / rows.len() as f64;
    let avg_red = rows.iter().map(|r| r.reduction).sum::<f64>() / rows.len() as f64;
    t.row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        pct(avg_acc),
        "-".into(),
        format!("{avg_red:.2}x"),
    ]);
    t
}

/// §8.2: the profiling-time budget of one job.
#[derive(Debug, Clone, Serialize)]
pub struct ProfilingBudget {
    /// Mean wall-clock of one per-parallelism stage profile, seconds.
    pub per_parallelism_s: f64,
    /// Mean wall-clock per Cell (two parallelisms), seconds.
    pub per_cell_s: f64,
    /// Worst-case per-job profiling wall-clock, seconds.
    pub per_job_worst_s: f64,
}

/// Measures the per-parallelism / per-Cell / per-job profiling budget
/// (§8.2: ≈30 s / ≈1 min / ≤30 min).
#[must_use]
pub fn profiling_budget() -> ProfilingBudget {
    let hw = a100_target();
    let params = CostParams::default();
    let mut cells = 0_u64;
    let mut total = 0.0;
    for (model, gpus) in fig12_configs() {
        let est = CellEstimator::new(params.clone(), 900);
        let graph = model.build();
        for cell in Cell::generate(&graph, gpus) {
            let _ = est.estimate(&graph, model.global_batch, &cell, &hw);
        }
        cells += est.meter().trials() / 2;
        total += est.meter().wall_seconds();
    }
    let per_cell_s = total / cells as f64;
    ProfilingBudget {
        per_parallelism_s: per_cell_s / 2.0,
        per_cell_s,
        // A job profiles 3 GPU-count variants x log2(64) stage counts at
        // worst, per-GPU-type profiling running in parallel.
        per_job_worst_s: per_cell_s * 3.0 * 6.0,
    }
}

/// Renders the profiling budget.
#[must_use]
pub fn budget_table(b: &ProfilingBudget) -> Table {
    let mut t = Table::new("§8.2: profiling-time budget", &["quantity", "seconds"]);
    t.row(vec!["per parallelism".into(), f1(b.per_parallelism_s)]);
    t.row(vec!["per Cell".into(), f1(b.per_cell_s)]);
    t.row(vec!["per job (worst case)".into(), f1(b.per_job_worst_s)]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_accuracy_in_paper_band() {
        let rows = fig12();
        assert_eq!(rows.len(), 9);
        let avg = rows.iter().map(|r| r.accuracy).sum::<f64>() / 9.0;
        let worst = rows
            .iter()
            .map(|r| r.accuracy)
            .fold(f64::INFINITY, f64::min);
        assert!(avg > 0.85, "avg accuracy {avg}");
        assert!(worst > 0.70, "worst accuracy {worst}");
        // Paper: 93.4% average, 90.5% worst; we require the same regime.
        assert!(avg < 1.1, "accuracy suspiciously above 1: {avg}");
    }

    #[test]
    fn fig12_reduction_is_substantial() {
        let rows = fig12();
        let avg = rows.iter().map(|r| r.reduction).sum::<f64>() / 9.0;
        let min = rows
            .iter()
            .map(|r| r.reduction)
            .fold(f64::INFINITY, f64::min);
        assert!(avg > 4.0, "avg reduction {avg}");
        assert!(min > 1.5, "min reduction {min}");
    }

    #[test]
    fn fig13_tuning_accuracy_and_reduction() {
        let rows = fig13();
        let avg_acc = rows.iter().map(|r| r.accuracy).sum::<f64>() / 9.0;
        let avg_red = rows.iter().map(|r| r.reduction).sum::<f64>() / 9.0;
        assert!(avg_acc > 0.9, "avg tuning accuracy {avg_acc}");
        assert!(avg_red > 1.5, "avg tuning reduction {avg_red}");
        for r in &rows {
            assert!(r.pruned_trials <= r.full_trials, "{}", r.config);
        }
    }

    #[test]
    fn budget_matches_section_8_2() {
        let b = profiling_budget();
        assert!(b.per_parallelism_s > 10.0 && b.per_parallelism_s < 120.0);
        assert!(b.per_cell_s > 20.0 && b.per_cell_s < 240.0);
        assert!(b.per_job_worst_s < 1900.0, "per-job {}", b.per_job_worst_s);
    }
}
