//! Tables 1 and 2: cluster and model-zoo configuration.

use serde::Serialize;

use arena_cluster::presets;
use arena_model::zoo;

use crate::report::{f1, Table};

/// One pool row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// GPU model name.
    pub gpu: String,
    /// Architecture name.
    pub arch: String,
    /// Memory per device, GiB.
    pub mem_gib: f64,
    /// Intra-node interconnect.
    pub intra: String,
    /// Inter-node fabric.
    pub inter: String,
    /// Node count.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Total GPUs in the pool.
    pub total_gpus: usize,
}

/// Regenerates Table 1 from the simulated-cluster preset.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let cluster = presets::table1_simulated();
    cluster
        .pool_stats()
        .into_iter()
        .map(|p| Table1Row {
            gpu: p.spec.gpu.name.to_string(),
            arch: format!("{:?}", p.spec.gpu.arch),
            mem_gib: p.spec.gpu.mem_gib,
            intra: p.spec.intra_link.to_string(),
            inter: p.spec.inter_link.to_string(),
            nodes: p.total_gpus / p.spec.gpus_per_node,
            gpus_per_node: p.spec.gpus_per_node,
            total_gpus: p.total_gpus,
        })
        .collect()
}

/// Renders Table 1.
#[must_use]
pub fn table1_table(rows: &[Table1Row]) -> Table {
    let mut t = Table::new(
        "Table 1: simulated heterogeneous cluster",
        &[
            "GPU",
            "Arch",
            "Mem(GiB)",
            "Intra",
            "Inter",
            "#Nodes",
            "GPUs/node",
            "#GPUs",
        ],
    );
    for r in rows {
        t.row(vec![
            r.gpu.clone(),
            r.arch.clone(),
            f1(r.mem_gib),
            r.intra.clone(),
            r.inter.clone(),
            r.nodes.to_string(),
            r.gpus_per_node.to_string(),
            r.total_gpus.to_string(),
        ]);
    }
    t
}

/// One model row of Table 2, with the realised parameter count.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Model name, e.g. `"BERT-2.6B"`.
    pub model: String,
    /// Global batch sizes used in the experiments.
    pub batches: Vec<usize>,
    /// Nominal size, billions of parameters.
    pub nominal_b: f64,
    /// Realised parameter count of the built graph, billions.
    pub realised_b: f64,
    /// Operators in the graph.
    pub ops: usize,
}

/// Regenerates Table 2 from the zoo, building every model.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    zoo::table2_configs()
        .into_iter()
        .map(|cfg| {
            let g = cfg.build();
            Table2Row {
                model: cfg.name(),
                batches: cfg.family.table2_batches().to_vec(),
                nominal_b: cfg.params_b,
                realised_b: g.params_billion(),
                ops: g.len(),
            }
        })
        .collect()
}

/// Renders Table 2.
#[must_use]
pub fn table2_table(rows: &[Table2Row]) -> Table {
    let mut t = Table::new(
        "Table 2: model zoo (nominal vs realised parameters)",
        &["Model", "Batches", "Nominal (B)", "Realised (B)", "#Ops"],
    );
    for r in rows {
        t.row(vec![
            r.model.clone(),
            format!("{:?}", r.batches),
            format!("{}", r.nominal_b),
            format!("{:.2}", r.realised_b),
            r.ops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        let total: usize = rows.iter().map(|r| r.total_gpus).sum();
        assert_eq!(total, 1280);
        let a100 = &rows[0];
        assert_eq!(a100.gpu, "A100");
        assert_eq!(a100.nodes, 80);
        assert_eq!(a100.gpus_per_node, 4);
    }

    #[test]
    fn table2_realised_sizes_near_nominal() {
        let rows = table2();
        assert_eq!(rows.len(), 14);
        for r in &rows {
            let err = (r.realised_b - r.nominal_b).abs() / r.nominal_b;
            assert!(err < 0.12, "{}: {err}", r.model);
        }
    }

    #[test]
    fn tables_render() {
        assert!(table1_table(&table1()).render().contains("V100"));
        assert!(table2_table(&table2()).render().contains("MoE-27B"));
    }
}
