//! Cluster-level experiments: Figs. 14–18 and the §8.3 fidelity check.

use serde::Serialize;

use arena_cluster::{presets, Cluster, GpuTypeId};
use arena_estimator::{Cell, CellEstimator};
use arena_model::zoo::{ModelConfig, ModelFamily};
use arena_perf::{CostParams, GroundTruth};
use arena_runtime::WorkerPool;
use arena_sim::SimConfig;
use arena_trace::{generate, JobSpec, TraceConfig, TraceKind};

use super::{run_policies_parallel, summary_table, PolicySummary};
use crate::report::{f3, pct, Table};

/// A cluster-comparison experiment's full output.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterExperiment {
    /// Experiment label.
    pub name: String,
    /// Jobs in the trace.
    pub num_jobs: usize,
    /// Per-policy aggregate results.
    pub summaries: Vec<PolicySummary>,
    /// Per-policy normalised-throughput timelines, downsampled hourly:
    /// `(policy, Vec<(hour, throughput)>)`.
    pub timelines: Vec<(String, Vec<(f64, f64)>)>,
}

impl ClusterExperiment {
    /// Renders the summary comparison table.
    #[must_use]
    pub fn table(&self) -> Table {
        summary_table(&self.name, &self.summaries)
    }

    /// The Arena summary.
    ///
    /// # Panics
    ///
    /// Panics if Arena was not part of the comparison.
    #[must_use]
    pub fn arena(&self) -> &PolicySummary {
        self.summaries
            .iter()
            .find(|s| s.policy.starts_with("Arena"))
            .expect("Arena ran")
    }

    /// The best baseline (non-Arena) value of a metric.
    #[must_use]
    pub fn best_baseline<F: Fn(&PolicySummary) -> f64>(&self, f: F, minimise: bool) -> f64 {
        let it = self
            .summaries
            .iter()
            .filter(|s| !s.policy.starts_with("Arena"))
            .map(f);
        if minimise {
            it.fold(f64::INFINITY, f64::min)
        } else {
            it.fold(0.0, f64::max)
        }
    }
}

fn pool_mems(cluster: &Cluster) -> Vec<f64> {
    cluster
        .pool_stats()
        .iter()
        .map(|p| p.spec.gpu.mem_gib)
        .collect()
}

fn downsample_hourly(timeline: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut hour = 0_usize;
    let mut acc = 0.0;
    let mut n = 0;
    for &(t, v) in timeline {
        let h = (t / 3600.0) as usize;
        if h != hour && n > 0 {
            out.push((hour as f64, acc / f64::from(n)));
            acc = 0.0;
            n = 0;
            hour = h;
        }
        acc += v;
        n += 1;
    }
    if n > 0 {
        out.push((hour as f64, acc / f64::from(n)));
    }
    out
}

fn run_comparison(
    name: &str,
    cluster: &Cluster,
    jobs: &[JobSpec],
    policies: Vec<Box<dyn arena_sched::Policy>>,
    horizon_s: f64,
    seed: u64,
) -> ClusterExperiment {
    // One policy per worker; each gets a freshly seeded service (same
    // ground truth, fair comparison) so nothing is shared across threads.
    let results = run_policies_parallel(
        cluster,
        jobs,
        policies,
        &CostParams::default(),
        seed,
        &SimConfig::new(horizon_s),
        &WorkerPool::from_env(),
    );
    let mut summaries: Vec<PolicySummary> = results.iter().map(PolicySummary::from).collect();
    super::fill_common_jct(&results, &mut summaries);
    ClusterExperiment {
        name: name.to_string(),
        num_jobs: jobs.len(),
        summaries,
        timelines: results
            .iter()
            .map(|r| (r.policy.clone(), downsample_hourly(&r.timeline)))
            .collect(),
    }
}

/// Fig. 14: the five-policy comparison on the 64-GPU physical testbed
/// with a 6-hour Philly trace (§8.3).
#[must_use]
pub fn fig14(quick: bool) -> ClusterExperiment {
    let cluster = presets::physical_testbed();
    let hours = if quick { 2.0 } else { 6.0 };
    let cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        hours * 3600.0,
        cluster.total_gpus(),
        pool_mems(&cluster),
    );
    let jobs = generate(&cfg);
    run_comparison(
        "Fig 14: physical-testbed comparison (Philly, 64 GPUs)",
        &cluster,
        &jobs,
        super::comparison_policies(),
        hours * 3600.0 * 6.0,
        14,
    )
}

/// §8.3 simulation fidelity: how closely scheduling-time estimates track
/// the measured ground truth over the testbed's configuration grid.
#[derive(Debug, Clone, Serialize)]
pub struct Fidelity {
    /// Mean relative error of estimated throughput.
    pub avg_throughput_err: f64,
    /// Mean relative error of estimated iteration time (JCT proxy).
    pub avg_iter_time_err: f64,
    /// Configurations compared.
    pub configs: usize,
}

/// Measures estimate-vs-measured fidelity across the testbed grid.
#[must_use]
pub fn fidelity() -> Fidelity {
    let cluster = presets::physical_testbed();
    let params = CostParams::default();
    let gt = GroundTruth::new(params.clone(), 31);
    let est = CellEstimator::new(params, 31);
    let mut errs_thpt = Vec::new();
    let mut errs_iter = Vec::new();
    let models = [
        ModelConfig::new(ModelFamily::WideResNet, 1.0, 512),
        ModelConfig::new(ModelFamily::Bert, 1.3, 256),
        ModelConfig::new(ModelFamily::Bert, 2.6, 256),
        ModelConfig::new(ModelFamily::Moe, 1.3, 512),
        ModelConfig::new(ModelFamily::Moe, 2.4, 512),
    ];
    for pool in cluster.pool_ids() {
        let hw = arena_perf::HwTarget::new(cluster.spec(pool));
        for model in &models {
            let graph = model.build();
            for gpus in [4_usize, 8] {
                for cell in Cell::generate(&graph, gpus) {
                    let Some(e) = est.estimate(&graph, model.global_batch, &cell, &hw) else {
                        continue;
                    };
                    let Ok(m) = gt.measure(&graph, model.global_batch, &e.plan, &hw) else {
                        continue;
                    };
                    errs_thpt.push((e.throughput_sps - m.throughput_sps).abs() / m.throughput_sps);
                    errs_iter.push((e.iter_time_s - m.iter_time_s).abs() / m.iter_time_s);
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Fidelity {
        avg_throughput_err: mean(&errs_thpt),
        avg_iter_time_err: mean(&errs_iter),
        configs: errs_thpt.len(),
    }
}

/// Renders the fidelity result.
#[must_use]
pub fn fidelity_table(f: &Fidelity) -> Table {
    let mut t = Table::new("§8.3: estimate-vs-measured fidelity", &["metric", "value"]);
    t.row(vec!["configurations".into(), f.configs.to_string()]);
    t.row(vec![
        "avg throughput error".into(),
        pct(f.avg_throughput_err),
    ]);
    t.row(vec![
        "avg iteration-time error".into(),
        pct(f.avg_iter_time_err),
    ]);
    t
}

/// The large-scale trace used by Figs. 15–17 (and 20): 1,280-GPU cluster,
/// heavy Philly workload, multi-hour pre-training jobs.
#[must_use]
pub fn large_scale_trace(days: f64, seed: u64) -> (Cluster, Vec<JobSpec>) {
    let cluster = presets::table1_simulated();
    let mut cfg = TraceConfig::new(
        TraceKind::PhillyHeavy,
        days * 86_400.0,
        cluster.total_gpus(),
        pool_mems(&cluster),
    );
    cfg.duration_scale = 50.0;
    cfg.seed = seed;
    let jobs = generate(&cfg);
    (cluster, jobs)
}

/// Fig. 15: the distribution of model sizes in the large-scale workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Row {
    /// Model size bucket, billions of parameters.
    pub params_b: f64,
    /// Jobs in the bucket.
    pub count: usize,
    /// Fraction of the workload.
    pub fraction: f64,
}

/// Computes the Fig. 15 histogram.
#[must_use]
pub fn fig15() -> Vec<Fig15Row> {
    let (_, jobs) = large_scale_trace(7.0, 15);
    let mut buckets: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for j in &jobs {
        *buckets
            .entry((j.model.params_b * 100.0) as u64)
            .or_insert(0) += 1;
    }
    buckets
        .into_iter()
        .map(|(k, count)| Fig15Row {
            params_b: k as f64 / 100.0,
            count,
            fraction: count as f64 / jobs.len() as f64,
        })
        .collect()
}

/// Renders Fig. 15.
#[must_use]
pub fn fig15_table(rows: &[Fig15Row]) -> Table {
    let mut t = Table::new(
        "Fig 15: model-size distribution in the large-scale workload",
        &["size (B params)", "jobs", "fraction"],
    );
    for r in rows {
        t.row(vec![
            format!("{}", r.params_b),
            r.count.to_string(),
            pct(r.fraction),
        ]);
    }
    t
}

/// Figs. 16–17: the five-policy comparison on the 1,280-GPU simulated
/// cluster over a heavy Philly week (one day in `quick` mode).
#[must_use]
pub fn fig16_17(quick: bool) -> ClusterExperiment {
    let days = if quick { 0.5 } else { 7.0 };
    let (cluster, jobs) = large_scale_trace(days, 16);
    run_comparison(
        "Fig 16/17: large-scale simulation (Philly, 1280 GPUs)",
        &cluster,
        &jobs,
        super::comparison_policies(),
        days * 86_400.0 + 3.0 * 86_400.0,
        16,
    )
}

/// Fig. 18: Helios Venus (moderate) and PAI (low) one-day traces on the
/// simulated cluster.
#[must_use]
pub fn fig18(quick: bool) -> Vec<ClusterExperiment> {
    let cluster = presets::table1_simulated();
    let days = if quick { 0.25 } else { 1.0 };
    [
        (TraceKind::HeliosModerate, "Fig 18: Helios Venus (moderate)"),
        (TraceKind::PaiLow, "Fig 18: PAI (low)"),
    ]
    .into_iter()
    .map(|(kind, name)| {
        let mut cfg = TraceConfig::new(
            kind,
            days * 86_400.0,
            cluster.total_gpus(),
            pool_mems(&cluster),
        );
        cfg.duration_scale = 30.0;
        cfg.seed = 18;
        let jobs = generate(&cfg);
        run_comparison(
            name,
            &cluster,
            &jobs,
            super::comparison_policies(),
            days * 86_400.0 + 2.0 * 86_400.0,
            18,
        )
    })
    .collect()
}

/// Renders a Fig. 16 throughput timeline (hourly means) as a table.
#[must_use]
pub fn timeline_table(exp: &ClusterExperiment) -> Table {
    let mut headers: Vec<&str> = vec!["hour"];
    let names: Vec<String> = exp.timelines.iter().map(|(n, _)| n.clone()).collect();
    for n in &names {
        headers.push(n);
    }
    let mut t = Table::new(
        &format!("{} — hourly throughput timeline", exp.name),
        &headers,
    );
    let hours: Vec<f64> = exp
        .timelines
        .first()
        .map(|(_, tl)| tl.iter().map(|&(h, _)| h).collect())
        .unwrap_or_default();
    for (i, h) in hours.iter().enumerate() {
        let mut row = vec![format!("{h}")];
        for (_, tl) in &exp.timelines {
            row.push(tl.get(i).map_or("-".into(), |&(_, v)| f3(v)));
        }
        t.row(row);
    }
    t
}

/// Ensures a pool id lookup helper is exercised (used by examples).
#[must_use]
pub fn pool_of(cluster: &Cluster, gpu_name: &str) -> GpuTypeId {
    cluster.pool_by_gpu_name(gpu_name).unwrap_or(GpuTypeId(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_is_high() {
        let f = fidelity();
        assert!(f.configs > 20);
        // Paper: 3.16% throughput error, 7.31% JCT error. Same regime.
        assert!(
            f.avg_throughput_err < 0.12,
            "thpt err {}",
            f.avg_throughput_err
        );
        assert!(
            f.avg_iter_time_err < 0.12,
            "iter err {}",
            f.avg_iter_time_err
        );
    }

    #[test]
    fn fig15_small_models_dominate() {
        let rows = fig15();
        assert!(rows.len() >= 8, "only {} size buckets", rows.len());
        let small: f64 = rows
            .iter()
            .filter(|r| r.params_b <= 1.3)
            .map(|r| r.fraction)
            .sum();
        let large: f64 = rows
            .iter()
            .filter(|r| r.params_b >= 6.7)
            .map(|r| r.fraction)
            .sum();
        assert!(small > large, "small {small} <= large {large}");
        let total: f64 = rows.iter().map(|r| r.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[ignore = "multi-minute cluster simulation; run via the repro binary"]
    fn fig14_arena_wins() {
        let exp = fig14(true);
        let arena = exp.arena();
        let best_jct = exp.best_baseline(|s| s.avg_jct_s, true);
        assert!(arena.avg_jct_s < best_jct * 1.05);
    }
}
