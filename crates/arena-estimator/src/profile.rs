//! Single-device distributed profiling (§5.1, Fig. 10).
//!
//! For each stage of a Cell, the estimator compiles the stage's
//! computation as it would execute under the DP-only and TP-only plans
//! (distributed-equivalent compilation) and measures it on *one* GPU.
//! Communication operators are never executed — they are priced later
//! from the offline tables. Each per-parallelism profile charges roughly
//! `setup + iters × stage time` of a single GPU to the estimator's meter,
//! which is where the paper's "≈30 s per parallelism, ≈1 min per Cell"
//! budget comes from (§8.2).

use arena_model::ModelGraph;
use arena_perf::noise::NoiseModel;
use arena_perf::{compute, memory, CostParams, HwTarget, ProfilingMeter};

use crate::cell::{Cell, Favor};

/// One stage profiled under one pure parallelism.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Which pure plan was compiled.
    pub mode: Favor,
    /// Measured per-micro-batch computation on one device, seconds.
    pub compute_s: f64,
    /// The per-micro-batch kernel-launch floor (visible in the CUPTI
    /// timeline as inter-kernel gaps); does not shrink when gradient
    /// accumulation reduces the micro-batch.
    pub fixed_compute_s: f64,
    /// Recorded per-GPU memory footprint, bytes.
    pub mem_bytes: f64,
    /// Memory that does not shrink under gradient accumulation
    /// (parameters, optimizer state, input buffers), bytes.
    pub fixed_mem_bytes: f64,
    /// Live-activation memory, proportional to the micro-batch, bytes.
    pub scalable_mem_bytes: f64,
    /// Micro-batch size in samples under this mode.
    pub mb_samples: f64,
    /// Whether the global batch can feed this mode's micro-batch slots.
    pub batch_ok: bool,
    /// Tensor-parallel collective payload per micro-batch (fwd+bwd), bytes.
    pub tp_payload: f64,
    /// Expert-dispatch payload per micro-batch (fwd+bwd), bytes.
    pub dispatch_payload: f64,
    /// Gradient bytes per TP shard (the DP all-reduce payload).
    pub grad_bytes: f64,
}

/// Both pure-parallelism profiles for every stage of a Cell.
#[derive(Debug, Clone)]
pub struct CellProfiles {
    /// `stages[s][0]` is the DP-only profile, `stages[s][1]` TP-only.
    pub stages: Vec<[StageProfile; 2]>,
}

impl arena_runtime::MemSize for CellProfiles {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.stages.len() * std::mem::size_of::<[StageProfile; 2]>()
    }
}

/// Struct-of-arrays view of one Cell's profiles: every field the
/// assembly loop reads, flattened into contiguous buffers indexed
/// `2 * stage + mode` (mode 0 = DP-only, 1 = TP-only).
///
/// The cached [`CellProfiles`] stays array-of-structs (it is the unit of
/// cache accounting and eviction); this view is *filled* from it into
/// reusable scratch buffers so the `2^Ns` assembly touches only dense
/// arrays and allocates nothing once the buffers have grown to the
/// largest stage count seen.
#[derive(Debug, Default)]
pub struct SoaProfiles {
    /// Measured per-micro-batch compute, seconds.
    pub compute_s: Vec<f64>,
    /// Kernel-launch floor that does not shrink under accumulation.
    pub fixed_compute_s: Vec<f64>,
    /// Total per-GPU footprint at the profiled micro-batch, bytes.
    pub mem_bytes: Vec<f64>,
    /// Accumulation-invariant memory, bytes.
    pub fixed_mem_bytes: Vec<f64>,
    /// Live-activation memory at the profiled micro-batch, bytes.
    pub scalable_mem_bytes: Vec<f64>,
    /// Micro-batch size in samples.
    pub mb_samples: Vec<f64>,
    /// Whether the global batch feeds this mode's micro-batch slots.
    pub batch_ok: Vec<bool>,
    /// TP collective payload per micro-batch, bytes.
    pub tp_payload: Vec<f64>,
    /// Expert-dispatch payload per micro-batch, bytes.
    pub dispatch_payload: Vec<f64>,
    /// DP all-reduce payload per TP shard, bytes.
    pub grad_bytes: Vec<f64>,
}

impl SoaProfiles {
    /// Refills every buffer from `profiles`, reusing capacity. After the
    /// buffers have grown to the workload's largest stage count this
    /// performs no heap allocation.
    pub fn fill_from(&mut self, profiles: &CellProfiles) {
        self.compute_s.clear();
        self.fixed_compute_s.clear();
        self.mem_bytes.clear();
        self.fixed_mem_bytes.clear();
        self.scalable_mem_bytes.clear();
        self.mb_samples.clear();
        self.batch_ok.clear();
        self.tp_payload.clear();
        self.dispatch_payload.clear();
        self.grad_bytes.clear();
        for stage in &profiles.stages {
            for pr in stage {
                self.compute_s.push(pr.compute_s);
                self.fixed_compute_s.push(pr.fixed_compute_s);
                self.mem_bytes.push(pr.mem_bytes);
                self.fixed_mem_bytes.push(pr.fixed_mem_bytes);
                self.scalable_mem_bytes.push(pr.scalable_mem_bytes);
                self.mb_samples.push(pr.mb_samples);
                self.batch_ok.push(pr.batch_ok);
                self.tp_payload.push(pr.tp_payload);
                self.dispatch_payload.push(pr.dispatch_payload);
                self.grad_bytes.push(pr.grad_bytes);
            }
        }
    }

    /// Number of flattened `(stage, mode)` slots (`2 × stages`).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.compute_s.len()
    }
}

#[allow(clippy::too_many_arguments)] // One call site; mirrors the profiling request tuple.
fn profile_stage(
    p: &CostParams,
    noise: &NoiseModel,
    graph: &ModelGraph,
    global_batch: usize,
    cell: &Cell,
    stage: usize,
    mode: Favor,
    hw: &HwTarget,
) -> StageProfile {
    let range = cell.partition.ranges[stage].clone();
    let g = cell.partition.gpus[stage];
    let b = 4 * cell.num_stages;
    let (dp, tp) = match mode {
        Favor::Dp => (g, 1),
        Favor::Tp => (1, g),
    };
    let mb = global_batch as f64 / (b * dp) as f64;
    let batch_ok = mb >= 1.0;

    // Distributed-equivalent compilation measures the per-device program.
    let key = format!(
        "profile|{}|{}|{}|{}|{:?}|{}",
        graph.name,
        global_batch,
        cell.label(),
        stage,
        mode,
        hw.name()
    );
    let compute_s =
        compute::stage_compute_time(p, graph, range.clone(), mb.max(1.0), tp, &hw.node.gpu)
            * noise.factor(&key);
    let fixed_compute_s = range.len() as f64 * p.launch_overhead_s;
    let (fixed_mem_bytes, scalable_mem_bytes) =
        memory::stage_memory_parts_dp(p, graph, range.clone(), mb.max(1.0), dp, tp, b);
    let mem_bytes = fixed_mem_bytes + scalable_mem_bytes;

    let ops = &graph.ops[range];
    let tp_payload = if tp > 1 {
        ops.iter().map(|o| o.tp_comm_bytes).sum::<f64>() * mb.max(1.0) * 2.0
    } else {
        0.0
    };
    let dispatch_payload = ops.iter().map(|o| o.dispatch_bytes).sum::<f64>() * mb.max(1.0) * 2.0;
    let grad_bytes = ops
        .iter()
        .map(arena_model::Operator::param_bytes)
        .sum::<f64>()
        / tp as f64;

    StageProfile {
        mode,
        compute_s,
        fixed_compute_s,
        mem_bytes,
        fixed_mem_bytes,
        scalable_mem_bytes,
        mb_samples: mb,
        batch_ok,
        tp_payload,
        dispatch_payload,
        grad_bytes,
    }
}

/// Profiles every stage of `cell` under DP-only and TP-only on one device,
/// charging two per-parallelism trials to `meter`.
#[must_use]
pub fn profile_cell(
    p: &CostParams,
    noise: &NoiseModel,
    meter: &ProfilingMeter,
    graph: &ModelGraph,
    global_batch: usize,
    cell: &Cell,
    hw: &HwTarget,
) -> CellProfiles {
    let mut stages = Vec::with_capacity(cell.num_stages);
    for s in 0..cell.num_stages {
        let dp = profile_stage(p, noise, graph, global_batch, cell, s, Favor::Dp, hw);
        let tp = profile_stage(p, noise, graph, global_batch, cell, s, Favor::Tp, hw);
        stages.push([dp, tp]);
    }
    // One trial per parallelism: compile once, run the measured iterations
    // of every stage back-to-back on the single profiling GPU.
    for mode in 0..2 {
        let measured: f64 = stages.iter().map(|s| s[mode].compute_s).sum();
        meter.charge(
            p.agile_profile_setup_s + p.agile_profile_iters * measured,
            1,
        );
    }
    CellProfiles { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn setup() -> (CostParams, NoiseModel, ModelGraph, HwTarget) {
        (
            CostParams::default(),
            NoiseModel::new(0.03, 5),
            ModelConfig::new(ModelFamily::Bert, 1.3, 256).build(),
            HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4)),
        )
    }

    #[test]
    fn profiles_cover_both_modes_per_stage() {
        let (p, n, g, hw) = setup();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let meter = ProfilingMeter::new();
        let prof = profile_cell(&p, &n, &meter, &g, 256, &cell, &hw);
        assert_eq!(prof.stages.len(), 4);
        for st in &prof.stages {
            assert_eq!(st[0].mode, Favor::Dp);
            assert_eq!(st[1].mode, Favor::Tp);
            assert!(st[0].compute_s > 0.0 && st[1].compute_s > 0.0);
            // TP-only shards the work: per-device compute must be smaller
            // than DP-only's (which runs the full stage on larger mb)...
            assert!(st[0].tp_payload == 0.0);
            assert!(st[1].tp_payload > 0.0);
            // TP shards parameters, so its DP-sync payload is smaller.
            assert!(st[1].grad_bytes < st[0].grad_bytes);
        }
    }

    #[test]
    fn profiling_charges_two_single_gpu_trials() {
        let (p, n, g, hw) = setup();
        let cell = Cell::new(&g, 8, 2).unwrap();
        let meter = ProfilingMeter::new();
        let _ = profile_cell(&p, &n, &meter, &g, 256, &cell, &hw);
        assert_eq!(meter.trials(), 2);
        // Two setups plus measured iterations, all on one GPU.
        assert!(meter.gpu_seconds() >= 2.0 * p.agile_profile_setup_s);
        assert!(meter.gpu_seconds() < 2.0 * p.agile_profile_setup_s + 60.0);
        assert_eq!(meter.gpu_seconds(), meter.wall_seconds());
    }

    #[test]
    fn starved_dp_mode_is_flagged() {
        let (p, n, g, hw) = setup();
        // 64 GPUs, 1 stage: DP-only needs 4x64 = 256 microbatch slots with
        // batch 128 -> starved; TP-only stays fine.
        let cell = Cell::new(&g, 64, 1).unwrap();
        let meter = ProfilingMeter::new();
        let prof = profile_cell(&p, &n, &meter, &g, 128, &cell, &hw);
        assert!(!prof.stages[0][0].batch_ok);
        assert!(prof.stages[0][1].batch_ok);
    }

    #[test]
    fn profile_noise_is_deterministic() {
        let (p, n, g, hw) = setup();
        let cell = Cell::new(&g, 4, 2).unwrap();
        let m1 = ProfilingMeter::new();
        let m2 = ProfilingMeter::new();
        let a = profile_cell(&p, &n, &m1, &g, 256, &cell, &hw);
        let b = profile_cell(&p, &n, &m2, &g, 256, &cell, &hw);
        for (x, y) in a.stages.iter().zip(&b.stages) {
            assert_eq!(x[0].compute_s, y[0].compute_s);
            assert_eq!(x[1].compute_s, y[1].compute_s);
        }
    }
}
