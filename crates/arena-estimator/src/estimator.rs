//! The agile Cell estimator: assembly of profiled parts (§5.1, Fig. 9).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arena_model::ModelGraph;
use arena_parallelism::{PipelinePlan, StageAssignment, StagePlan};
use arena_perf::noise::NoiseModel;
use arena_perf::{CostParams, HwTarget, ProfilingMeter};
use arena_runtime::{MemSection, MemSize};

use crate::cell::{Cell, Favor};
use crate::keys::{CellKey, Interner, ShardedMap, TableKey};
use crate::profile::{profile_cell, CellProfiles};
use crate::tables::{CollectiveKind, CommTables};

/// The estimator's verdict on one Cell.
#[derive(Debug, Clone)]
pub struct CellEstimate {
    /// The best assembled plan (pure DP/TP per stage).
    pub plan: PipelinePlan,
    /// Estimated seconds per iteration for that plan.
    pub iter_time_s: f64,
    /// Estimated throughput in samples per second.
    pub throughput_sps: f64,
    /// Each stage's parallelism favor, used to prune tuning (§5.2).
    pub favors: Vec<Favor>,
    /// Largest estimated per-GPU memory footprint, bytes.
    pub max_mem_bytes: f64,
}

impl arena_runtime::MemSize for CellEstimate {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .plan
                .stages
                .len()
                .saturating_mul(std::mem::size_of::<arena_parallelism::StageAssignment>())
            + self.favors.len() * std::mem::size_of::<Favor>()
    }
}

/// Per-(stage, mode) terms entering the assembly.
#[derive(Debug, Clone, Copy)]
struct ModeTerm {
    /// Steady-state busy time per micro-batch (compute + TP collectives +
    /// expert dispatch).
    busy: f64,
    /// Data-parallel gradient synchronisation time.
    sync: f64,
    /// Per-GPU memory footprint (diagnostics).
    #[allow(dead_code)]
    mem: f64,
    /// Whether this mode is feasible (memory and batch).
    feasible: bool,
}

/// Live hit/miss counters for the estimator's three caches, plus total
/// wall-clock spent computing estimates. All counters are monotonic and
/// thread-safe; reading them never perturbs estimation results.
#[derive(Debug, Default)]
pub struct CacheStats {
    estimate_hits: AtomicU64,
    estimate_misses: AtomicU64,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    table_hits: AtomicU64,
    table_misses: AtomicU64,
    estimate_ns: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// `estimate()` calls answered from the estimate cache.
    pub estimate_hits: u64,
    /// `estimate()` calls that computed a fresh estimate.
    pub estimate_misses: u64,
    /// Stage-profile lookups answered from the profile cache.
    pub profile_hits: u64,
    /// Stage-profile lookups that ran the profiler.
    pub profile_misses: u64,
    /// Communication-table lookups answered from the table cache.
    pub table_hits: u64,
    /// Communication-table lookups that built new tables.
    pub table_misses: u64,
    /// Total wall-clock spent computing fresh estimates, nanoseconds.
    pub estimate_ns: u64,
}

impl CacheStats {
    /// Copies the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            estimate_hits: self.estimate_hits.load(Ordering::Relaxed),
            estimate_misses: self.estimate_misses.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            table_hits: self.table_hits.load(Ordering::Relaxed),
            table_misses: self.table_misses.load(Ordering::Relaxed),
            estimate_ns: self.estimate_ns.load(Ordering::Relaxed),
        }
    }
}

/// The agile Cell estimator.
///
/// Owns the offline communication tables (built lazily per node class),
/// a cache of runtime stage profiles (a job is profiled once per GPU type,
/// §6.1), and a [`ProfilingMeter`] charged for every profile it takes.
///
/// All caches are keyed by precomputed-hash struct keys over interned
/// model/hardware ids and sharded N-way, so concurrent lookups from a
/// parallel candidate fan-out never contend on one lock or re-hash
/// strings. Every cached value is a deterministic function of its key
/// (noise is keyed, not drawn), so concurrent writers are idempotent.
pub struct CellEstimator {
    params: CostParams,
    noise: NoiseModel,
    table_noise: NoiseModel,
    meter: Arc<ProfilingMeter>,
    stats: CacheStats,
    interner: Interner,
    tables: ShardedMap<TableKey, Arc<CommTables>>,
    profiles: ShardedMap<CellKey, Arc<CellProfiles>>,
    estimates: ShardedMap<CellKey, Option<CellEstimate>>,
}

impl std::fmt::Debug for CellEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellEstimator")
            .field("profiled_cells", &self.profiles.len())
            .field("gpu_seconds", &self.meter.gpu_seconds())
            .finish()
    }
}

impl CellEstimator {
    /// Creates an estimator with measurement noise derived from `seed`.
    #[must_use]
    pub fn new(params: CostParams, seed: u64) -> Self {
        let noise = NoiseModel::new(params.noise_sigma, seed ^ 0x5eed_0001);
        let table_noise = NoiseModel::new(params.table_sigma, seed ^ 0x5eed_0002);
        CellEstimator {
            params,
            noise,
            table_noise,
            meter: Arc::new(ProfilingMeter::new()),
            stats: CacheStats::default(),
            interner: Interner::new(),
            tables: ShardedMap::new(),
            profiles: ShardedMap::new(),
            estimates: ShardedMap::new(),
        }
    }

    /// The meter charged by this estimator's profiling activity.
    #[must_use]
    pub fn meter(&self) -> &Arc<ProfilingMeter> {
        &self.meter
    }

    /// The cost constants in use.
    #[must_use]
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Live cache hit/miss counters and estimate timing.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Applies a total byte budget across the three caches (tables ¼,
    /// profiles ½, estimates ¼ — roughly their relative footprints on a
    /// loaded trace), sweeping oldest-first immediately. `None` lifts
    /// all budgets. Eviction never changes estimation results — every
    /// cached value is a pure function of its key — only hit rates.
    pub fn set_mem_budget(&self, total: Option<usize>) {
        self.tables.set_budget(total.map(|t| t / 4));
        self.profiles.set_budget(total.map(|t| t / 2));
        self.estimates.set_budget(total.map(|t| t / 4));
    }

    /// The estimator's memory ledger: accounted bytes, entries, budget
    /// and evictions per cache. Reads only lock-free mirrors (plus one
    /// shard lock per cache for the budget figure).
    #[must_use]
    pub fn mem_report(&self) -> Vec<MemSection> {
        let section = |name: &str, bytes: usize, entries: usize, budget, evictions| MemSection {
            name: name.to_string(),
            bytes,
            entries,
            budget_bytes: budget,
            evictions,
        };
        vec![
            section(
                "estimator.tables",
                self.tables.bytes(),
                self.tables.len(),
                self.tables.budget(),
                self.tables.evictions(),
            ),
            section(
                "estimator.profiles",
                self.profiles.bytes(),
                self.profiles.len(),
                self.profiles.budget(),
                self.profiles.evictions(),
            ),
            section(
                "estimator.estimates",
                self.estimates.bytes(),
                self.estimates.len(),
                self.estimates.budget(),
                self.estimates.evictions(),
            ),
        ]
    }

    /// Accounted cache bytes across all three caches (lock-free).
    #[must_use]
    pub fn mem_bytes_total(&self) -> usize {
        self.tables.bytes() + self.profiles.bytes() + self.estimates.bytes()
    }

    /// The interned struct key identifying one `(model, batch, cell, hw)`
    /// combination in the profile and estimate caches.
    fn cell_key(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> CellKey {
        CellKey::new(
            self.interner.intern(&graph.name),
            global_batch,
            cell.num_gpus,
            cell.num_stages,
            self.interner.intern(hw.name()),
            hw.packed_gpn,
        )
    }

    fn tables_for(&self, hw: &HwTarget, max_group: usize) -> Arc<CommTables> {
        let key = TableKey::new(self.interner.intern(hw.name()), hw.packed_gpn);
        let shard = self.tables.shard(key.hash_value());
        if let Some(t) = shard.read().get(&key) {
            if t.max_group() >= max_group {
                self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
                return t.clone();
            }
        }
        // Build outside any lock — the table is a pure function of the
        // key and seed, so a racing duplicate build is identical and
        // harmless, and no shard lock is ever held across a build. The
        // insert re-checks so the loser of a race adopts the winner's
        // copy; sequentially, misses equal builds exactly.
        let built = Arc::new(CommTables::build(hw, max_group.max(64), &self.table_noise));
        let mut w = shard.write();
        if let Some(t) = w.get(&key) {
            if t.max_group() >= max_group {
                self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
                return t.clone();
            }
        }
        self.stats.table_misses.fetch_add(1, Ordering::Relaxed);
        let delta = w.insert(key, built.clone(), built.mem_bytes());
        drop(w);
        self.tables.apply(delta);
        built
    }

    fn profiles_for(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Arc<CellProfiles> {
        let key = self.cell_key(graph, global_batch, cell, hw);
        let shard = self.profiles.shard(key.hash_value());
        if let Some(p) = shard.read().get(&key) {
            self.stats.profile_hits.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
        // Profile outside any lock — the profile is a pure function of
        // the key and seed, so a racing duplicate is identical and
        // harmless, and concurrent fan-outs over *distinct* cells (the
        // scheduler's case) never serialize on a shared shard. The insert
        // re-checks so the loser of a same-key race adopts the winner's
        // copy; sequentially, misses equal profiler runs exactly.
        let prof = Arc::new(profile_cell(
            &self.params,
            &self.noise,
            &self.meter,
            graph,
            global_batch,
            cell,
            hw,
        ));
        let mut w = shard.write();
        if let Some(p) = w.get(&key) {
            self.stats.profile_hits.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
        self.stats.profile_misses.fetch_add(1, Ordering::Relaxed);
        let delta = w.insert(key, prof.clone(), prof.mem_bytes());
        drop(w);
        self.profiles.apply(delta);
        prof
    }

    /// Estimates a Cell: profiles its stages (cached), assembles the
    /// `2^Ns` grid and returns the best feasible assembled plan.
    ///
    /// Returns `None` when no assembled plan fits in memory and batch —
    /// the Cell is not schedulable.
    ///
    /// # Examples
    ///
    /// ```
    /// use arena_cluster::{GpuSpec, NodeSpec};
    /// use arena_estimator::{Cell, CellEstimator};
    /// use arena_model::zoo::{ModelConfig, ModelFamily};
    /// use arena_perf::{CostParams, HwTarget};
    ///
    /// let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    /// let cell = Cell::new(&graph, 8, 4).unwrap();
    /// let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    /// let estimator = CellEstimator::new(CostParams::default(), 42);
    /// let estimate = estimator.estimate(&graph, 256, &cell, &hw).unwrap();
    /// assert!(estimate.throughput_sps > 0.0);
    /// assert_eq!(estimate.favors.len(), 4);
    /// // Two ~30 s single-GPU profiles per Cell (§8.2).
    /// assert!(estimator.meter().gpu_seconds() < 120.0);
    /// ```
    #[must_use]
    pub fn estimate(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        let key = self.cell_key(graph, global_batch, cell, hw);
        if let Some(e) = self.estimates.get(&key, key.hash_value()) {
            self.stats.estimate_hits.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        // Assembly runs outside any lock: a parallel fan-out estimates
        // *distinct* cells, so duplicated work on a racing key is rare,
        // and every writer computes the same deterministic value. Each
        // call still counts exactly one of hit/miss.
        self.stats.estimate_misses.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let est = self.estimate_uncached(graph, global_batch, cell, hw);
        self.stats.estimate_ns.fetch_add(
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.estimates
            .insert(key, key.hash_value(), est.clone(), est.mem_bytes());
        est
    }

    /// Recomputes the estimate from scratch, skipping (and not updating)
    /// the estimate cache. All noise is keyed deterministically, so this
    /// must return exactly what a cached [`CellEstimator::estimate`]
    /// returns — the property the cache-consistency tests check.
    #[must_use]
    pub fn estimate_bypassing_cache(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        self.estimate_uncached(graph, global_batch, cell, hw)
    }

    fn estimate_uncached(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        let tables = self.tables_for(hw, cell.num_gpus);
        let profiles = self.profiles_for(graph, global_batch, cell, hw);
        let p = &self.params;
        let base_b = 4 * cell.num_stages;
        let budget = hw.node.gpu.mem_bytes() as f64 * p.usable_mem_frac;

        // The estimator mirrors the runtime's gradient-accumulation
        // escalation: derive each accumulation factor's terms from the
        // single profile taken at the GPipe default (compute and payloads
        // scale with the micro-batch; fixed memory does not).
        let mut best_assembly: Option<(Vec<usize>, f64)> = None;
        for accum in [1_usize, 2, 4, 8, 16] {
            let f = accum as f64;
            let b = base_b * accum;
            let terms: Vec<[ModeTerm; 2]> = profiles
                .stages
                .iter()
                .enumerate()
                .map(|(s, prof)| {
                    let g = cell.partition.gpus[s];
                    [0, 1].map(|m| {
                        let pr = &prof[m];
                        let tp_comm = if m == 1 {
                            tables.lookup(CollectiveKind::AllReduce, g, pr.tp_payload / f)
                        } else {
                            0.0
                        };
                        let dispatch =
                            tables.lookup(CollectiveKind::AllToAll, g, pr.dispatch_payload / f);
                        let sync = if m == 0 {
                            tables.lookup(CollectiveKind::AllReduce, g, pr.grad_bytes)
                        } else {
                            0.0
                        };
                        let mem = pr.fixed_mem_bytes + pr.scalable_mem_bytes / f;
                        let compute =
                            pr.fixed_compute_s + (pr.compute_s - pr.fixed_compute_s).max(0.0) / f;
                        ModeTerm {
                            busy: compute + tp_comm + dispatch,
                            sync,
                            mem,
                            feasible: pr.batch_ok && pr.mb_samples / f >= 1.0 && mem <= budget,
                        }
                    })
                })
                .collect();

            // Boundary cost between stage s-1 in mode mp and stage s in
            // mode m, at this accumulation factor.
            let boundary = |s: usize, mp: usize, m: usize| -> f64 {
                let range = &cell.partition.ranges[s];
                let bytes = graph.ops[range.start - 1].out_bytes * global_batch as f64 / b as f64;
                let same_layout =
                    mp == 0 && m == 0 && cell.partition.gpus[s - 1] == cell.partition.gpus[s];
                let factor = if same_layout { 1.0 } else { p.reshard_factor };
                tables.lookup(CollectiveKind::P2p, cell.num_gpus, bytes * factor)
            };

            if let Some((modes, iter)) = assemble_best(&terms, &boundary, b, 1.0 - p.dp_overlap) {
                if best_assembly.as_ref().is_none_or(|(_, cur)| iter < *cur) {
                    best_assembly = Some((modes, iter));
                }
            }
        }
        let (modes, iter_time_s) = best_assembly?;

        let favors: Vec<Favor> = modes
            .iter()
            .map(|&m| if m == 0 { Favor::Dp } else { Favor::Tp })
            .collect();
        let plan = PipelinePlan {
            stages: cell
                .partition
                .ranges
                .iter()
                .zip(&cell.partition.gpus)
                .zip(&modes)
                .map(|((r, &g), &m)| StageAssignment {
                    op_range: r.clone(),
                    plan: if m == 0 {
                        StagePlan::dp_only(g)
                    } else {
                        StagePlan::tp_only(g)
                    },
                })
                .collect(),
        };
        let max_mem_bytes = modes
            .iter()
            .enumerate()
            .map(|(s, &m)| profiles.stages[s][m].mem_bytes)
            .fold(0.0, f64::max);

        Some(CellEstimate {
            plan,
            iter_time_s,
            throughput_sps: global_batch as f64 / iter_time_s,
            favors,
            max_mem_bytes,
        })
    }
}

/// Finds the best assembled plan over the `2^Ns` grid *exactly*, without
/// enumeration, via threshold-bounded chain DP.
///
/// The objective
/// `Σ busy + Σ boundary + (B−1)·max(busy, boundary) + (1−ov)·max sync`
/// couples stages only through the two max terms and adjacent-stage
/// boundary costs. For each candidate pair of thresholds `(M1, M2)` drawn
/// from the realised busy/boundary/sync values, a left-to-right DP picks
/// per-stage modes minimising the separable part subject to
/// `busy ≤ M1`, `boundary ≤ M1` and `sync ≤ M2`; the true objective of
/// each reconstructed assignment is then scored, and the overall minimum
/// is exact because the optimal assignment's own maxima appear among the
/// candidates.
fn assemble_best(
    terms: &[[ModeTerm; 2]],
    boundary: &dyn Fn(usize, usize, usize) -> f64,
    b: usize,
    one_minus_ov: f64,
) -> Option<(Vec<usize>, f64)> {
    let s_count = terms.len();
    if s_count == 0 {
        return None;
    }
    let mut busy_cands: Vec<f64> = terms
        .iter()
        .flatten()
        .filter(|t| t.feasible)
        .map(|t| t.busy)
        .collect();
    // Boundary transfers can bound the steady state too.
    for s in 1..s_count {
        for mp in 0..2 {
            for m in 0..2 {
                busy_cands.push(boundary(s, mp, m));
            }
        }
    }
    let mut sync_cands: Vec<f64> = terms
        .iter()
        .flatten()
        .filter(|t| t.feasible)
        .map(|t| t.sync)
        .collect();
    if busy_cands.is_empty() {
        return None;
    }
    busy_cands.sort_by(f64::total_cmp);
    busy_cands.dedup();
    sync_cands.sort_by(f64::total_cmp);
    sync_cands.dedup();

    let mut best: Option<(Vec<usize>, f64)> = None;
    for &m1 in &busy_cands {
        for &m2 in &sync_cands {
            let Some(modes) = chain_dp(terms, boundary, m1, m2) else {
                continue;
            };
            // True objective of the reconstructed assignment.
            let sum_busy: f64 = modes
                .iter()
                .enumerate()
                .map(|(s, &m)| terms[s][m].busy)
                .sum();
            let sum_bound: f64 = (1..s_count)
                .map(|s| boundary(s, modes[s - 1], modes[s]))
                .sum();
            let max_steady = modes
                .iter()
                .enumerate()
                .map(|(s, &m)| {
                    let bnd = if s == 0 {
                        0.0
                    } else {
                        boundary(s, modes[s - 1], m)
                    };
                    terms[s][m].busy.max(bnd)
                })
                .fold(0.0, f64::max);
            let max_sync = modes
                .iter()
                .enumerate()
                .map(|(s, &m)| terms[s][m].sync)
                .fold(0.0, f64::max);
            let obj =
                sum_busy + sum_bound + (b as f64 - 1.0) * max_steady + one_minus_ov * max_sync;
            if best.as_ref().is_none_or(|(_, cur)| obj < *cur) {
                best = Some((modes, obj));
            }
        }
    }
    best
}

/// Left-to-right DP choosing per-stage modes under busy/sync caps.
fn chain_dp(
    terms: &[[ModeTerm; 2]],
    boundary: &dyn Fn(usize, usize, usize) -> f64,
    max_busy: f64,
    max_sync: f64,
) -> Option<Vec<usize>> {
    const EPS: f64 = 1e-12;
    let n = terms.len();
    let ok = |t: &ModeTerm| t.feasible && t.busy <= max_busy + EPS && t.sync <= max_sync + EPS;

    let mut cost = [[f64::INFINITY; 2]; 1].repeat(n);
    let mut parent = vec![[usize::MAX; 2]; n];
    for m in 0..2 {
        if ok(&terms[0][m]) {
            cost[0][m] = terms[0][m].busy;
        }
    }
    for s in 1..n {
        for m in 0..2 {
            if !ok(&terms[s][m]) {
                continue;
            }
            for mp in 0..2 {
                let bnd = boundary(s, mp, m);
                if bnd > max_busy + EPS {
                    continue; // Transfer would exceed the steady threshold.
                }
                if cost[s - 1][mp].is_finite() {
                    let c = cost[s - 1][mp] + bnd + terms[s][m].busy;
                    if c < cost[s][m] {
                        cost[s][m] = c;
                        parent[s][m] = mp;
                    }
                }
            }
        }
    }
    let last = if cost[n - 1][0] <= cost[n - 1][1] {
        0
    } else {
        1
    };
    if !cost[n - 1][last].is_finite() {
        return None;
    }
    let mut modes = vec![0; n];
    modes[n - 1] = last;
    for s in (1..n).rev() {
        modes[s - 1] = parent[s][modes[s]];
        if modes[s - 1] == usize::MAX {
            return None;
        }
    }
    Some(modes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_parallelism::assembled_plans;
    use arena_perf::GroundTruth;
    use proptest::prelude::*;

    fn a100() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4))
    }

    fn a10() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A10, 2))
    }

    #[test]
    fn estimate_produces_feasible_assembled_plan() {
        let est = CellEstimator::new(CostParams::default(), 3);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let e = est.estimate(&g, 256, &cell, &a100()).unwrap();
        assert!(e.iter_time_s > 0.0);
        assert_eq!(e.favors.len(), 4);
        assert!(e.plan.is_valid_for(&g));
        assert_eq!(e.plan.total_gpus(), 8);
        // The estimated plan is one of the 2^Ns assembled plans.
        let assembled: Vec<String> = assembled_plans(&cell.partition)
            .iter()
            .map(PipelinePlan::label)
            .collect();
        assert!(assembled.contains(&e.plan.label()));
    }

    #[test]
    fn assembly_dp_matches_brute_force() {
        // The threshold DP must pick the same-best plan a brute-force
        // enumeration of the 2^Ns grid does (scored by ground truth-like
        // composition over the same terms).
        let est = CellEstimator::new(CostParams::default(), 9);
        let g = ModelConfig::new(ModelFamily::Moe, 1.3, 512).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();
        let e = est.estimate(&g, 512, &cell, &hw).unwrap();

        // Brute force over the same profiled terms: rebuild terms by
        // estimating each single assembled plan via a fresh estimator is
        // not possible from outside, so instead verify optimality
        // indirectly: the estimate must not be worse than any *measured*
        // assembled plan by more than the noise margin.
        let gt = GroundTruth::noiseless(CostParams::default());
        let best_measured = assembled_plans(&cell.partition)
            .iter()
            .filter_map(|p| gt.measure(&g, 512, p, &hw).ok())
            .map(|perf| perf.iter_time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            e.iter_time_s < best_measured * 1.25,
            "estimate {} vs best measured assembled {}",
            e.iter_time_s,
            best_measured
        );
    }

    #[test]
    fn noiseless_estimate_matches_brute_force_exactly() {
        // With measurement and table noise disabled, the estimator's
        // threshold-DP must return exactly the best assembled plan as
        // priced by the exact cost model (minimised over the same
        // gradient-accumulation factors).
        let params = CostParams {
            noise_sigma: 0.0,
            table_sigma: 0.0,
            ..CostParams::default()
        };
        let est = CellEstimator::new(params.clone(), 99);
        let model = arena_perf::PerfModel::new(params);
        for (fam, size, gb, gpus, stages) in [
            (ModelFamily::Bert, 1.3, 256, 8, 4),
            (ModelFamily::Moe, 1.3, 512, 8, 2),
            (ModelFamily::WideResNet, 1.0, 512, 4, 2),
        ] {
            let g = ModelConfig::new(fam, size, gb).build();
            let hw = a100();
            let cell = Cell::new(&g, gpus, stages).unwrap();
            let Some(e) = est.estimate(&g, gb, &cell, &hw) else {
                panic!("{fam:?} cell infeasible");
            };
            let brute = assembled_plans(&cell.partition)
                .iter()
                .filter_map(|p| model.evaluate(&g, gb, p, &hw).ok())
                .map(|perf| perf.iter_time_s)
                .fold(f64::INFINITY, f64::min);
            let rel = (e.iter_time_s - brute).abs() / brute;
            assert!(
                rel < 1e-9,
                "{fam:?}: estimate {} vs brute force {brute} (rel {rel})",
                e.iter_time_s
            );
        }
    }

    #[test]
    fn estimation_error_is_small_but_nonzero() {
        let params = CostParams::default();
        let est = CellEstimator::new(params.clone(), 17);
        let gt = GroundTruth::new(params, 17);
        let g = ModelConfig::new(ModelFamily::Bert, 2.6, 256).build();
        let cell = Cell::new(&g, 8, 2).unwrap();
        let hw = a100();
        let e = est.estimate(&g, 256, &cell, &hw).unwrap();
        let measured = gt.measure(&g, 256, &e.plan, &hw).unwrap();
        let rel = (e.iter_time_s - measured.iter_time_s).abs() / measured.iter_time_s;
        assert!(rel > 0.0, "estimate is implausibly exact");
        assert!(rel < 0.25, "estimate error {rel} too large");
    }

    #[test]
    fn memory_pressure_flips_favor_to_tp() {
        // BERT-2.6B on 24 GiB A10s: DP-only cannot hold the optimizer
        // state, so the estimator must favor TP (or fail), never emit an
        // infeasible DP plan.
        let est = CellEstimator::new(CostParams::default(), 21);
        let g = ModelConfig::new(ModelFamily::Bert, 2.6, 256).build();
        let cell = Cell::new(&g, 4, 1).unwrap();
        if let Some(e) = est.estimate(&g, 256, &cell, &a10()) {
            assert_eq!(e.favors, vec![Favor::Tp]);
        } // `None` is also acceptable: nothing fits.
    }

    #[test]
    fn hopeless_cell_estimates_none() {
        let est = CellEstimator::new(CostParams::default(), 23);
        let g = ModelConfig::new(ModelFamily::Moe, 27.0, 256).build();
        let cell = Cell::new(&g, 2, 1).unwrap();
        assert!(est.estimate(&g, 256, &cell, &a10()).is_none());
    }

    #[test]
    fn profiling_cost_is_cached_per_cell() {
        let est = CellEstimator::new(CostParams::default(), 29);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();
        let _ = est.estimate(&g, 256, &cell, &hw);
        let after_first = est.meter().gpu_seconds();
        assert!(after_first > 0.0);
        let _ = est.estimate(&g, 256, &cell, &hw);
        assert_eq!(est.meter().gpu_seconds(), after_first);
    }

    #[test]
    fn per_cell_budget_is_about_a_minute() {
        // §8.2: two parallelism profiles per Cell at ~30 s each on one GPU.
        let est = CellEstimator::new(CostParams::default(), 31);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let _ = est.estimate(&g, 256, &cell, &a100());
        let gpu_s = est.meter().gpu_seconds();
        assert!(gpu_s > 40.0 && gpu_s < 120.0, "per-cell cost {gpu_s}s");
    }

    #[test]
    fn cache_stats_count_hits_and_misses_exactly() {
        let est = CellEstimator::new(CostParams::default(), 37);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();

        let s0 = est.stats().snapshot();
        assert_eq!((s0.estimate_hits, s0.estimate_misses), (0, 0));

        let _ = est.estimate(&g, 256, &cell, &hw);
        let s1 = est.stats().snapshot();
        assert_eq!((s1.estimate_hits, s1.estimate_misses), (0, 1));
        assert!(s1.estimate_ns > 0, "misses are timed");
        assert!(s1.profile_misses > 0);
        assert!(s1.table_misses > 0);

        for _ in 0..3 {
            let _ = est.estimate(&g, 256, &cell, &hw);
        }
        let s2 = est.stats().snapshot();
        assert_eq!((s2.estimate_hits, s2.estimate_misses), (3, 1));
        // Cache hits never re-run the assembly, so neither the timer nor
        // the inner profile/table counters move.
        assert_eq!(s2.estimate_ns, s1.estimate_ns);
        assert_eq!(s2.profile_misses, s1.profile_misses);
        assert_eq!(s2.profile_hits, s1.profile_hits);

        // A different Cell is a fresh miss.
        let cell2 = Cell::new(&g, 8, 2).unwrap();
        let _ = est.estimate(&g, 256, &cell2, &hw);
        let s3 = est.stats().snapshot();
        assert_eq!((s3.estimate_hits, s3.estimate_misses), (3, 2));
    }

    #[test]
    fn bypass_skips_estimate_cache_but_reuses_profiles() {
        let est = CellEstimator::new(CostParams::default(), 41);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();

        let _ = est.estimate_bypassing_cache(&g, 256, &cell, &hw);
        let s1 = est.stats().snapshot();
        assert_eq!(
            (s1.estimate_hits, s1.estimate_misses),
            (0, 0),
            "bypass never touches the estimate cache"
        );
        assert!(s1.profile_misses > 0);

        let _ = est.estimate_bypassing_cache(&g, 256, &cell, &hw);
        let s2 = est.stats().snapshot();
        assert_eq!(s2.profile_misses, s1.profile_misses);
        assert!(
            s2.profile_hits > s1.profile_hits,
            "second pass hits profiles"
        );
        assert!(s2.table_hits > s1.table_hits);
    }

    #[test]
    fn mem_report_accounts_live_caches() {
        let est = CellEstimator::new(CostParams::default(), 53);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let _ = est.estimate(&g, 256, &cell, &a100());
        let report = est.mem_report();
        assert_eq!(report.len(), 3);
        for s in &report {
            assert!(s.bytes > 0, "{} holds bytes after an estimate", s.name);
            assert!(s.entries > 0);
            assert_eq!(s.budget_bytes, None);
            assert_eq!(s.evictions, 0);
        }
        assert_eq!(
            est.mem_bytes_total(),
            report.iter().map(|s| s.bytes).sum::<usize>()
        );
    }

    #[test]
    fn tiny_budget_evicts_but_never_changes_results() {
        // An adversarially tiny budget forces constant eviction; every
        // estimate must still be bitwise what a cache-bypassing
        // computation returns, because values are pure functions of keys.
        let est = CellEstimator::new(CostParams::default(), 59);
        est.set_mem_budget(Some(1024));
        let hw = a100();
        let mut evicted_something = false;
        for (fam, size, batch) in [
            (ModelFamily::Bert, 1.3, 256),
            (ModelFamily::Moe, 1.3, 512),
            (ModelFamily::WideResNet, 1.0, 512),
            (ModelFamily::Bert, 2.6, 256),
        ] {
            let g = ModelConfig::new(fam, size, batch).build();
            for (gpus, stages) in [(8, 4), (8, 2), (4, 2), (4, 1)] {
                let Some(cell) = Cell::new(&g, gpus, stages) else {
                    continue;
                };
                let cached = est.estimate(&g, batch, &cell, &hw);
                let bypassed = est.estimate_bypassing_cache(&g, batch, &cell, &hw);
                match (cached, bypassed) {
                    (None, None) => {}
                    (Some(c), Some(b)) => {
                        assert_eq!(c.iter_time_s.to_bits(), b.iter_time_s.to_bits());
                        assert_eq!(c.plan.label(), b.plan.label());
                    }
                    (c, b) => panic!(
                        "feasibility disagrees under budget: {} vs {}",
                        c.is_some(),
                        b.is_some()
                    ),
                }
            }
            evicted_something |= est.mem_report().iter().any(|s| s.evictions > 0);
        }
        assert!(evicted_something, "1 KiB budget must evict");
        // The ledger stays near the (per-shard) budget envelope rather
        // than growing with the workload.
        for s in est.mem_report() {
            assert!(s.budget_bytes.is_some());
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// The estimate cache is transparent: for any feasible Cell the
        /// cached estimate is bit-identical to a cache-bypassing
        /// re-computation (noise is keyed, not drawn from shared state).
        #[test]
        fn cached_equals_bypassed(
            fam_idx in 0_usize..3,
            gpus_pow in 1_u32..4,
            stages_pow in 0_u32..3,
            on_a10 in 0_u32..2,
        ) {
            let (fam, size) = [
                (ModelFamily::Bert, 1.3),
                (ModelFamily::Moe, 1.3),
                (ModelFamily::WideResNet, 1.0),
            ][fam_idx];
            let g = ModelConfig::new(fam, size, 256).build();
            let gpus = 1_usize << gpus_pow;
            let stages = (1_usize << stages_pow).min(gpus);
            let Some(cell) = Cell::new(&g, gpus, stages) else {
                return Ok(());
            };
            let hw = if on_a10 == 1 { a10() } else { a100() };
            let est = CellEstimator::new(CostParams::default(), 43);
            let cached = est.estimate(&g, 256, &cell, &hw);
            let again = est.estimate(&g, 256, &cell, &hw);
            let bypassed = est.estimate_bypassing_cache(&g, 256, &cell, &hw);
            match (cached, again, bypassed) {
                (None, None, None) => {}
                (Some(c), Some(r), Some(b)) => {
                    prop_assert_eq!(c.iter_time_s.to_bits(), r.iter_time_s.to_bits());
                    prop_assert_eq!(c.iter_time_s.to_bits(), b.iter_time_s.to_bits());
                    prop_assert_eq!(c.plan.label(), b.plan.label());
                    prop_assert_eq!(&c.favors, &b.favors);
                }
                (c, r, b) => {
                    return Err(TestCaseError::fail(format!(
                        "feasibility disagrees: cached={} again={} bypassed={}",
                        c.is_some(), r.is_some(), b.is_some()
                    )));
                }
            }
        }
    }
}
