//! The agile Cell estimator: assembly of profiled parts (§5.1, Fig. 9).
//!
//! The uncached pipeline is data-oriented (DESIGN.md §16): profiles are
//! flattened into struct-of-arrays buffers, boundary transfer costs are
//! priced once per accumulation factor instead of inside every chain-DP
//! sweep, memory-infeasible per-stage plans are pruned *before* their
//! collectives are priced, and the whole `2^Ns` assembly runs over
//! reusable thread-local scratch arenas — zero heap allocation per
//! estimate after warmup, except the returned [`CellEstimate`] itself.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arena_model::ModelGraph;
use arena_parallelism::{PipelinePlan, StageAssignment, StagePlan};
use arena_perf::noise::NoiseModel;
use arena_perf::{CostParams, HwTarget, ProfilingMeter};
use arena_runtime::{MemSection, MemSize};

use crate::cell::{Cell, Favor};
use crate::keys::{CellKey, Interner, ShardedMap, TableKey};
use crate::profile::{profile_cell, CellProfiles, SoaProfiles};
use crate::tables::{CollectiveKind, CommTables};

/// The estimator's verdict on one Cell.
#[derive(Debug, Clone)]
pub struct CellEstimate {
    /// The best assembled plan (pure DP/TP per stage).
    pub plan: PipelinePlan,
    /// Estimated seconds per iteration for that plan.
    pub iter_time_s: f64,
    /// Estimated throughput in samples per second.
    pub throughput_sps: f64,
    /// Each stage's parallelism favor, used to prune tuning (§5.2).
    pub favors: Vec<Favor>,
    /// Largest estimated per-GPU memory footprint, bytes.
    pub max_mem_bytes: f64,
}

impl arena_runtime::MemSize for CellEstimate {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .plan
                .stages
                .len()
                .saturating_mul(std::mem::size_of::<arena_parallelism::StageAssignment>())
            + self.favors.len() * std::mem::size_of::<Favor>()
    }
}

/// Reusable scratch arenas for the batched `2^Ns` assembly.
///
/// Per-(stage, mode) vectors are indexed `2 * stage + mode` (mode 0 =
/// DP-only, 1 = TP-only); the boundary table is indexed
/// `4 * stage + 2 * prev_mode + mode` for stages `>= 1`. Buffers are
/// cleared — never shrunk — between estimates, so once each thread has
/// assembled a Cell at the workload's largest stage count the whole
/// uncached path performs no heap allocation besides the returned
/// [`CellEstimate`].
#[derive(Debug, Default)]
struct AssemblyScratch {
    /// Flattened profile fields, refilled once per estimate.
    soa: SoaProfiles,
    /// Steady busy time per micro-batch (compute + TP collectives +
    /// expert dispatch). Slots of pruned modes are never read.
    busy: Vec<f64>,
    /// Data-parallel gradient synchronisation time.
    sync: Vec<f64>,
    /// Whether the (stage, mode) plan survives the pre-assembly memory
    /// and batch pruning.
    feasible: Vec<bool>,
    /// Precomputed boundary transfer costs at the current accumulation
    /// factor.
    boundary: Vec<f64>,
    /// Steady-state threshold candidates (realised busy and boundary
    /// values).
    busy_cands: Vec<f64>,
    /// Sync threshold candidates.
    sync_cands: Vec<f64>,
    /// Chain-DP cost table.
    cost: Vec<f64>,
    /// Chain-DP parent pointers.
    parent: Vec<usize>,
    /// Chain-DP mode reconstruction buffer.
    modes: Vec<usize>,
    /// Best mode assignment across threshold pairs within one
    /// accumulation factor.
    best_modes: Vec<usize>,
    /// Best mode assignment across accumulation factors.
    final_modes: Vec<usize>,
}

thread_local! {
    /// One scratch arena per thread: the worker-pool fan-out assembles
    /// distinct Cells concurrently without sharing (or locking) buffers.
    static SCRATCH: RefCell<AssemblyScratch> = RefCell::new(AssemblyScratch::default());
}

/// Live hit/miss counters for the estimator's three caches, plus total
/// wall-clock spent computing estimates. All counters are monotonic and
/// thread-safe; reading them never perturbs estimation results.
#[derive(Debug, Default)]
pub struct CacheStats {
    estimate_hits: AtomicU64,
    estimate_misses: AtomicU64,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    table_hits: AtomicU64,
    table_misses: AtomicU64,
    estimate_ns: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// `estimate()` calls answered from the estimate cache.
    pub estimate_hits: u64,
    /// `estimate()` calls that computed a fresh estimate.
    pub estimate_misses: u64,
    /// Stage-profile lookups answered from the profile cache.
    pub profile_hits: u64,
    /// Stage-profile lookups that ran the profiler.
    pub profile_misses: u64,
    /// Communication-table lookups answered from the table cache.
    pub table_hits: u64,
    /// Communication-table lookups that built new tables.
    pub table_misses: u64,
    /// Total wall-clock spent computing fresh estimates, nanoseconds.
    pub estimate_ns: u64,
}

impl CacheStats {
    /// Copies the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            estimate_hits: self.estimate_hits.load(Ordering::Relaxed),
            estimate_misses: self.estimate_misses.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
            table_hits: self.table_hits.load(Ordering::Relaxed),
            table_misses: self.table_misses.load(Ordering::Relaxed),
            estimate_ns: self.estimate_ns.load(Ordering::Relaxed),
        }
    }
}

/// The agile Cell estimator.
///
/// Owns the offline communication tables (built lazily per node class),
/// a cache of runtime stage profiles (a job is profiled once per GPU type,
/// §6.1), and a [`ProfilingMeter`] charged for every profile it takes.
///
/// All caches are keyed by precomputed-hash struct keys over interned
/// model/hardware ids and sharded N-way, so concurrent lookups from a
/// parallel candidate fan-out never contend on one lock or re-hash
/// strings. Every cached value is a deterministic function of its key
/// (noise is keyed, not drawn), so concurrent writers are idempotent.
pub struct CellEstimator {
    params: CostParams,
    noise: NoiseModel,
    table_noise: NoiseModel,
    meter: Arc<ProfilingMeter>,
    stats: CacheStats,
    interner: Interner,
    tables: ShardedMap<TableKey, Arc<CommTables>>,
    profiles: ShardedMap<CellKey, Arc<CellProfiles>>,
    estimates: ShardedMap<CellKey, Option<CellEstimate>>,
}

impl std::fmt::Debug for CellEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellEstimator")
            .field("profiled_cells", &self.profiles.len())
            .field("gpu_seconds", &self.meter.gpu_seconds())
            .finish()
    }
}

impl CellEstimator {
    /// Creates an estimator with measurement noise derived from `seed`.
    #[must_use]
    pub fn new(params: CostParams, seed: u64) -> Self {
        let noise = NoiseModel::new(params.noise_sigma, seed ^ 0x5eed_0001);
        let table_noise = NoiseModel::new(params.table_sigma, seed ^ 0x5eed_0002);
        CellEstimator {
            params,
            noise,
            table_noise,
            meter: Arc::new(ProfilingMeter::new()),
            stats: CacheStats::default(),
            interner: Interner::new(),
            tables: ShardedMap::new(),
            profiles: ShardedMap::new(),
            estimates: ShardedMap::new(),
        }
    }

    /// The meter charged by this estimator's profiling activity.
    #[must_use]
    pub fn meter(&self) -> &Arc<ProfilingMeter> {
        &self.meter
    }

    /// The cost constants in use.
    #[must_use]
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Live cache hit/miss counters and estimate timing.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Applies a total byte budget across the three caches (tables ¼,
    /// profiles ½, estimates ¼ — roughly their relative footprints on a
    /// loaded trace), sweeping oldest-first immediately. `None` lifts
    /// all budgets. Eviction never changes estimation results — every
    /// cached value is a pure function of its key — only hit rates.
    pub fn set_mem_budget(&self, total: Option<usize>) {
        self.tables.set_budget(total.map(|t| t / 4));
        self.profiles.set_budget(total.map(|t| t / 2));
        self.estimates.set_budget(total.map(|t| t / 4));
    }

    /// The estimator's memory ledger: accounted bytes, entries, budget
    /// and evictions per cache. Reads only lock-free mirrors (plus one
    /// shard lock per cache for the budget figure).
    #[must_use]
    pub fn mem_report(&self) -> Vec<MemSection> {
        let section = |name: &str, bytes: usize, entries: usize, budget, evictions| MemSection {
            name: name.to_string(),
            bytes,
            entries,
            budget_bytes: budget,
            evictions,
        };
        vec![
            section(
                "estimator.tables",
                self.tables.bytes(),
                self.tables.len(),
                self.tables.budget(),
                self.tables.evictions(),
            ),
            section(
                "estimator.profiles",
                self.profiles.bytes(),
                self.profiles.len(),
                self.profiles.budget(),
                self.profiles.evictions(),
            ),
            section(
                "estimator.estimates",
                self.estimates.bytes(),
                self.estimates.len(),
                self.estimates.budget(),
                self.estimates.evictions(),
            ),
        ]
    }

    /// Accounted cache bytes across all three caches (lock-free).
    #[must_use]
    pub fn mem_bytes_total(&self) -> usize {
        self.tables.bytes() + self.profiles.bytes() + self.estimates.bytes()
    }

    /// The interned struct key identifying one `(model, batch, cell, hw)`
    /// combination in the profile and estimate caches.
    fn cell_key(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> CellKey {
        CellKey::new(
            self.interner.intern(&graph.name),
            global_batch,
            cell.num_gpus,
            cell.num_stages,
            self.interner.intern(hw.name()),
            hw.packed_gpn,
        )
    }

    fn tables_for(&self, hw: &HwTarget, max_group: usize) -> Arc<CommTables> {
        let key = TableKey::new(self.interner.intern(hw.name()), hw.packed_gpn);
        let shard = self.tables.shard(key.hash_value());
        if let Some(t) = shard.read().get(&key) {
            if t.max_group() >= max_group {
                self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
                return t.clone();
            }
        }
        // Build outside any lock — the table is a pure function of the
        // key and seed, so a racing duplicate build is identical and
        // harmless, and no shard lock is ever held across a build. The
        // insert re-checks so the loser of a race adopts the winner's
        // copy; sequentially, misses equal builds exactly.
        let built = Arc::new(CommTables::build(hw, max_group.max(64), &self.table_noise));
        let mut w = shard.write();
        if let Some(t) = w.get(&key) {
            if t.max_group() >= max_group {
                self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
                return t.clone();
            }
        }
        self.stats.table_misses.fetch_add(1, Ordering::Relaxed);
        let delta = w.insert(key, built.clone(), built.mem_bytes());
        drop(w);
        self.tables.apply(delta);
        built
    }

    fn profiles_for(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Arc<CellProfiles> {
        let key = self.cell_key(graph, global_batch, cell, hw);
        let shard = self.profiles.shard(key.hash_value());
        if let Some(p) = shard.read().get(&key) {
            self.stats.profile_hits.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
        // Profile outside any lock — the profile is a pure function of
        // the key and seed, so a racing duplicate is identical and
        // harmless, and concurrent fan-outs over *distinct* cells (the
        // scheduler's case) never serialize on a shared shard. The insert
        // re-checks so the loser of a same-key race adopts the winner's
        // copy; sequentially, misses equal profiler runs exactly.
        let prof = Arc::new(profile_cell(
            &self.params,
            &self.noise,
            &self.meter,
            graph,
            global_batch,
            cell,
            hw,
        ));
        let mut w = shard.write();
        if let Some(p) = w.get(&key) {
            self.stats.profile_hits.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
        self.stats.profile_misses.fetch_add(1, Ordering::Relaxed);
        let delta = w.insert(key, prof.clone(), prof.mem_bytes());
        drop(w);
        self.profiles.apply(delta);
        prof
    }

    /// Estimates a Cell: profiles its stages (cached), assembles the
    /// `2^Ns` grid and returns the best feasible assembled plan.
    ///
    /// Returns `None` when no assembled plan fits in memory and batch —
    /// the Cell is not schedulable.
    ///
    /// # Examples
    ///
    /// ```
    /// use arena_cluster::{GpuSpec, NodeSpec};
    /// use arena_estimator::{Cell, CellEstimator};
    /// use arena_model::zoo::{ModelConfig, ModelFamily};
    /// use arena_perf::{CostParams, HwTarget};
    ///
    /// let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    /// let cell = Cell::new(&graph, 8, 4).unwrap();
    /// let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    /// let estimator = CellEstimator::new(CostParams::default(), 42);
    /// let estimate = estimator.estimate(&graph, 256, &cell, &hw).unwrap();
    /// assert!(estimate.throughput_sps > 0.0);
    /// assert_eq!(estimate.favors.len(), 4);
    /// // Two ~30 s single-GPU profiles per Cell (§8.2).
    /// assert!(estimator.meter().gpu_seconds() < 120.0);
    /// ```
    #[must_use]
    pub fn estimate(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        let key = self.cell_key(graph, global_batch, cell, hw);
        if let Some(e) = self.estimates.get(&key, key.hash_value()) {
            self.stats.estimate_hits.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        // Assembly runs outside any lock: a parallel fan-out estimates
        // *distinct* cells, so duplicated work on a racing key is rare,
        // and every writer computes the same deterministic value. Each
        // call still counts exactly one of hit/miss.
        self.stats.estimate_misses.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let est = self.estimate_uncached(graph, global_batch, cell, hw);
        self.stats.estimate_ns.fetch_add(
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.estimates
            .insert(key, key.hash_value(), est.clone(), est.mem_bytes());
        est
    }

    /// Recomputes the estimate from scratch, skipping (and not updating)
    /// the estimate cache. All noise is keyed deterministically, so this
    /// must return exactly what a cached [`CellEstimator::estimate`]
    /// returns — the property the cache-consistency tests check.
    #[must_use]
    pub fn estimate_bypassing_cache(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        self.estimate_uncached(graph, global_batch, cell, hw)
    }

    fn estimate_uncached(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        let tables = self.tables_for(hw, cell.num_gpus);
        self.estimate_with_tables(&tables, graph, global_batch, cell, hw)
    }

    /// The uncached pipeline minus the table fetch — the batch entry
    /// prices every Cell of one job against a single shared table.
    fn estimate_with_tables(
        &self,
        tables: &CommTables,
        graph: &ModelGraph,
        global_batch: usize,
        cell: &Cell,
        hw: &HwTarget,
    ) -> Option<CellEstimate> {
        let profiles = self.profiles_for(graph, global_batch, cell, hw);
        SCRATCH.with(|scratch| {
            assemble_cell(
                &self.params,
                tables,
                &profiles,
                graph,
                global_batch,
                cell,
                hw,
                &mut scratch.borrow_mut(),
            )
        })
    }

    /// Estimates every Cell generated for one job in one batched pass:
    /// the communication tables are fetched once for the whole batch and
    /// each Cell's assembly reuses the calling thread's scratch arenas.
    ///
    /// Bitwise-identical to calling [`CellEstimator::estimate`] on each
    /// Cell in order — every Cell still counts exactly one estimate hit
    /// or miss, misses are timed, and fresh estimates enter the cache.
    /// Only the table hit/miss counters move once per batch rather than
    /// once per Cell.
    #[must_use]
    pub fn estimate_batch(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        cells: &[Cell],
        hw: &HwTarget,
    ) -> Vec<Option<CellEstimate>> {
        if cells.is_empty() {
            return Vec::new();
        }
        let max_group = cells.iter().map(|c| c.num_gpus).max().unwrap_or(1);
        let tables = self.tables_for(hw, max_group);
        cells
            .iter()
            .map(|cell| {
                let key = self.cell_key(graph, global_batch, cell, hw);
                if let Some(e) = self.estimates.get(&key, key.hash_value()) {
                    self.stats.estimate_hits.fetch_add(1, Ordering::Relaxed);
                    return e;
                }
                self.stats.estimate_misses.fetch_add(1, Ordering::Relaxed);
                let started = std::time::Instant::now();
                let est = self.estimate_with_tables(&tables, graph, global_batch, cell, hw);
                self.stats.estimate_ns.fetch_add(
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                self.estimates
                    .insert(key, key.hash_value(), est.clone(), est.mem_bytes());
                est
            })
            .collect()
    }
}

/// Index of the best batched estimate: highest estimated throughput,
/// exact ties keeping the earliest (generation-order) Cell. `None` slots
/// never select, and a NaN throughput — an upstream estimation bug, not
/// a valid score — ranks below every real value instead of poisoning
/// the comparison, mirroring the scheduler's `score_key` ordering.
#[must_use]
pub fn best_estimate(estimates: &[Option<CellEstimate>]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, e) in estimates.iter().enumerate() {
        let Some(e) = e else { continue };
        if e.throughput_sps.is_nan() {
            continue;
        }
        if best.is_none_or(|(_, cur)| e.throughput_sps > cur) {
            best = Some((i, e.throughput_sps));
        }
    }
    best.map(|(i, _)| i)
}

/// Assembles the best plan over the `2^Ns` grid for one Cell, minimised
/// over the gradient-accumulation factors, entirely on `scr`'s buffers.
///
/// The estimator mirrors the runtime's gradient-accumulation
/// escalation: each accumulation factor's terms derive from the single
/// profile taken at the GPipe default (compute and payloads scale with
/// the micro-batch; fixed memory does not). Memory- or batch-infeasible
/// per-stage plans are pruned before any of their collectives are
/// priced; boundary transfers are priced once per factor (at most two
/// distinct values per boundary) instead of inside every chain-DP
/// sweep.
#[allow(clippy::too_many_arguments)] // One call site; mirrors the estimation request tuple.
fn assemble_cell(
    p: &CostParams,
    tables: &CommTables,
    profiles: &CellProfiles,
    graph: &ModelGraph,
    global_batch: usize,
    cell: &Cell,
    hw: &HwTarget,
    scr: &mut AssemblyScratch,
) -> Option<CellEstimate> {
    let n = cell.num_stages;
    let base_b = 4 * n;
    let budget = hw.node.gpu.mem_bytes() as f64 * p.usable_mem_frac;
    let one_minus_ov = 1.0 - p.dp_overlap;
    scr.soa.fill_from(profiles);
    debug_assert_eq!(scr.soa.slots(), 2 * n);

    let mut best_found = false;
    let mut best_iter = f64::INFINITY;
    scr.final_modes.clear();

    for accum in [1_usize, 2, 4, 8, 16] {
        let f = accum as f64;
        let b = base_b * accum;

        // Terms for this factor, with pre-assembly pruning: an
        // infeasible (stage, mode) slot skips its table lookups entirely
        // and can never enter a threshold candidate set or a DP state.
        scr.busy.clear();
        scr.sync.clear();
        scr.feasible.clear();
        for s in 0..n {
            let g = cell.partition.gpus[s];
            for m in 0..2 {
                let i = 2 * s + m;
                let mem = scr.soa.fixed_mem_bytes[i] + scr.soa.scalable_mem_bytes[i] / f;
                let feasible =
                    scr.soa.batch_ok[i] && scr.soa.mb_samples[i] / f >= 1.0 && mem <= budget;
                scr.feasible.push(feasible);
                if !feasible {
                    scr.busy.push(f64::INFINITY);
                    scr.sync.push(f64::INFINITY);
                    continue;
                }
                let tp_comm = if m == 1 {
                    tables.lookup(CollectiveKind::AllReduce, g, scr.soa.tp_payload[i] / f)
                } else {
                    0.0
                };
                let dispatch =
                    tables.lookup(CollectiveKind::AllToAll, g, scr.soa.dispatch_payload[i] / f);
                let sync = if m == 0 {
                    tables.lookup(CollectiveKind::AllReduce, g, scr.soa.grad_bytes[i])
                } else {
                    0.0
                };
                let compute = scr.soa.fixed_compute_s[i]
                    + (scr.soa.compute_s[i] - scr.soa.fixed_compute_s[i]).max(0.0) / f;
                scr.busy.push(compute + tp_comm + dispatch);
                scr.sync.push(sync);
            }
        }

        // Boundary cost between stage s-1 in mode mp and stage s in mode
        // m at this factor. Only the layout decides the cost, so each
        // boundary needs at most two P2P lookups here — not four per
        // chain-DP sweep.
        scr.boundary.clear();
        scr.boundary.resize(4 * n, 0.0);
        for s in 1..n {
            let range = &cell.partition.ranges[s];
            let bytes = graph.ops[range.start - 1].out_bytes * global_batch as f64 / b as f64;
            let same_gpus = cell.partition.gpus[s - 1] == cell.partition.gpus[s];
            let resharded =
                tables.lookup(CollectiveKind::P2p, cell.num_gpus, bytes * p.reshard_factor);
            let plain = if same_gpus {
                tables.lookup(CollectiveKind::P2p, cell.num_gpus, bytes)
            } else {
                resharded
            };
            for mp in 0..2 {
                for m in 0..2 {
                    let same_layout = mp == 0 && m == 0 && same_gpus;
                    scr.boundary[4 * s + 2 * mp + m] = if same_layout { plain } else { resharded };
                }
            }
        }

        if let Some(iter) = assemble_best(scr, n, b, one_minus_ov) {
            if !best_found || iter < best_iter {
                best_found = true;
                best_iter = iter;
                scr.final_modes.clear();
                scr.final_modes.extend_from_slice(&scr.best_modes);
            }
        }
    }
    if !best_found {
        return None;
    }
    let modes = &scr.final_modes;
    let iter_time_s = best_iter;

    let favors: Vec<Favor> = modes
        .iter()
        .map(|&m| if m == 0 { Favor::Dp } else { Favor::Tp })
        .collect();
    let plan = PipelinePlan {
        stages: cell
            .partition
            .ranges
            .iter()
            .zip(&cell.partition.gpus)
            .zip(modes)
            .map(|((r, &g), &m)| StageAssignment {
                op_range: r.clone(),
                plan: if m == 0 {
                    StagePlan::dp_only(g)
                } else {
                    StagePlan::tp_only(g)
                },
            })
            .collect(),
    };
    let max_mem_bytes = modes
        .iter()
        .enumerate()
        .map(|(s, &m)| scr.soa.mem_bytes[2 * s + m])
        .fold(0.0, f64::max);

    Some(CellEstimate {
        plan,
        iter_time_s,
        throughput_sps: global_batch as f64 / iter_time_s,
        favors,
        max_mem_bytes,
    })
}

/// Finds the best assembled plan over the `2^Ns` grid *exactly*, without
/// enumeration, via threshold-bounded chain DP over `scr`'s buffers.
///
/// The objective
/// `Σ busy + Σ boundary + (B−1)·max(busy, boundary) + (1−ov)·max sync`
/// couples stages only through the two max terms and adjacent-stage
/// boundary costs. For each candidate pair of thresholds `(M1, M2)` drawn
/// from the realised busy/boundary/sync values, a left-to-right DP picks
/// per-stage modes minimising the separable part subject to
/// `busy ≤ M1`, `boundary ≤ M1` and `sync ≤ M2`; the true objective of
/// each reconstructed assignment is then scored, and the overall minimum
/// is exact because the optimal assignment's own maxima appear among the
/// candidates.
///
/// Returns the winning objective and leaves its mode assignment in
/// `scr.best_modes`. Reads `scr.{busy,sync,feasible,boundary}` as filled
/// by [`assemble_cell`] for the current accumulation factor.
fn assemble_best(scr: &mut AssemblyScratch, n: usize, b: usize, one_minus_ov: f64) -> Option<f64> {
    if n == 0 {
        return None;
    }
    scr.busy_cands.clear();
    scr.sync_cands.clear();
    for i in 0..2 * n {
        if scr.feasible[i] {
            scr.busy_cands.push(scr.busy[i]);
            scr.sync_cands.push(scr.sync[i]);
        }
    }
    // Boundary transfers can bound the steady state too.
    for s in 1..n {
        for mp in 0..2 {
            for m in 0..2 {
                scr.busy_cands.push(scr.boundary[4 * s + 2 * mp + m]);
            }
        }
    }
    if scr.busy_cands.is_empty() {
        return None;
    }
    // Unstable sort: total_cmp is a total order, so the sorted sequence
    // (and the dedup below) is identical to a stable sort's — without
    // the stable sort's temporary buffer.
    scr.busy_cands.sort_unstable_by(f64::total_cmp);
    scr.busy_cands.dedup();
    scr.sync_cands.sort_unstable_by(f64::total_cmp);
    scr.sync_cands.dedup();

    let mut best: Option<f64> = None;
    for c1 in 0..scr.busy_cands.len() {
        for c2 in 0..scr.sync_cands.len() {
            let (m1, m2) = (scr.busy_cands[c1], scr.sync_cands[c2]);
            if !chain_dp(scr, n, m1, m2) {
                continue;
            }
            // True objective of the reconstructed assignment.
            let modes = &scr.modes;
            let sum_busy: f64 = modes
                .iter()
                .enumerate()
                .map(|(s, &m)| scr.busy[2 * s + m])
                .sum();
            let sum_bound: f64 = (1..n)
                .map(|s| scr.boundary[4 * s + 2 * modes[s - 1] + modes[s]])
                .sum();
            let max_steady = modes
                .iter()
                .enumerate()
                .map(|(s, &m)| {
                    let bnd = if s == 0 {
                        0.0
                    } else {
                        scr.boundary[4 * s + 2 * modes[s - 1] + m]
                    };
                    scr.busy[2 * s + m].max(bnd)
                })
                .fold(0.0, f64::max);
            let max_sync = modes
                .iter()
                .enumerate()
                .map(|(s, &m)| scr.sync[2 * s + m])
                .fold(0.0, f64::max);
            let obj =
                sum_busy + sum_bound + (b as f64 - 1.0) * max_steady + one_minus_ov * max_sync;
            if best.is_none_or(|cur| obj < cur) {
                best = Some(obj);
                scr.best_modes.clear();
                scr.best_modes.extend_from_slice(&scr.modes);
            }
        }
    }
    best
}

/// Left-to-right DP choosing per-stage modes under busy/sync caps.
///
/// Fills `scr.modes` and returns `true` when a feasible assignment
/// exists; `scr.{cost,parent}` are reset here, never reallocated.
fn chain_dp(scr: &mut AssemblyScratch, n: usize, max_busy: f64, max_sync: f64) -> bool {
    const EPS: f64 = 1e-12;
    let ok = |scr: &AssemblyScratch, i: usize| {
        scr.feasible[i] && scr.busy[i] <= max_busy + EPS && scr.sync[i] <= max_sync + EPS
    };

    scr.cost.clear();
    scr.cost.resize(2 * n, f64::INFINITY);
    scr.parent.clear();
    scr.parent.resize(2 * n, usize::MAX);
    for m in 0..2 {
        if ok(scr, m) {
            scr.cost[m] = scr.busy[m];
        }
    }
    for s in 1..n {
        for m in 0..2 {
            if !ok(scr, 2 * s + m) {
                continue;
            }
            for mp in 0..2 {
                let bnd = scr.boundary[4 * s + 2 * mp + m];
                if bnd > max_busy + EPS {
                    continue; // Transfer would exceed the steady threshold.
                }
                if scr.cost[2 * (s - 1) + mp].is_finite() {
                    let c = scr.cost[2 * (s - 1) + mp] + bnd + scr.busy[2 * s + m];
                    if c < scr.cost[2 * s + m] {
                        scr.cost[2 * s + m] = c;
                        scr.parent[2 * s + m] = mp;
                    }
                }
            }
        }
    }
    let last = if scr.cost[2 * (n - 1)] <= scr.cost[2 * (n - 1) + 1] {
        0
    } else {
        1
    };
    if !scr.cost[2 * (n - 1) + last].is_finite() {
        return false;
    }
    scr.modes.clear();
    scr.modes.resize(n, 0);
    scr.modes[n - 1] = last;
    for s in (1..n).rev() {
        scr.modes[s - 1] = scr.parent[2 * s + scr.modes[s]];
        if scr.modes[s - 1] == usize::MAX {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_parallelism::assembled_plans;
    use arena_perf::GroundTruth;
    use proptest::prelude::*;

    fn a100() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4))
    }

    fn a10() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A10, 2))
    }

    #[test]
    fn estimate_produces_feasible_assembled_plan() {
        let est = CellEstimator::new(CostParams::default(), 3);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let e = est.estimate(&g, 256, &cell, &a100()).unwrap();
        assert!(e.iter_time_s > 0.0);
        assert_eq!(e.favors.len(), 4);
        assert!(e.plan.is_valid_for(&g));
        assert_eq!(e.plan.total_gpus(), 8);
        // The estimated plan is one of the 2^Ns assembled plans.
        let assembled: Vec<String> = assembled_plans(&cell.partition)
            .iter()
            .map(PipelinePlan::label)
            .collect();
        assert!(assembled.contains(&e.plan.label()));
    }

    #[test]
    fn assembly_dp_matches_brute_force() {
        // The threshold DP must pick the same-best plan a brute-force
        // enumeration of the 2^Ns grid does (scored by ground truth-like
        // composition over the same terms).
        let est = CellEstimator::new(CostParams::default(), 9);
        let g = ModelConfig::new(ModelFamily::Moe, 1.3, 512).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();
        let e = est.estimate(&g, 512, &cell, &hw).unwrap();

        // Brute force over the same profiled terms: rebuild terms by
        // estimating each single assembled plan via a fresh estimator is
        // not possible from outside, so instead verify optimality
        // indirectly: the estimate must not be worse than any *measured*
        // assembled plan by more than the noise margin.
        let gt = GroundTruth::noiseless(CostParams::default());
        let best_measured = assembled_plans(&cell.partition)
            .iter()
            .filter_map(|p| gt.measure(&g, 512, p, &hw).ok())
            .map(|perf| perf.iter_time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            e.iter_time_s < best_measured * 1.25,
            "estimate {} vs best measured assembled {}",
            e.iter_time_s,
            best_measured
        );
    }

    #[test]
    fn noiseless_estimate_matches_brute_force_exactly() {
        // With measurement and table noise disabled, the estimator's
        // threshold-DP must return exactly the best assembled plan as
        // priced by the exact cost model (minimised over the same
        // gradient-accumulation factors).
        let params = CostParams {
            noise_sigma: 0.0,
            table_sigma: 0.0,
            ..CostParams::default()
        };
        let est = CellEstimator::new(params.clone(), 99);
        let model = arena_perf::PerfModel::new(params);
        for (fam, size, gb, gpus, stages) in [
            (ModelFamily::Bert, 1.3, 256, 8, 4),
            (ModelFamily::Moe, 1.3, 512, 8, 2),
            (ModelFamily::WideResNet, 1.0, 512, 4, 2),
        ] {
            let g = ModelConfig::new(fam, size, gb).build();
            let hw = a100();
            let cell = Cell::new(&g, gpus, stages).unwrap();
            let Some(e) = est.estimate(&g, gb, &cell, &hw) else {
                panic!("{fam:?} cell infeasible");
            };
            let brute = assembled_plans(&cell.partition)
                .iter()
                .filter_map(|p| model.evaluate(&g, gb, p, &hw).ok())
                .map(|perf| perf.iter_time_s)
                .fold(f64::INFINITY, f64::min);
            let rel = (e.iter_time_s - brute).abs() / brute;
            assert!(
                rel < 1e-9,
                "{fam:?}: estimate {} vs brute force {brute} (rel {rel})",
                e.iter_time_s
            );
        }
    }

    #[test]
    fn estimation_error_is_small_but_nonzero() {
        let params = CostParams::default();
        let est = CellEstimator::new(params.clone(), 17);
        let gt = GroundTruth::new(params, 17);
        let g = ModelConfig::new(ModelFamily::Bert, 2.6, 256).build();
        let cell = Cell::new(&g, 8, 2).unwrap();
        let hw = a100();
        let e = est.estimate(&g, 256, &cell, &hw).unwrap();
        let measured = gt.measure(&g, 256, &e.plan, &hw).unwrap();
        let rel = (e.iter_time_s - measured.iter_time_s).abs() / measured.iter_time_s;
        assert!(rel > 0.0, "estimate is implausibly exact");
        assert!(rel < 0.25, "estimate error {rel} too large");
    }

    #[test]
    fn memory_pressure_flips_favor_to_tp() {
        // BERT-2.6B on 24 GiB A10s: DP-only cannot hold the optimizer
        // state, so the estimator must favor TP (or fail), never emit an
        // infeasible DP plan.
        let est = CellEstimator::new(CostParams::default(), 21);
        let g = ModelConfig::new(ModelFamily::Bert, 2.6, 256).build();
        let cell = Cell::new(&g, 4, 1).unwrap();
        if let Some(e) = est.estimate(&g, 256, &cell, &a10()) {
            assert_eq!(e.favors, vec![Favor::Tp]);
        } // `None` is also acceptable: nothing fits.
    }

    #[test]
    fn hopeless_cell_estimates_none() {
        let est = CellEstimator::new(CostParams::default(), 23);
        let g = ModelConfig::new(ModelFamily::Moe, 27.0, 256).build();
        let cell = Cell::new(&g, 2, 1).unwrap();
        assert!(est.estimate(&g, 256, &cell, &a10()).is_none());
    }

    #[test]
    fn profiling_cost_is_cached_per_cell() {
        let est = CellEstimator::new(CostParams::default(), 29);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();
        let _ = est.estimate(&g, 256, &cell, &hw);
        let after_first = est.meter().gpu_seconds();
        assert!(after_first > 0.0);
        let _ = est.estimate(&g, 256, &cell, &hw);
        assert_eq!(est.meter().gpu_seconds(), after_first);
    }

    #[test]
    fn per_cell_budget_is_about_a_minute() {
        // §8.2: two parallelism profiles per Cell at ~30 s each on one GPU.
        let est = CellEstimator::new(CostParams::default(), 31);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let _ = est.estimate(&g, 256, &cell, &a100());
        let gpu_s = est.meter().gpu_seconds();
        assert!(gpu_s > 40.0 && gpu_s < 120.0, "per-cell cost {gpu_s}s");
    }

    #[test]
    fn cache_stats_count_hits_and_misses_exactly() {
        let est = CellEstimator::new(CostParams::default(), 37);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();

        let s0 = est.stats().snapshot();
        assert_eq!((s0.estimate_hits, s0.estimate_misses), (0, 0));

        let _ = est.estimate(&g, 256, &cell, &hw);
        let s1 = est.stats().snapshot();
        assert_eq!((s1.estimate_hits, s1.estimate_misses), (0, 1));
        assert!(s1.estimate_ns > 0, "misses are timed");
        assert!(s1.profile_misses > 0);
        assert!(s1.table_misses > 0);

        for _ in 0..3 {
            let _ = est.estimate(&g, 256, &cell, &hw);
        }
        let s2 = est.stats().snapshot();
        assert_eq!((s2.estimate_hits, s2.estimate_misses), (3, 1));
        // Cache hits never re-run the assembly, so neither the timer nor
        // the inner profile/table counters move.
        assert_eq!(s2.estimate_ns, s1.estimate_ns);
        assert_eq!(s2.profile_misses, s1.profile_misses);
        assert_eq!(s2.profile_hits, s1.profile_hits);

        // A different Cell is a fresh miss.
        let cell2 = Cell::new(&g, 8, 2).unwrap();
        let _ = est.estimate(&g, 256, &cell2, &hw);
        let s3 = est.stats().snapshot();
        assert_eq!((s3.estimate_hits, s3.estimate_misses), (3, 2));
    }

    #[test]
    fn bypass_skips_estimate_cache_but_reuses_profiles() {
        let est = CellEstimator::new(CostParams::default(), 41);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let hw = a100();

        let _ = est.estimate_bypassing_cache(&g, 256, &cell, &hw);
        let s1 = est.stats().snapshot();
        assert_eq!(
            (s1.estimate_hits, s1.estimate_misses),
            (0, 0),
            "bypass never touches the estimate cache"
        );
        assert!(s1.profile_misses > 0);

        let _ = est.estimate_bypassing_cache(&g, 256, &cell, &hw);
        let s2 = est.stats().snapshot();
        assert_eq!(s2.profile_misses, s1.profile_misses);
        assert!(
            s2.profile_hits > s1.profile_hits,
            "second pass hits profiles"
        );
        assert!(s2.table_hits > s1.table_hits);
    }

    #[test]
    fn mem_report_accounts_live_caches() {
        let est = CellEstimator::new(CostParams::default(), 53);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let cell = Cell::new(&g, 8, 4).unwrap();
        let _ = est.estimate(&g, 256, &cell, &a100());
        let report = est.mem_report();
        assert_eq!(report.len(), 3);
        for s in &report {
            assert!(s.bytes > 0, "{} holds bytes after an estimate", s.name);
            assert!(s.entries > 0);
            assert_eq!(s.budget_bytes, None);
            assert_eq!(s.evictions, 0);
        }
        assert_eq!(
            est.mem_bytes_total(),
            report.iter().map(|s| s.bytes).sum::<usize>()
        );
    }

    #[test]
    fn tiny_budget_evicts_but_never_changes_results() {
        // An adversarially tiny budget forces constant eviction; every
        // estimate must still be bitwise what a cache-bypassing
        // computation returns, because values are pure functions of keys.
        let est = CellEstimator::new(CostParams::default(), 59);
        est.set_mem_budget(Some(1024));
        let hw = a100();
        let mut evicted_something = false;
        for (fam, size, batch) in [
            (ModelFamily::Bert, 1.3, 256),
            (ModelFamily::Moe, 1.3, 512),
            (ModelFamily::WideResNet, 1.0, 512),
            (ModelFamily::Bert, 2.6, 256),
        ] {
            let g = ModelConfig::new(fam, size, batch).build();
            for (gpus, stages) in [(8, 4), (8, 2), (4, 2), (4, 1)] {
                let Some(cell) = Cell::new(&g, gpus, stages) else {
                    continue;
                };
                let cached = est.estimate(&g, batch, &cell, &hw);
                let bypassed = est.estimate_bypassing_cache(&g, batch, &cell, &hw);
                match (cached, bypassed) {
                    (None, None) => {}
                    (Some(c), Some(b)) => {
                        assert_eq!(c.iter_time_s.to_bits(), b.iter_time_s.to_bits());
                        assert_eq!(c.plan.label(), b.plan.label());
                    }
                    (c, b) => panic!(
                        "feasibility disagrees under budget: {} vs {}",
                        c.is_some(),
                        b.is_some()
                    ),
                }
            }
            evicted_something |= est.mem_report().iter().any(|s| s.evictions > 0);
        }
        assert!(evicted_something, "1 KiB budget must evict");
        // The ledger stays near the (per-shard) budget envelope rather
        // than growing with the workload.
        for s in est.mem_report() {
            assert!(s.budget_bytes.is_some());
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// The estimate cache is transparent: for any feasible Cell the
        /// cached estimate is bit-identical to a cache-bypassing
        /// re-computation (noise is keyed, not drawn from shared state).
        #[test]
        fn cached_equals_bypassed(
            fam_idx in 0_usize..3,
            gpus_pow in 1_u32..4,
            stages_pow in 0_u32..3,
            on_a10 in 0_u32..2,
        ) {
            let (fam, size) = [
                (ModelFamily::Bert, 1.3),
                (ModelFamily::Moe, 1.3),
                (ModelFamily::WideResNet, 1.0),
            ][fam_idx];
            let g = ModelConfig::new(fam, size, 256).build();
            let gpus = 1_usize << gpus_pow;
            let stages = (1_usize << stages_pow).min(gpus);
            let Some(cell) = Cell::new(&g, gpus, stages) else {
                return Ok(());
            };
            let hw = if on_a10 == 1 { a10() } else { a100() };
            let est = CellEstimator::new(CostParams::default(), 43);
            let cached = est.estimate(&g, 256, &cell, &hw);
            let again = est.estimate(&g, 256, &cell, &hw);
            let bypassed = est.estimate_bypassing_cache(&g, 256, &cell, &hw);
            match (cached, again, bypassed) {
                (None, None, None) => {}
                (Some(c), Some(r), Some(b)) => {
                    prop_assert_eq!(c.iter_time_s.to_bits(), r.iter_time_s.to_bits());
                    prop_assert_eq!(c.iter_time_s.to_bits(), b.iter_time_s.to_bits());
                    prop_assert_eq!(c.plan.label(), b.plan.label());
                    prop_assert_eq!(&c.favors, &b.favors);
                }
                (c, r, b) => {
                    return Err(TestCaseError::fail(format!(
                        "feasibility disagrees: cached={} again={} bypassed={}",
                        c.is_some(), r.is_some(), b.is_some()
                    )));
                }
            }
        }

        /// The batch seam is transparent: for any job/pool shape,
        /// `estimate_batch` over the generated Cell ladder is bitwise
        /// identical to per-call `estimate` *and* to cache-bypassing
        /// recomputation, on cold and warm caches alike.
        #[test]
        fn batch_equals_per_call(
            fam_idx in 0_usize..3,
            gpus_pow in 1_u32..5,
            batch_pow in 7_u32..9,
            on_a10 in 0_u32..2,
        ) {
            let (fam, size) = [
                (ModelFamily::Bert, 1.3),
                (ModelFamily::Moe, 1.3),
                (ModelFamily::WideResNet, 1.0),
            ][fam_idx];
            let global_batch = 1_usize << batch_pow;
            let g = ModelConfig::new(fam, size, global_batch).build();
            let gpus = 1_usize << gpus_pow;
            let hw = if on_a10 == 1 { a10() } else { a100() };
            let cells = Cell::generate(&g, gpus);
            prop_assume!(!cells.is_empty());

            // Same seed, separate caches: the batch estimator runs cold
            // while the reference estimator prices each cell alone.
            let batched = CellEstimator::new(CostParams::default(), 43);
            let reference = CellEstimator::new(CostParams::default(), 43);
            let cold = batched.estimate_batch(&g, global_batch, &cells, &hw);
            prop_assert_eq!(cold.len(), cells.len());
            let warm = batched.estimate_batch(&g, global_batch, &cells, &hw);
            for (i, cell) in cells.iter().enumerate() {
                let one = reference.estimate(&g, global_batch, cell, &hw);
                let bypassed = reference.estimate_bypassing_cache(&g, global_batch, cell, &hw);
                match (&cold[i], &warm[i], one, bypassed) {
                    (None, None, None, None) => {}
                    (Some(c), Some(w), Some(o), Some(b)) => {
                        for other in [w, &o, &b] {
                            prop_assert_eq!(c.iter_time_s.to_bits(), other.iter_time_s.to_bits());
                            prop_assert_eq!(
                                c.throughput_sps.to_bits(),
                                other.throughput_sps.to_bits()
                            );
                            prop_assert_eq!(
                                c.max_mem_bytes.to_bits(),
                                other.max_mem_bytes.to_bits()
                            );
                            prop_assert_eq!(c.plan.label(), other.plan.label());
                            prop_assert_eq!(&c.favors, &other.favors);
                        }
                    }
                    (c, w, o, b) => {
                        return Err(TestCaseError::fail(format!(
                            "feasibility disagrees for cell {i}: batch_cold={} \
                             batch_warm={} per_call={} bypassed={}",
                            c.is_some(), w.is_some(), o.is_some(), b.is_some()
                        )));
                    }
                }
            }
        }
    }

    #[test]
    fn best_estimate_skips_nan_and_keeps_first_strict_maximum() {
        let mk = |tp: f64| {
            Some(CellEstimate {
                plan: PipelinePlan { stages: Vec::new() },
                iter_time_s: 1.0,
                throughput_sps: tp,
                favors: Vec::new(),
                max_mem_bytes: 0.0,
            })
        };
        // NaN is never selectable — even in first position, where the
        // old per-cell loop's `>` comparison let it stick forever.
        assert_eq!(
            best_estimate(&[mk(f64::NAN), mk(2.0), None, mk(3.0), mk(3.0)]),
            Some(3),
            "ties keep the earliest winner, NaN and None are skipped"
        );
        assert_eq!(best_estimate(&[mk(f64::NAN), mk(f64::NAN)]), None);
        assert_eq!(best_estimate(&[None, None]), None);
        assert_eq!(best_estimate(&[]), None);
        // -inf is a real (terrible) value, so it can still win alone.
        assert_eq!(best_estimate(&[None, mk(f64::NEG_INFINITY)]), Some(1));
    }
}
