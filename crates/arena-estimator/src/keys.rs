//! Precomputed-hash cache keys and sharded maps for the estimator.
//!
//! The estimator's caches sit on the scheduler's hot path: a loaded
//! round prices thousands of `(job, allocation, stages)` candidates, and
//! the parallel candidate fan-out hits the caches from several threads
//! at once. Three ingredients keep lookups cheap and contention-free:
//!
//! * **Interned identifiers** — model and hardware names become dense
//!   `u32` ids once, so keys never allocate or compare strings.
//! * **Precomputed hashes** — every key carries an FNV-mixed `u64`
//!   computed at construction; `Hash` just emits it and the maps use an
//!   identity hasher, so probing never re-hashes fields.
//! * **Sharding** — each map is split into [`SHARDS`] sub-maps behind
//!   independent `RwLock`s, selected by the key hash's top bits (the
//!   bottom bits index hash buckets *within* a shard), so concurrent
//!   readers of different keys never touch the same lock.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use parking_lot::RwLock;

/// Shard count for the sharded maps (a power of two).
pub(crate) const SHARDS: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Interns strings to dense `u32` ids. Lookup of a known string takes a
/// read lock only.
///
/// Public (re-exported at the crate root) so other crates on hot paths —
/// e.g. the simulator's plan-database key — can reuse it instead of
/// hashing freshly allocated strings.
#[derive(Debug, Default)]
pub struct Interner {
    map: RwLock<HashMap<String, u32>>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// The id for `s`, allocating one on first sight.
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(&id) = self.map.read().get(s) {
            return id;
        }
        let mut w = self.map.write();
        let next = u32::try_from(w.len()).expect("interner overflow");
        *w.entry(s.to_string()).or_insert(next)
    }
}

/// Identity for a `(model, batch, cell, hardware)` combination — the key
/// of both the stage-profile and the estimate cache (their inputs are
/// identical). `Cell` identity reduces to `(num_gpus, num_stages)`
/// because stage partitioning is a pure function of those and the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CellKey {
    model: u32,
    batch: usize,
    gpus: usize,
    stages: usize,
    hw: u32,
    gpn: usize,
    hash: u64,
}

impl CellKey {
    pub(crate) fn new(
        model: u32,
        batch: usize,
        gpus: usize,
        stages: usize,
        hw: u32,
        gpn: usize,
    ) -> Self {
        let mut h = FNV_OFFSET;
        for v in [
            u64::from(model),
            batch as u64,
            gpus as u64,
            stages as u64,
            u64::from(hw),
            gpn as u64,
        ] {
            h = mix(h, v);
        }
        CellKey {
            model,
            batch,
            gpus,
            stages,
            hw,
            gpn,
            hash: h,
        }
    }

    pub(crate) fn hash_value(&self) -> u64 {
        self.hash
    }
}

impl Hash for CellKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Identity of a communication-table build: hardware class and packed
/// GPUs-per-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableKey {
    hw: u32,
    gpn: usize,
    hash: u64,
}

impl TableKey {
    pub(crate) fn new(hw: u32, gpn: usize) -> Self {
        let hash = mix(mix(FNV_OFFSET, u64::from(hw)), gpn as u64);
        TableKey { hw, gpn, hash }
    }

    pub(crate) fn hash_value(&self) -> u64 {
        self.hash
    }
}

impl Hash for TableKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Pass-through hasher for keys that carry a precomputed hash.
#[derive(Debug, Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("prehashed keys emit a single u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A `HashMap` keyed by prehashed keys, probing on the stored hash.
pub(crate) type PrehashedMap<K, V> = HashMap<K, V, BuildHasherDefault<IdentityHasher>>;

/// An N-way sharded map: the key hash's **top** bits select the shard
/// (each behind its own `RwLock`), leaving the bottom bits — which the
/// inner map's buckets use — uncorrelated with shard choice.
pub(crate) struct ShardedMap<K, V> {
    shards: Vec<RwLock<PrehashedMap<K, V>>>,
}

impl<K: Copy + Eq + Hash, V: Clone> ShardedMap<K, V> {
    pub(crate) fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(PrehashedMap::default()))
                .collect(),
        }
    }

    /// The shard lock a hash maps to; callers do hit/miss accounting
    /// under it.
    pub(crate) fn shard(&self, hash: u64) -> &RwLock<PrehashedMap<K, V>> {
        let idx = (hash >> (64 - SHARDS.trailing_zeros())) as usize;
        &self.shards[idx]
    }

    /// Clones the value under `key`, if present (read lock only).
    pub(crate) fn get(&self, key: &K, hash: u64) -> Option<V> {
        self.shard(hash).read().get(key).cloned()
    }

    /// Inserts (last writer wins — all writers of a key compute the same
    /// deterministic value).
    pub(crate) fn insert(&self, key: K, hash: u64, value: V) {
        self.shard(hash).write().insert(key, value);
    }

    /// Total entries across shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let i = Interner::new();
        let a = i.intern("bert");
        let b = i.intern("moe");
        assert_ne!(a, b);
        assert_eq!(i.intern("bert"), a);
        assert_eq!(i.intern("moe"), b);
    }

    #[test]
    fn distinct_fields_give_distinct_keys() {
        let base = CellKey::new(0, 256, 8, 4, 0, 4);
        for other in [
            CellKey::new(1, 256, 8, 4, 0, 4),
            CellKey::new(0, 512, 8, 4, 0, 4),
            CellKey::new(0, 256, 4, 4, 0, 4),
            CellKey::new(0, 256, 8, 2, 0, 4),
            CellKey::new(0, 256, 8, 4, 1, 4),
            CellKey::new(0, 256, 8, 4, 0, 2),
        ] {
            assert_ne!(base, other);
        }
        assert_eq!(base, CellKey::new(0, 256, 8, 4, 0, 4));
    }

    #[test]
    fn sharded_map_round_trips_and_spreads() {
        let m: ShardedMap<CellKey, usize> = ShardedMap::new();
        let keys: Vec<CellKey> = (0..200)
            .map(|i| CellKey::new(i % 5, 256, 1 << (i % 6), 1 << (i % 3), i % 3, 4))
            .collect();
        for (n, k) in keys.iter().enumerate() {
            m.insert(*k, k.hash_value(), n);
        }
        let distinct: std::collections::HashSet<CellKey> = keys.iter().copied().collect();
        assert_eq!(m.len(), distinct.len());
        // Hashes must actually spread across shards.
        let used: std::collections::HashSet<usize> = keys
            .iter()
            .map(|k| (k.hash_value() >> (64 - SHARDS.trailing_zeros())) as usize)
            .collect();
        assert!(used.len() > SHARDS / 2, "only {} shards used", used.len());
        for (n, k) in keys.iter().enumerate().rev() {
            // Last writer wins per key; the final loop wrote the highest n.
            let got = m.get(k, k.hash_value()).unwrap();
            let last = keys.iter().rposition(|k2| k2 == k).unwrap();
            assert_eq!(got, last, "key {n} resolved wrong slot");
        }
    }
}
