//! Precomputed-hash cache keys and sharded maps for the estimator.
//!
//! The estimator's caches sit on the scheduler's hot path: a loaded
//! round prices thousands of `(job, allocation, stages)` candidates, and
//! the parallel candidate fan-out hits the caches from several threads
//! at once. Three ingredients keep lookups cheap and contention-free:
//!
//! * **Interned identifiers** — model and hardware names become dense
//!   `u32` ids once, so keys never allocate or compare strings.
//! * **Precomputed hashes** — every key carries an FNV-mixed `u64`
//!   computed at construction; `Hash` just emits it and the maps use an
//!   identity hasher, so probing never re-hashes fields.
//! * **Sharding** — each map is split into [`SHARDS`] sub-maps behind
//!   independent `RwLock`s, selected by the key hash's top bits (the
//!   bottom bits index hash buckets *within* a shard), so concurrent
//!   readers of different keys never touch the same lock.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::RwLock;

/// Shard count for the sharded maps (a power of two).
pub(crate) const SHARDS: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Interns strings to dense `u32` ids. Lookup of a known string takes a
/// read lock only.
///
/// Public (re-exported at the crate root) so other crates on hot paths —
/// e.g. the simulator's plan-database key — can reuse it instead of
/// hashing freshly allocated strings.
#[derive(Debug, Default)]
pub struct Interner {
    map: RwLock<HashMap<String, u32>>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// The id for `s`, allocating one on first sight.
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(&id) = self.map.read().get(s) {
            return id;
        }
        let mut w = self.map.write();
        let next = u32::try_from(w.len()).expect("interner overflow");
        *w.entry(s.to_string()).or_insert(next)
    }
}

/// Identity for a `(model, batch, cell, hardware)` combination — the key
/// of both the stage-profile and the estimate cache (their inputs are
/// identical). `Cell` identity reduces to `(num_gpus, num_stages)`
/// because stage partitioning is a pure function of those and the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CellKey {
    model: u32,
    batch: usize,
    gpus: usize,
    stages: usize,
    hw: u32,
    gpn: usize,
    hash: u64,
}

impl CellKey {
    pub(crate) fn new(
        model: u32,
        batch: usize,
        gpus: usize,
        stages: usize,
        hw: u32,
        gpn: usize,
    ) -> Self {
        let mut h = FNV_OFFSET;
        for v in [
            u64::from(model),
            batch as u64,
            gpus as u64,
            stages as u64,
            u64::from(hw),
            gpn as u64,
        ] {
            h = mix(h, v);
        }
        CellKey {
            model,
            batch,
            gpus,
            stages,
            hw,
            gpn,
            hash: h,
        }
    }

    pub(crate) fn hash_value(&self) -> u64 {
        self.hash
    }
}

impl Hash for CellKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Identity of a communication-table build: hardware class and packed
/// GPUs-per-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableKey {
    hw: u32,
    gpn: usize,
    hash: u64,
}

impl TableKey {
    pub(crate) fn new(hw: u32, gpn: usize) -> Self {
        let hash = mix(mix(FNV_OFFSET, u64::from(hw)), gpn as u64);
        TableKey { hw, gpn, hash }
    }

    pub(crate) fn hash_value(&self) -> u64 {
        self.hash
    }
}

impl Hash for TableKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Pass-through hasher for keys that carry a precomputed hash.
#[derive(Debug, Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("prehashed keys emit a single u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A `HashMap` keyed by prehashed keys, probing on the stored hash.
pub(crate) type PrehashedMap<K, V> = HashMap<K, V, BuildHasherDefault<IdentityHasher>>;

/// Fixed per-entry overhead charged on top of the caller-supplied value
/// cost: hash slot, stored cost and order-clock entry.
const ENTRY_OVERHEAD: usize = 48;

/// Byte-delta and eviction count produced by one budgeted insert; the
/// owning [`ShardedMap`] folds it into its lock-free totals.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardDelta {
    bytes_added: usize,
    bytes_removed: usize,
    evicted: u64,
}

/// One shard's state: the prehashed map (values stored with their byte
/// cost), an insertion-order eviction clock and this shard's slice of
/// the byte budget. Everything lives under one `RwLock`, so the clock
/// order — and therefore eviction — is the lock-serialised insertion
/// order, never hash order.
pub(crate) struct ShardState<K, V> {
    map: PrehashedMap<K, (V, usize)>,
    order: VecDeque<K>,
    bytes: usize,
    budget: Option<usize>,
    evictions: u64,
}

impl<K: Copy + Eq + Hash, V: Clone> ShardState<K, V> {
    fn new() -> Self {
        ShardState {
            map: PrehashedMap::default(),
            order: VecDeque::new(),
            bytes: 0,
            budget: None,
            evictions: 0,
        }
    }

    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Inserts `value` at `cost` bytes, then evicts oldest-first until
    /// back under this shard's budget. The just-inserted key survives
    /// its own sweep so an oversized entry still caches once.
    pub(crate) fn insert(&mut self, key: K, value: V, cost: usize) -> ShardDelta {
        let cost = cost + ENTRY_OVERHEAD;
        let mut delta = ShardDelta::default();
        if let Some((_, old_cost)) = self.map.insert(key, (value, cost)) {
            delta.bytes_removed += old_cost;
        } else {
            self.order.push_back(key);
        }
        delta.bytes_added += cost;
        self.bytes = self.bytes + cost - delta.bytes_removed;
        if let Some(budget) = self.budget {
            while self.bytes > budget && self.order.len() > 1 {
                let oldest = self.order.pop_front().expect("non-empty clock");
                if oldest == key {
                    self.order.push_back(oldest);
                    if self.order.len() == 1 {
                        break;
                    }
                    continue;
                }
                let (_, c) = self.map.remove(&oldest).expect("clock tracks live keys");
                self.bytes -= c;
                self.evictions += 1;
                delta.bytes_removed += c;
                delta.evicted += 1;
            }
        }
        delta
    }

    fn set_budget(&mut self, budget: Option<usize>) -> ShardDelta {
        self.budget = budget;
        let mut delta = ShardDelta::default();
        if let Some(b) = budget {
            while self.bytes > b && self.order.len() > 1 {
                let oldest = self.order.pop_front().expect("non-empty clock");
                let (_, c) = self.map.remove(&oldest).expect("clock tracks live keys");
                self.bytes -= c;
                self.evictions += 1;
                delta.bytes_removed += c;
                delta.evicted += 1;
            }
        }
        delta
    }
}

/// An N-way sharded map: the key hash's **top** bits select the shard
/// (each behind its own `RwLock`), leaving the bottom bits — which the
/// inner map's buckets use — uncorrelated with shard choice.
///
/// Each shard carries `budget / SHARDS` bytes of any configured budget
/// and evicts oldest-first within the shard. Totals are mirrored into
/// relaxed atomics so memory gauges read them without touching any
/// shard lock.
pub(crate) struct ShardedMap<K, V> {
    shards: Vec<RwLock<ShardState<K, V>>>,
    total_bytes: AtomicUsize,
    total_evictions: AtomicU64,
}

impl<K: Copy + Eq + Hash, V: Clone> ShardedMap<K, V> {
    pub(crate) fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(ShardState::new()))
                .collect(),
            total_bytes: AtomicUsize::new(0),
            total_evictions: AtomicU64::new(0),
        }
    }

    /// The shard lock a hash maps to; callers do hit/miss accounting
    /// under it.
    pub(crate) fn shard(&self, hash: u64) -> &RwLock<ShardState<K, V>> {
        let idx = (hash >> (64 - SHARDS.trailing_zeros())) as usize;
        &self.shards[idx]
    }

    /// Folds one insert's byte/eviction delta into the lock-free
    /// totals. Callers inserting through a directly-held shard lock
    /// must call this after releasing it.
    pub(crate) fn apply(&self, delta: ShardDelta) {
        self.total_bytes
            .fetch_add(delta.bytes_added, Ordering::Relaxed);
        self.total_bytes
            .fetch_sub(delta.bytes_removed, Ordering::Relaxed);
        self.total_evictions
            .fetch_add(delta.evicted, Ordering::Relaxed);
    }

    /// Clones the value under `key`, if present (read lock only).
    pub(crate) fn get(&self, key: &K, hash: u64) -> Option<V> {
        self.shard(hash).read().get(key).cloned()
    }

    /// Inserts at `cost` accounted bytes (last writer wins — all
    /// writers of a key compute the same deterministic value), evicting
    /// within the shard if a budget is set.
    pub(crate) fn insert(&self, key: K, hash: u64, value: V, cost: usize) {
        let delta = self.shard(hash).write().insert(key, value, cost);
        self.apply(delta);
    }

    /// Splits `total` bytes evenly across shards (`None` = unlimited)
    /// and sweeps immediately.
    pub(crate) fn set_budget(&self, total: Option<usize>) {
        let per_shard = total.map(|t| t / SHARDS);
        for s in &self.shards {
            let delta = s.write().set_budget(per_shard);
            self.apply(delta);
        }
    }

    /// Total entries across shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Accounted bytes, from the lock-free mirror.
    pub(crate) fn bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Entries evicted since creation, from the lock-free mirror.
    pub(crate) fn evictions(&self) -> u64 {
        self.total_evictions.load(Ordering::Relaxed)
    }

    /// The per-shard budget scaled back to a map-wide figure, if set.
    pub(crate) fn budget(&self) -> Option<usize> {
        self.shards[0].read().budget.map(|b| b * SHARDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let i = Interner::new();
        let a = i.intern("bert");
        let b = i.intern("moe");
        assert_ne!(a, b);
        assert_eq!(i.intern("bert"), a);
        assert_eq!(i.intern("moe"), b);
    }

    #[test]
    fn distinct_fields_give_distinct_keys() {
        let base = CellKey::new(0, 256, 8, 4, 0, 4);
        for other in [
            CellKey::new(1, 256, 8, 4, 0, 4),
            CellKey::new(0, 512, 8, 4, 0, 4),
            CellKey::new(0, 256, 4, 4, 0, 4),
            CellKey::new(0, 256, 8, 2, 0, 4),
            CellKey::new(0, 256, 8, 4, 1, 4),
            CellKey::new(0, 256, 8, 4, 0, 2),
        ] {
            assert_ne!(base, other);
        }
        assert_eq!(base, CellKey::new(0, 256, 8, 4, 0, 4));
    }

    #[test]
    fn sharded_map_round_trips_and_spreads() {
        let m: ShardedMap<CellKey, usize> = ShardedMap::new();
        let keys: Vec<CellKey> = (0..200)
            .map(|i| CellKey::new(i % 5, 256, 1 << (i % 6), 1 << (i % 3), i % 3, 4))
            .collect();
        for (n, k) in keys.iter().enumerate() {
            m.insert(*k, k.hash_value(), n, 8);
        }
        let distinct: std::collections::HashSet<CellKey> = keys.iter().copied().collect();
        assert_eq!(m.len(), distinct.len());
        // Hashes must actually spread across shards.
        let used: std::collections::HashSet<usize> = keys
            .iter()
            .map(|k| (k.hash_value() >> (64 - SHARDS.trailing_zeros())) as usize)
            .collect();
        assert!(used.len() > SHARDS / 2, "only {} shards used", used.len());
        for (n, k) in keys.iter().enumerate().rev() {
            // Last writer wins per key; the final loop wrote the highest n.
            let got = m.get(k, k.hash_value()).unwrap();
            let last = keys.iter().rposition(|k2| k2 == k).unwrap();
            assert_eq!(got, last, "key {n} resolved wrong slot");
        }
        // Byte accounting tracks inserts (cost + fixed overhead each).
        assert_eq!(m.bytes(), distinct.len() * (8 + ENTRY_OVERHEAD));
        assert_eq!(m.evictions(), 0);
        assert_eq!(m.budget(), None);
    }

    #[test]
    fn sharded_map_budget_evicts_oldest_within_shard() {
        let m: ShardedMap<TableKey, u64> = ShardedMap::new();
        // All keys land in whatever shard their hash picks; give each
        // shard room for about two entries.
        let per = 64 + ENTRY_OVERHEAD;
        m.set_budget(Some(2 * per * SHARDS));
        let keys: Vec<TableKey> = (0..64).map(|i| TableKey::new(i, 4)).collect();
        for (n, k) in keys.iter().enumerate() {
            m.insert(*k, k.hash_value(), n as u64, 64);
        }
        assert!(m.len() < 64, "budget must shed entries");
        assert!(m.evictions() > 0);
        assert!(
            m.bytes() <= 2 * per * SHARDS + per,
            "bytes stay near budget"
        );
        // Survivors read back their last-written values.
        for (n, k) in keys.iter().enumerate() {
            if let Some(v) = m.get(k, k.hash_value()) {
                assert_eq!(v, n as u64);
            }
        }
        // Lifting the budget stops eviction.
        m.set_budget(None);
        let before = m.evictions();
        for k in &keys {
            m.insert(*k, k.hash_value(), 0, 64);
        }
        assert_eq!(m.len(), 64);
        assert_eq!(m.evictions(), before);
    }
}
