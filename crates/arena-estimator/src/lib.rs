//! The Cell abstraction and the agile Cell estimator (§4, §5.1).
//!
//! A [`cell::Cell`] is the paper's scheduling granularity: a job
//! with a fixed GPU count and a fixed pipeline-stage partition, whose
//! data × tensor parallelism remains open. The
//! [`estimator::CellEstimator`] prices a Cell without
//! running it on its full allocation:
//!
//! 1. **Offline** ([`tables`]): every communication collective is profiled
//!    once per node class over a grid of power-of-two volumes and group
//!    sizes; at estimation time costs are interpolated from the tables.
//! 2. **Runtime** ([`profile`]): each stage's computation is profiled on a
//!    *single GPU* under the two pure plans (DP-only and TP-only) with
//!    distributed-equivalent compilation — the workflow of Fig. 10.
//! 3. **Assembly** ([`estimator`]): the `2^Ns` plans mixing DP-only /
//!    TP-only per stage are priced by combining the two profiles with
//!    table-interpolated communication (Fig. 9), and the best feasible
//!    one becomes the Cell's estimate. The optimum over the assembled
//!    grid is found exactly by a threshold-bounded chain DP, so deep
//!    pipelines need no exponential enumeration.
//!
//! The estimate is *not* the analytical truth: stage profiles and table
//! entries carry measurement noise, and the assembled grid is a sample of
//! the full space — so estimation accuracy is an experimental result
//! (Fig. 12), not an assumption.

pub mod cell;
pub mod estimator;
mod keys;
pub mod profile;
pub mod tables;

pub use cell::{Cell, Favor};
pub use estimator::{best_estimate, CacheStats, CacheStatsSnapshot, CellEstimate, CellEstimator};
pub use keys::Interner;
pub use tables::{CollectiveKind, CommTables};
