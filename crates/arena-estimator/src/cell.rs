//! The Cell: the paper's scheduling granularity.

use serde::Serialize;

use arena_model::ModelGraph;
use arena_parallelism::{determine_stages, StagePartition};

/// A stage's parallelism preference, extracted from the estimated plan and
/// used by the Cell-guided tuner to prune the exploration space (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Favor {
    /// The stage prefers data parallelism (search DP-only … half-hybrid).
    Dp,
    /// The stage prefers tensor parallelism (search half-hybrid … TP-only).
    Tp,
}

/// A scheduling candidate: a job with fixed resources and pipeline stages.
///
/// A Cell binds the two outer dimensions of the scheduling space (resource
/// allocation and pipeline parallelism), leaving only each stage's
/// `(dp, tp)` split open. That remaining space is what the agile
/// estimator samples and the tuner explores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Cell {
    /// Total GPUs the Cell occupies.
    pub num_gpus: usize,
    /// Number of pipeline stages.
    pub num_stages: usize,
    /// The stage partition determined by §4.2.
    pub partition: StagePartition,
}

impl Cell {
    /// Builds a Cell for `graph` with the given resources and stage count.
    ///
    /// Returns `None` when stage determination fails (see
    /// [`determine_stages`]).
    #[must_use]
    pub fn new(graph: &ModelGraph, num_gpus: usize, num_stages: usize) -> Option<Self> {
        let partition = determine_stages(graph, num_gpus, num_stages)?;
        Some(Cell {
            num_gpus,
            num_stages,
            partition,
        })
    }

    /// Generates all Cells for a job on `num_gpus` GPUs: one per
    /// power-of-two stage count from 1 to `num_gpus` (the `log N_G`
    /// choices of §6.1).
    #[must_use]
    pub fn generate(graph: &ModelGraph, num_gpus: usize) -> Vec<Cell> {
        // Stage counts are the powers of two up to `num_gpus`: exactly
        // `log2 + 1` candidates, so one right-sized allocation.
        let mut out = Vec::with_capacity(num_gpus.max(1).ilog2() as usize + 1);
        let mut stages = 1;
        while stages <= num_gpus {
            if let Some(cell) = Cell::new(graph, num_gpus, stages) {
                out.push(cell);
            }
            stages *= 2;
        }
        out
    }

    /// Display label, e.g. `"8g/4s"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}g/{}s", self.num_gpus, self.num_stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn bert() -> ModelGraph {
        ModelConfig::new(ModelFamily::Bert, 1.3, 256).build()
    }

    #[test]
    fn new_cell_matches_partition() {
        let g = bert();
        let c = Cell::new(&g, 8, 4).unwrap();
        assert_eq!(c.num_gpus, 8);
        assert_eq!(c.num_stages, 4);
        assert_eq!(c.partition.total_gpus(), 8);
        assert_eq!(c.label(), "8g/4s");
    }

    #[test]
    fn generate_produces_log_choices() {
        let g = bert();
        let cells = Cell::generate(&g, 8);
        let stage_counts: Vec<usize> = cells.iter().map(|c| c.num_stages).collect();
        assert_eq!(stage_counts, vec![1, 2, 4, 8]);
    }

    #[test]
    fn generate_skips_infeasible_stage_counts() {
        // A 26-op BERT cannot host 32 stages.
        let g = bert();
        let cells = Cell::generate(&g, 32);
        assert!(cells.iter().all(|c| c.num_stages <= g.len()));
        assert!(!cells.is_empty());
    }

    #[test]
    fn impossible_cell_is_none() {
        let g = bert();
        assert!(Cell::new(&g, 2, 8).is_none());
    }
}
