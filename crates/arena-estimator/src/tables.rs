//! Offline communication tables (§5.1).
//!
//! "The interconnect hardly changes after hardware setup, so the latency
//! performance of a communication operator only changes due to the volume
//! of transferred data" — Arena therefore profiles every collective once
//! per node class, offline, over a grid of volumes and group sizes, and
//! interpolates at estimation time.
//!
//! Curves are stored flat — `group-level × collective` in a dense `Vec`
//! — so the plan-assembly loop's lookups index arithmetic instead of
//! hashing a `(kind, group)` key per priced collective.

use arena_perf::noise::NoiseModel;
use arena_perf::{collective, HwTarget};

/// The communication collectives the estimator prices from tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring all-reduce (TP activations, DP gradients).
    AllReduce,
    /// Ring all-gather (resharding).
    AllGather,
    /// Point-to-point send/recv (pipeline boundaries).
    P2p,
    /// All-to-all (MoE expert dispatch).
    AllToAll,
}

impl CollectiveKind {
    /// All table-profiled collectives.
    pub const ALL: [CollectiveKind; 4] = [
        CollectiveKind::AllReduce,
        CollectiveKind::AllGather,
        CollectiveKind::P2p,
        CollectiveKind::AllToAll,
    ];

    fn truth(self, bytes: f64, group: usize, hw: &HwTarget) -> f64 {
        let ch = hw.channel_for(group);
        match self {
            CollectiveKind::AllReduce => collective::allreduce(bytes, group, ch),
            CollectiveKind::AllGather => collective::allgather(bytes, group, ch),
            CollectiveKind::P2p => collective::p2p(bytes, ch),
            CollectiveKind::AllToAll => collective::alltoall(bytes, group, ch),
        }
    }
}

/// Sampled time-vs-volume curve for one `(collective, group)` pair.
#[derive(Debug, Clone)]
struct VolumeCurve {
    /// `(bytes, seconds)` samples at increasing volumes.
    points: Vec<(f64, f64)>,
}

impl VolumeCurve {
    /// Piecewise-linear interpolation in volume; linear extrapolation
    /// beyond the last sample (the regime is bandwidth-bound and affine).
    fn lookup(&self, bytes: f64) -> f64 {
        let pts = &self.points;
        if bytes <= pts[0].0 {
            // Below the smallest sample the latency term dominates; scale
            // only the bandwidth part by clamping to the first point.
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if bytes <= x1 {
                return y0 + (y1 - y0) * (bytes - x0) / (x1 - x0);
            }
        }
        // Extrapolate from the last segment's slope.
        let (x0, y0) = pts[pts.len() - 2];
        let (x1, y1) = pts[pts.len() - 1];
        y1 + (y1 - y0) * (bytes - x1) / (x1 - x0)
    }
}

/// Offline-profiled communication tables for one node class.
///
/// Built once per `(cluster, GPU type)` — the cost is paid before any job
/// is scheduled, matching the paper's offline profiling on "all used
/// GPUs". Table entries carry build-time measurement noise, so estimates
/// derived from them are approximations of the live collectives.
#[derive(Debug, Clone)]
pub struct CommTables {
    /// Dense `level-major` curve store: index `level * 4 + kind`, where
    /// `level = log2(group)` over the profiled power-of-two groups.
    curves: Vec<VolumeCurve>,
    max_group: usize,
}

/// Volume grid: 1 KiB to 16 GiB in 4× steps.
fn volume_grid() -> Vec<f64> {
    (0..13).map(|i| 1024.0 * 4.0_f64.powi(i)).collect()
}

impl CommTables {
    /// Profiles all collectives on `hw` for group sizes `1..=max_group`
    /// (powers of two), with measurement noise drawn from `noise`.
    #[must_use]
    pub fn build(hw: &HwTarget, max_group: usize, noise: &NoiseModel) -> Self {
        let mut curves = Vec::new();
        let mut group = 1;
        while group <= max_group.max(1) {
            for kind in CollectiveKind::ALL {
                let points = volume_grid()
                    .into_iter()
                    .map(|v| {
                        let t = kind.truth(v, group, hw);
                        let key = format!("table|{}|{:?}|{}|{}", hw.name(), kind, group, v);
                        (v, t * noise.factor(&key))
                    })
                    .collect();
                curves.push(VolumeCurve { points });
            }
            group *= 2;
        }
        CommTables {
            curves,
            max_group: max_group.max(1),
        }
    }

    /// Interpolated cost of a collective moving `bytes` over `group` ranks.
    ///
    /// Non-power-of-two groups use the next larger profiled group
    /// (pessimistic); degenerate groups are free for group collectives.
    /// A clamp that lands on an unprofiled (non-power-of-two
    /// `max_group`) size falls back to the group-1 curve, exactly as
    /// the old keyed store did.
    #[must_use]
    pub fn lookup(&self, kind: CollectiveKind, group: usize, bytes: f64) -> f64 {
        if bytes <= 0.0 || (group <= 1 && kind != CollectiveKind::P2p) {
            return 0.0;
        }
        let g = group.next_power_of_two().min(self.max_group).max(1);
        // Every power of two <= max_group is profiled, so its level
        // indexes the dense store directly.
        let level = if g.is_power_of_two() {
            g.trailing_zeros() as usize
        } else {
            0
        };
        self.curves[level * CollectiveKind::ALL.len() + kind as usize].lookup(bytes)
    }

    /// Largest profiled group size.
    #[must_use]
    pub fn max_group(&self) -> usize {
        self.max_group
    }
}

impl arena_runtime::MemSize for CommTables {
    fn mem_bytes(&self) -> usize {
        let per_curve = |c: &VolumeCurve| {
            std::mem::size_of::<VolumeCurve>() + c.points.len() * std::mem::size_of::<(f64, f64)>()
        };
        std::mem::size_of::<Self>() + self.curves.iter().map(per_curve).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_perf::CostParams;

    fn hw() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4))
    }

    fn tables(noise_sigma: f64) -> CommTables {
        let noise = if noise_sigma == 0.0 {
            NoiseModel::disabled()
        } else {
            NoiseModel::new(noise_sigma, 11)
        };
        CommTables::build(&hw(), 16, &noise)
    }

    #[test]
    fn noiseless_tables_interpolate_exactly() {
        // The collectives are affine in volume, so piecewise-linear
        // interpolation between noiseless samples is exact.
        let t = tables(0.0);
        for kind in CollectiveKind::ALL {
            for group in [2_usize, 8] {
                for bytes in [5e4, 3.3e6, 7.7e8] {
                    let truth = kind.truth(bytes, group, &hw());
                    let got = t.lookup(kind, group, bytes);
                    let rel = (got - truth).abs() / truth;
                    assert!(rel < 1e-9, "{kind:?}/{group} at {bytes}: rel {rel}");
                }
            }
        }
    }

    #[test]
    fn noisy_tables_are_close_but_not_exact() {
        let p = CostParams::default();
        let t = tables(p.table_sigma);
        let truth = CollectiveKind::AllReduce.truth(1e8, 8, &hw());
        let got = t.lookup(CollectiveKind::AllReduce, 8, 1e8);
        let rel = (got - truth).abs() / truth;
        assert!(rel > 0.0, "noise did not perturb the table");
        assert!(rel < 0.1, "table noise implausibly large: {rel}");
    }

    #[test]
    fn degenerate_lookups_are_free() {
        let t = tables(0.0);
        assert_eq!(t.lookup(CollectiveKind::AllReduce, 1, 1e9), 0.0);
        assert_eq!(t.lookup(CollectiveKind::AllToAll, 0, 1e9), 0.0);
        assert_eq!(t.lookup(CollectiveKind::P2p, 1, 0.0), 0.0);
    }

    #[test]
    fn p2p_works_for_single_member_groups() {
        let t = tables(0.0);
        assert!(t.lookup(CollectiveKind::P2p, 1, 1e8) > 0.0);
    }

    #[test]
    fn extrapolation_beyond_grid_is_monotone() {
        let t = tables(0.0);
        let at_16g = t.lookup(CollectiveKind::AllReduce, 8, 16.0 * (1 << 30) as f64);
        let at_64g = t.lookup(CollectiveKind::AllReduce, 8, 64.0 * (1 << 30) as f64);
        assert!(at_64g > 3.0 * at_16g);
    }

    #[test]
    fn oversized_groups_clamp_to_largest_profiled() {
        let t = tables(0.0);
        let a = t.lookup(CollectiveKind::AllReduce, 16, 1e8);
        let b = t.lookup(CollectiveKind::AllReduce, 64, 1e8);
        assert_eq!(a, b);
    }
}
