//! A small blocking TCP client for the daemon's JSONL protocol —
//! used by the example session and the end-to-end tests, and the
//! reference for writing clients in other languages.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use arena_trace::{FaultEvent, JobSpec};
use serde::Value;

use crate::protocol::{fault_line, submit_line};

/// One protocol connection. Every call sends one command line and
/// blocks for the matching response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw command line, returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an empty read (server gone) is
    /// `UnexpectedEof`.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends a raw line and parses the response object; `Err` carries
    /// the server's `error` string when `ok` is false.
    ///
    /// # Errors
    ///
    /// I/O failures, unparseable responses and `ok:false` responses.
    pub fn call(&mut self, line: &str) -> Result<Value, String> {
        let raw = self.send_line(line).map_err(|e| e.to_string())?;
        let v: Value =
            serde_json::from_str(&raw).map_err(|e| format!("bad response `{raw}`: {e}"))?;
        match v.get("ok") {
            Some(Value::Bool(true)) => Ok(v),
            _ => match v.get("error") {
                Some(Value::Str(msg)) => Err(msg.clone()),
                _ => Err(format!("malformed response: {raw}")),
            },
        }
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Value, String> {
        self.call(&submit_line(spec))
    }

    /// Injects a node-health event.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn fault(&mut self, fault: &FaultEvent) -> Result<Value, String> {
        self.call(&fault_line(fault))
    }

    /// Advances the virtual clock.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn advance(&mut self, to_s: f64) -> Result<Value, String> {
        self.call(&format!("{{\"cmd\":\"advance\",\"to_s\":{to_s}}}"))
    }

    /// Closes the input and drains the run.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn drain(&mut self) -> Result<Value, String> {
        self.call("{\"cmd\":\"drain\"}")
    }

    /// Runs a read-only query by its `what` name.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn query(&mut self, what: &str) -> Result<Value, String> {
        self.call(&format!("{{\"cmd\":\"query\",\"what\":\"{what}\"}}"))
    }

    /// Requests daemon shutdown.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> Result<Value, String> {
        self.call("{\"cmd\":\"shutdown\"}")
    }
}
