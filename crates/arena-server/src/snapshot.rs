//! Immutable server snapshots and the RCU hub that publishes them.
//!
//! The daemon thread is the single writer: after every applied command
//! (and periodically while draining) it builds a [`ServerSnapshot`] and
//! swaps it into the [`SnapshotHub`]. Query threads [`SnapshotHub::load`]
//! the current snapshot wait-free and answer from it — a reader never
//! takes a lock the decision loop contends on, and a snapshot never
//! changes after publication, so every answer is internally consistent
//! (all counts taken between the same two bursts).
//!
//! The decision log is mirrored as a vector of immutable chunks
//! (`Arc<Vec<Decision>>`): each publish appends at most one new chunk
//! and shallow-clones the chunk list, so publish cost is proportional
//! to *new* decisions, not run length.

use std::collections::BTreeMap;
use std::sync::Arc;

use arena_obs::Decision;
use arena_runtime::RcuCell;
use arena_sim::{EngineState, JobPhase};
use serde::{Serialize, Value};

use crate::protocol::{err_line, ok_line, Query};

/// One published, immutable view of the daemon.
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    /// Publication sequence number, strictly increasing.
    pub seq: u64,
    /// Active policy name.
    pub policy: String,
    /// Decision-loop shard count.
    pub shards: usize,
    /// Engine state between two bursts.
    pub state: EngineState,
    /// Counter values at publication time.
    pub counters: BTreeMap<String, u64>,
    /// Decision log as immutable chunks, in record order.
    pub decisions: Vec<Arc<Vec<Decision>>>,
}

impl ServerSnapshot {
    /// Total decisions recorded at publication time.
    #[must_use]
    pub fn decision_count(&self) -> usize {
        self.decisions.iter().map(|c| c.len()).sum()
    }

    /// Decision records from global index `from` on, as JSON Lines.
    #[must_use]
    pub fn decisions_jsonl_from(&self, from: usize) -> String {
        let mut out = String::new();
        let mut base = 0usize;
        for chunk in &self.decisions {
            let end = base + chunk.len();
            if end > from {
                for d in &chunk[from.saturating_sub(base).min(chunk.len())..] {
                    out.push_str(&d.to_json());
                    out.push('\n');
                }
            }
            base = end;
        }
        out
    }

    /// Prometheus-style exposition text for the counters (mirrors
    /// `Obs::counters_text`, but rendered from the frozen snapshot).
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let sanitised: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            out.push_str(&format!(
                "# TYPE {sanitised} counter\n{sanitised} {value}\n"
            ));
        }
        out
    }
}

/// Wait-free single-writer/many-reader publication point for
/// [`ServerSnapshot`]s, built on [`RcuCell`].
pub struct SnapshotHub {
    cell: RcuCell<ServerSnapshot>,
}

impl SnapshotHub {
    /// Creates a hub holding `initial` as the first published snapshot.
    #[must_use]
    pub fn new(initial: ServerSnapshot) -> Self {
        SnapshotHub {
            cell: RcuCell::new(Arc::new(initial)),
        }
    }

    /// The latest published snapshot. Wait-free; never blocks the
    /// writer.
    #[must_use]
    pub fn load(&self) -> Arc<ServerSnapshot> {
        self.cell.load()
    }

    /// Publishes a new snapshot. Single-writer: only the daemon thread
    /// calls this.
    pub fn publish(&self, snap: ServerSnapshot) {
        debug_assert!(
            snap.seq > self.cell.load().seq,
            "snapshot seq must increase"
        );
        self.cell.store(Arc::new(snap));
    }
}

/// Answers a read-only query from a snapshot. Always returns a complete
/// response line (`ok:true` or `ok:false`).
#[must_use]
pub fn answer_query(q: &Query, snap: &ServerSnapshot) -> String {
    match q {
        Query::Status => ok_line(vec![
            ("seq".to_string(), Value::U64(snap.seq)),
            ("policy".to_string(), Value::Str(snap.policy.clone())),
            ("shards".to_string(), Value::U64(snap.shards as u64)),
            ("now_s".to_string(), Value::F64(snap.state.now_s)),
            (
                "submitted".to_string(),
                Value::U64(snap.state.submitted as u64),
            ),
            ("pending".to_string(), Value::U64(snap.state.pending as u64)),
            ("queued".to_string(), Value::U64(snap.state.queued as u64)),
            (
                "starting".to_string(),
                Value::U64(snap.state.starting as u64),
            ),
            ("running".to_string(), Value::U64(snap.state.running as u64)),
            (
                "finished".to_string(),
                Value::U64(snap.state.finished as u64),
            ),
            ("dropped".to_string(), Value::U64(snap.state.dropped as u64)),
            (
                "input_closed".to_string(),
                Value::Bool(snap.state.input_closed),
            ),
            ("drained".to_string(), Value::Bool(snap.state.drained)),
            (
                "decisions".to_string(),
                Value::U64(snap.decision_count() as u64),
            ),
        ]),
        Query::Jobs => ok_line(vec![(
            "jobs".to_string(),
            Value::Array(snap.state.jobs.iter().map(Serialize::to_value).collect()),
        )]),
        Query::Job(id) => match snap.state.jobs.iter().find(|j| j.id == *id) {
            Some(j) => ok_line(vec![("job".to_string(), j.to_value())]),
            None => err_line(&format!("no such job {id}")),
        },
        Query::Queue => ok_line(vec![(
            "queue".to_string(),
            Value::Array(
                snap.state
                    .jobs
                    .iter()
                    .filter(|j| j.phase == JobPhase::Queued)
                    .map(Serialize::to_value)
                    .collect(),
            ),
        )]),
        Query::Cluster => ok_line(vec![(
            "pools".to_string(),
            Value::Array(snap.state.pools.iter().map(Serialize::to_value).collect()),
        )]),
        Query::Decisions { from } => ok_line(vec![
            (
                "total".to_string(),
                Value::U64(snap.decision_count() as u64),
            ),
            (
                "jsonl".to_string(),
                Value::Str(snap.decisions_jsonl_from(*from)),
            ),
        ]),
        Query::Metrics => ok_line(vec![(
            "metrics".to_string(),
            Value::Str(snap.metrics_text()),
        )]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_state() -> EngineState {
        EngineState {
            now_s: 0.0,
            submitted: 0,
            pending: 0,
            queued: 0,
            starting: 0,
            running: 0,
            finished: 0,
            dropped: 0,
            input_closed: false,
            drained: false,
            pools: Vec::new(),
            jobs: Vec::new(),
        }
    }

    fn snap(seq: u64) -> ServerSnapshot {
        ServerSnapshot {
            seq,
            policy: "fcfs".to_string(),
            shards: 1,
            state: empty_state(),
            counters: BTreeMap::new(),
            decisions: Vec::new(),
        }
    }

    #[test]
    fn hub_publishes_monotone_snapshots() {
        let hub = SnapshotHub::new(snap(0));
        assert_eq!(hub.load().seq, 0);
        hub.publish(snap(1));
        hub.publish(snap(2));
        assert_eq!(hub.load().seq, 2);
    }

    #[test]
    fn old_snapshots_stay_valid_after_publish() {
        let hub = SnapshotHub::new(snap(0));
        let old = hub.load();
        hub.publish(snap(1));
        assert_eq!(old.seq, 0);
        assert_eq!(hub.load().seq, 1);
    }

    #[test]
    fn decisions_jsonl_from_respects_chunk_boundaries() {
        let mk = |seq: u64| {
            let mut d = Decision::place(seq, 0, 1);
            d.seq = seq;
            d
        };
        let mut s = snap(3);
        let a: Vec<Decision> = (0..3).map(mk).collect();
        let b: Vec<Decision> = (3..5).map(mk).collect();
        s.decisions = vec![Arc::new(a), Arc::new(b)];
        assert_eq!(s.decision_count(), 5);
        let all = s.decisions_jsonl_from(0);
        assert_eq!(all.lines().count(), 5);
        let tail = s.decisions_jsonl_from(4);
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("\"seq\":4"));
        assert!(s.decisions_jsonl_from(5).is_empty());
        assert!(s.decisions_jsonl_from(99).is_empty());
    }

    #[test]
    fn status_answer_is_ok_json() {
        let line = answer_query(&Query::Status, &snap(7));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"seq\":7"));
        let missing = answer_query(&Query::Job(42), &snap(7));
        assert!(missing.contains("\"ok\":false"));
    }
}
