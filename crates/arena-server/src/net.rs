//! Transport layer: the TCP listener and the `--stdin` line loop.
//!
//! Both transports are thin: read a line, hand it to
//! [`ServerHandle::handle_line`], write the response line back. Queries
//! are answered inside `handle_line` from the snapshot hub without ever
//! reaching the daemon thread, so a slow drain never stalls a reader.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::daemon::ServerHandle;

/// Serves the protocol over a `BufRead`/`Write` pair — the `repro serve
/// --stdin` mode and the in-process harness the fuzz suite drives.
/// Returns after EOF or once shutdown has been requested. A `watch`
/// command streams one response line per sample; the stream ends (and
/// the next command is read) once its `count` is reached, shutdown is
/// requested, or the peer goes away.
///
/// # Errors
///
/// Propagates write errors on `output`; read errors end the loop
/// silently (a closed pipe is a normal way for a session to end).
pub fn serve_lines<R: BufRead, W: Write>(
    handle: &ServerHandle,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let Ok(line) = line else { break };
        let mut io_err: Option<std::io::Error> = None;
        handle.handle_line_sink(&line, &mut |response| {
            let wrote = writeln!(output, "{response}").and_then(|()| output.flush());
            match wrote {
                Ok(()) => true,
                Err(e) => {
                    io_err = Some(e);
                    false
                }
            }
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        if handle.is_shutdown() {
            break;
        }
    }
    Ok(())
}

/// Binds a TCP listener on `addr` (use port 0 for an ephemeral port)
/// and returns the bound address plus the acceptor thread's handle.
/// The acceptor polls the shutdown flag between accepts and exits on
/// its own once shutdown is requested; each connection gets a thread
/// running the same line loop as [`serve_lines`].
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn_listener(
    handle: &ServerHandle,
    addr: &str,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = handle.clone();
    let acceptor = std::thread::Builder::new()
        .name("arena-acceptor".to_string())
        .spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if handle.is_shutdown() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let h = handle.clone();
                        if let Ok(t) = std::thread::Builder::new()
                            .name("arena-conn".to_string())
                            .spawn(move || serve_conn(&h, stream))
                        {
                            conns.push(t);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
            for t in conns {
                let _ = t.join();
            }
        })?;
    Ok((local, acceptor))
}

fn serve_conn(handle: &ServerHandle, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    let _ = serve_lines(handle, reader, write_half);
}
