//! The newline-delimited JSON command protocol.
//!
//! One command per line, one response line per command. Every command is
//! an object with a `cmd` discriminator:
//!
//! | line | meaning |
//! |---|---|
//! | `{"cmd":"submit","job":{…JobSpec…}}` | queue a job submission (timestamp = `job.submit_s`) |
//! | `{"cmd":"fault","time_s":T,"pool":P,"node":N,"kind":"failure"\|"repair"}` | node-health event |
//! | `{"cmd":"cancel","time_s":T,"job":ID}` | operator-initiated completion of a job |
//! | `{"cmd":"advance","to_s":T}` | advance the virtual clock: run every burst strictly before `T` |
//! | `{"cmd":"drain"}` | close the input stream and run the decision loop to completion |
//! | `{"cmd":"query","what":…}` | read-only query served from the latest snapshot |
//! | `{"cmd":"watch","what":…,"interval_s":S,"count":N}` | stream query samples every `S` seconds (`count` 0 = until shutdown) |
//! | `{"cmd":"dump"}` | flush the telemetry flight recorder as JSONL |
//! | `{"cmd":"shutdown"}` | flush logs and stop the daemon |
//!
//! Query `what` values: `"status"`, `"jobs"`, `"queue"`, `"cluster"`,
//! `"metrics"`, `"job"` (with `"id":ID`), `"decisions"` (with optional
//! `"from":N`).
//!
//! Responses are JSON objects with an `ok` boolean; failures carry an
//! `error` string. Parsing is **reject-and-continue**: a malformed line
//! produces an error response and leaves the daemon state untouched.
//!
//! **Correlation ids:** any command may carry a top-level `"id"` field
//! (any JSON value); the response line echoes it back verbatim so
//! pipelined clients can match responses to requests. `query job` also
//! names its *job* id `"id"` — that value is both the lookup key and
//! the echoed correlation id.

use arena_trace::{FaultEvent, FaultKind, JobSpec};
use serde::{Deserialize, Value};

/// A read-only query, answered from the current snapshot without
/// touching the decision thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Scalar run status: clock, counts, drain state.
    Status,
    /// Every job's status record.
    Jobs,
    /// One job's status record.
    Job(u64),
    /// Queued jobs only (ascending submission order).
    Queue,
    /// Per-pool capacity books.
    Cluster,
    /// Decision log entries from sequence `from` on, as JSONL.
    Decisions {
        /// First decision sequence number to include.
        from: usize,
    },
    /// Counters in Prometheus-style exposition text.
    Metrics,
}

/// One parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Queue a job submission.
    Submit(JobSpec),
    /// Queue a node-health event.
    Fault(FaultEvent),
    /// Cancel a job at a point in virtual time.
    Cancel {
        /// When the cancellation takes effect.
        time_s: f64,
        /// The job to cancel.
        job: u64,
    },
    /// Advance the virtual clock.
    Advance {
        /// Run every burst strictly earlier than this instant.
        to_s: f64,
    },
    /// Close the input stream and drain the run to completion.
    Drain,
    /// A read-only snapshot query.
    Query(Query),
    /// A streaming subscription: re-answer `what` every `interval_s`
    /// seconds. Non-mutating; terminated by `count` or shutdown.
    Watch {
        /// The query to sample.
        what: Query,
        /// Seconds between samples.
        interval_s: f64,
        /// Number of samples to emit; `0` streams until shutdown.
        count: u64,
    },
    /// Flush the telemetry flight recorder (last N decisions) as JSONL.
    Dump,
    /// Stop the daemon.
    Shutdown,
}

impl Command {
    /// Whether the command mutates engine state — exactly the commands
    /// the daemon appends to its event log for replay-based recovery.
    #[must_use]
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Command::Submit(_)
                | Command::Fault(_)
                | Command::Cancel { .. }
                | Command::Advance { .. }
                | Command::Drain
        )
    }
}

fn get_f64(v: &Value, name: &str) -> Result<f64, String> {
    v.get(name)
        .ok_or_else(|| format!("missing field `{name}`"))
        .and_then(|f| f64::from_value(f).map_err(|e| e.to_string()))
}

fn get_u64(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .ok_or_else(|| format!("missing field `{name}`"))
        .and_then(|f| u64::from_value(f).map_err(|e| e.to_string()))
}

fn get_str<'a>(v: &'a Value, name: &str) -> Result<&'a str, String> {
    match v.get(name) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("field `{name}` is not a string")),
        None => Err(format!("missing field `{name}`")),
    }
}

/// Parses one command line. Unknown `cmd`/`what`/`kind` discriminators,
/// missing fields and malformed JSON are all `Err` — the caller responds
/// with the message and continues.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("command must be a JSON object".to_string());
    }
    let cmd = get_str(&v, "cmd")?;
    match cmd {
        "submit" => {
            let job = v.get("job").ok_or("missing field `job`")?;
            let spec = JobSpec::from_value(job).map_err(|e| format!("bad job spec: {e}"))?;
            Ok(Command::Submit(spec))
        }
        "fault" => {
            let kind = match get_str(&v, "kind")? {
                "failure" | "Failure" => FaultKind::Failure,
                "repair" | "Repair" => FaultKind::Repair,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            Ok(Command::Fault(FaultEvent {
                time_s: get_f64(&v, "time_s")?,
                pool: usize::try_from(get_u64(&v, "pool")?)
                    .map_err(|_| "pool out of range".to_string())?,
                node: usize::try_from(get_u64(&v, "node")?)
                    .map_err(|_| "node out of range".to_string())?,
                kind,
            }))
        }
        "cancel" => Ok(Command::Cancel {
            time_s: get_f64(&v, "time_s")?,
            job: get_u64(&v, "job")?,
        }),
        "advance" => Ok(Command::Advance {
            to_s: get_f64(&v, "to_s")?,
        }),
        "drain" => Ok(Command::Drain),
        "query" => Ok(Command::Query(parse_query(&v)?)),
        "watch" => {
            let interval_s = match v.get("interval_s") {
                Some(f) => f64::from_value(f).map_err(|e| e.to_string())?,
                None => 1.0,
            };
            if !interval_s.is_finite() || interval_s < 0.0 {
                return Err(format!("bad watch interval {interval_s}"));
            }
            let count = match v.get("count") {
                Some(f) => u64::from_value(f).map_err(|e| e.to_string())?,
                None => 0,
            };
            Ok(Command::Watch {
                what: parse_query(&v)?,
                interval_s,
                count,
            })
        }
        "dump" => Ok(Command::Dump),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses the `what` selector shared by `query` and `watch`.
fn parse_query(v: &Value) -> Result<Query, String> {
    let what = get_str(v, "what")?;
    match what {
        "status" => Ok(Query::Status),
        "jobs" => Ok(Query::Jobs),
        "queue" => Ok(Query::Queue),
        "cluster" => Ok(Query::Cluster),
        "metrics" => Ok(Query::Metrics),
        "job" => Ok(Query::Job(get_u64(v, "id")?)),
        "decisions" => Ok(Query::Decisions {
            from: v.get("from").map_or(Ok(0), |f| {
                u64::from_value(f)
                    .map_err(|e| e.to_string())
                    .and_then(|n| usize::try_from(n).map_err(|_| "from out of range".to_string()))
            })?,
        }),
        other => Err(format!("unknown query `{other}`")),
    }
}

/// Best-effort extraction of the optional top-level correlation `"id"`
/// from a command line. Works even when the command itself fails
/// validation, so error responses carry the id too; returns `None` for
/// non-JSON input (those error lines cannot be correlated anyway).
#[must_use]
pub fn request_id(line: &str) -> Option<Value> {
    let v: Value = serde_json::from_str(line).ok()?;
    v.get("id").cloned()
}

/// Appends the echoed correlation id to a finished response line. The
/// response is one of our own `ok_line`/`err_line` objects, so the
/// re-parse cannot fail; anything else is returned untouched.
#[must_use]
pub fn with_request_id(response: &str, id: &Value) -> String {
    match serde_json::from_str(response) {
        Ok(Value::Object(mut fields)) => {
            fields.retain(|(k, _)| k != "id");
            fields.push(("id".to_string(), id.clone()));
            serde_json::to_string(&Value::Object(fields)).expect("response serialises")
        }
        _ => response.to_string(),
    }
}

/// Renders a job-submission command line for `spec` — the inverse of
/// [`parse_command`] for the `submit` shape (client/test helper).
#[must_use]
pub fn submit_line(spec: &JobSpec) -> String {
    let job = serde_json::to_string(spec).expect("job spec serialises");
    format!("{{\"cmd\":\"submit\",\"job\":{job}}}")
}

/// Renders a fault command line (client/test helper).
#[must_use]
pub fn fault_line(fault: &FaultEvent) -> String {
    let kind = match fault.kind {
        FaultKind::Failure => "failure",
        FaultKind::Repair => "repair",
    };
    format!(
        "{{\"cmd\":\"fault\",\"time_s\":{},\"pool\":{},\"node\":{},\"kind\":\"{kind}\"}}",
        serde_json::to_string(&fault.time_s).expect("f64 serialises"),
        fault.pool,
        fault.node
    )
}

/// A successful response line with extra fields.
#[must_use]
pub fn ok_line(extra: Vec<(String, Value)>) -> String {
    let mut fields = vec![("ok".to_string(), Value::Bool(true))];
    fields.extend(extra);
    serde_json::to_string(&Value::Object(fields)).expect("response serialises")
}

/// An error response line. The daemon state is unchanged whenever a
/// client sees one of these.
#[must_use]
pub fn err_line(msg: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(msg.to_string())),
    ]))
    .expect("response serialises")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::{ModelConfig, ModelFamily};

    fn spec() -> JobSpec {
        JobSpec {
            id: 7,
            name: "j7".to_string(),
            submit_s: 120.0,
            model: ModelConfig::new(ModelFamily::Bert, 0.76, 256),
            iterations: 300,
            requested_gpus: 4,
            requested_pool: 1,
            deadline_s: None,
        }
    }

    #[test]
    fn submit_round_trips() {
        let line = submit_line(&spec());
        match parse_command(&line) {
            Ok(Command::Submit(s)) => {
                assert_eq!(s.id, 7);
                assert_eq!(s.requested_gpus, 4);
                assert_eq!(s.submit_s, 120.0);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn fault_round_trips() {
        let f = FaultEvent {
            time_s: 9_000.0,
            pool: 1,
            node: 3,
            kind: FaultKind::Failure,
        };
        assert_eq!(parse_command(&fault_line(&f)), Ok(Command::Fault(f)));
    }

    #[test]
    fn malformed_lines_reject_with_messages() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"cmd\":\"warp\"}",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"fault\",\"time_s\":1.0,\"pool\":0,\"node\":0,\"kind\":\"melt\"}",
            "{\"cmd\":\"query\",\"what\":\"vibes\"}",
            "{\"cmd\":\"advance\"}",
        ] {
            assert!(parse_command(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn queries_parse() {
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"status\"}"),
            Ok(Command::Query(Query::Status))
        );
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"job\",\"id\":3}"),
            Ok(Command::Query(Query::Job(3)))
        );
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"decisions\"}"),
            Ok(Command::Query(Query::Decisions { from: 0 }))
        );
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"decisions\",\"from\":12}"),
            Ok(Command::Query(Query::Decisions { from: 12 }))
        );
    }

    #[test]
    fn watch_and_dump_parse() {
        assert_eq!(
            parse_command("{\"cmd\":\"watch\",\"what\":\"metrics\"}"),
            Ok(Command::Watch {
                what: Query::Metrics,
                interval_s: 1.0,
                count: 0,
            })
        );
        assert_eq!(
            parse_command(
                "{\"cmd\":\"watch\",\"what\":\"status\",\"interval_s\":0.25,\"count\":3}"
            ),
            Ok(Command::Watch {
                what: Query::Status,
                interval_s: 0.25,
                count: 3,
            })
        );
        assert_eq!(parse_command("{\"cmd\":\"dump\"}"), Ok(Command::Dump));
        for bad in [
            "{\"cmd\":\"watch\"}",
            "{\"cmd\":\"watch\",\"what\":\"vibes\"}",
            "{\"cmd\":\"watch\",\"what\":\"status\",\"interval_s\":-1.0}",
            "{\"cmd\":\"watch\",\"what\":\"status\",\"interval_s\":\"soon\"}",
        ] {
            assert!(parse_command(bad).is_err(), "accepted: {bad}");
        }
        // watch and dump never reach the daemon's event log.
        assert!(!parse_command("{\"cmd\":\"dump\"}").unwrap().is_mutating());
    }

    #[test]
    fn request_ids_are_extracted_and_echoed() {
        assert_eq!(
            request_id("{\"cmd\":\"drain\",\"id\":7}"),
            Some(Value::U64(7))
        );
        assert_eq!(
            request_id("{\"cmd\":\"drain\",\"id\":\"req-1\"}"),
            Some(Value::Str("req-1".to_string()))
        );
        assert_eq!(request_id("{\"cmd\":\"drain\"}"), None);
        // Best-effort: ids survive commands that fail validation...
        assert_eq!(
            request_id("{\"cmd\":\"warp\",\"id\":3}"),
            Some(Value::U64(3))
        );
        // ...but non-JSON lines have no id to echo.
        assert_eq!(request_id("not json"), None);

        let ok = ok_line(vec![("now_s".to_string(), Value::F64(1.0))]);
        let tagged = with_request_id(&ok, &Value::Str("req-1".to_string()));
        assert!(tagged.contains("\"ok\":true"));
        assert!(tagged.ends_with("\"id\":\"req-1\"}"));
        let err = with_request_id(&err_line("nope"), &Value::U64(9));
        assert!(err.contains("\"ok\":false"));
        assert!(err.ends_with("\"id\":9}"));
    }
}
