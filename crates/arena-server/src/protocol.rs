//! The newline-delimited JSON command protocol.
//!
//! One command per line, one response line per command. Every command is
//! an object with a `cmd` discriminator:
//!
//! | line | meaning |
//! |---|---|
//! | `{"cmd":"submit","job":{…JobSpec…}}` | queue a job submission (timestamp = `job.submit_s`) |
//! | `{"cmd":"fault","time_s":T,"pool":P,"node":N,"kind":"failure"\|"repair"}` | node-health event |
//! | `{"cmd":"cancel","time_s":T,"job":ID}` | operator-initiated completion of a job |
//! | `{"cmd":"advance","to_s":T}` | advance the virtual clock: run every burst strictly before `T` |
//! | `{"cmd":"drain"}` | close the input stream and run the decision loop to completion |
//! | `{"cmd":"query","what":…}` | read-only query served from the latest snapshot |
//! | `{"cmd":"shutdown"}` | flush logs and stop the daemon |
//!
//! Query `what` values: `"status"`, `"jobs"`, `"queue"`, `"cluster"`,
//! `"metrics"`, `"job"` (with `"id":ID`), `"decisions"` (with optional
//! `"from":N`).
//!
//! Responses are JSON objects with an `ok` boolean; failures carry an
//! `error` string. Parsing is **reject-and-continue**: a malformed line
//! produces an error response and leaves the daemon state untouched.

use arena_trace::{FaultEvent, FaultKind, JobSpec};
use serde::{Deserialize, Value};

/// A read-only query, answered from the current snapshot without
/// touching the decision thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Scalar run status: clock, counts, drain state.
    Status,
    /// Every job's status record.
    Jobs,
    /// One job's status record.
    Job(u64),
    /// Queued jobs only (ascending submission order).
    Queue,
    /// Per-pool capacity books.
    Cluster,
    /// Decision log entries from sequence `from` on, as JSONL.
    Decisions {
        /// First decision sequence number to include.
        from: usize,
    },
    /// Counters in Prometheus-style exposition text.
    Metrics,
}

/// One parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Queue a job submission.
    Submit(JobSpec),
    /// Queue a node-health event.
    Fault(FaultEvent),
    /// Cancel a job at a point in virtual time.
    Cancel {
        /// When the cancellation takes effect.
        time_s: f64,
        /// The job to cancel.
        job: u64,
    },
    /// Advance the virtual clock.
    Advance {
        /// Run every burst strictly earlier than this instant.
        to_s: f64,
    },
    /// Close the input stream and drain the run to completion.
    Drain,
    /// A read-only snapshot query.
    Query(Query),
    /// Stop the daemon.
    Shutdown,
}

impl Command {
    /// Whether the command mutates engine state — exactly the commands
    /// the daemon appends to its event log for replay-based recovery.
    #[must_use]
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Command::Submit(_)
                | Command::Fault(_)
                | Command::Cancel { .. }
                | Command::Advance { .. }
                | Command::Drain
        )
    }
}

fn get_f64(v: &Value, name: &str) -> Result<f64, String> {
    v.get(name)
        .ok_or_else(|| format!("missing field `{name}`"))
        .and_then(|f| f64::from_value(f).map_err(|e| e.to_string()))
}

fn get_u64(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .ok_or_else(|| format!("missing field `{name}`"))
        .and_then(|f| u64::from_value(f).map_err(|e| e.to_string()))
}

fn get_str<'a>(v: &'a Value, name: &str) -> Result<&'a str, String> {
    match v.get(name) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("field `{name}` is not a string")),
        None => Err(format!("missing field `{name}`")),
    }
}

/// Parses one command line. Unknown `cmd`/`what`/`kind` discriminators,
/// missing fields and malformed JSON are all `Err` — the caller responds
/// with the message and continues.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("command must be a JSON object".to_string());
    }
    let cmd = get_str(&v, "cmd")?;
    match cmd {
        "submit" => {
            let job = v.get("job").ok_or("missing field `job`")?;
            let spec = JobSpec::from_value(job).map_err(|e| format!("bad job spec: {e}"))?;
            Ok(Command::Submit(spec))
        }
        "fault" => {
            let kind = match get_str(&v, "kind")? {
                "failure" | "Failure" => FaultKind::Failure,
                "repair" | "Repair" => FaultKind::Repair,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            Ok(Command::Fault(FaultEvent {
                time_s: get_f64(&v, "time_s")?,
                pool: usize::try_from(get_u64(&v, "pool")?)
                    .map_err(|_| "pool out of range".to_string())?,
                node: usize::try_from(get_u64(&v, "node")?)
                    .map_err(|_| "node out of range".to_string())?,
                kind,
            }))
        }
        "cancel" => Ok(Command::Cancel {
            time_s: get_f64(&v, "time_s")?,
            job: get_u64(&v, "job")?,
        }),
        "advance" => Ok(Command::Advance {
            to_s: get_f64(&v, "to_s")?,
        }),
        "drain" => Ok(Command::Drain),
        "query" => {
            let what = get_str(&v, "what")?;
            let q = match what {
                "status" => Query::Status,
                "jobs" => Query::Jobs,
                "queue" => Query::Queue,
                "cluster" => Query::Cluster,
                "metrics" => Query::Metrics,
                "job" => Query::Job(get_u64(&v, "id")?),
                "decisions" => Query::Decisions {
                    from: v.get("from").map_or(Ok(0), |f| {
                        u64::from_value(f).map_err(|e| e.to_string()).and_then(|n| {
                            usize::try_from(n).map_err(|_| "from out of range".to_string())
                        })
                    })?,
                },
                other => return Err(format!("unknown query `{other}`")),
            };
            Ok(Command::Query(q))
        }
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Renders a job-submission command line for `spec` — the inverse of
/// [`parse_command`] for the `submit` shape (client/test helper).
#[must_use]
pub fn submit_line(spec: &JobSpec) -> String {
    let job = serde_json::to_string(spec).expect("job spec serialises");
    format!("{{\"cmd\":\"submit\",\"job\":{job}}}")
}

/// Renders a fault command line (client/test helper).
#[must_use]
pub fn fault_line(fault: &FaultEvent) -> String {
    let kind = match fault.kind {
        FaultKind::Failure => "failure",
        FaultKind::Repair => "repair",
    };
    format!(
        "{{\"cmd\":\"fault\",\"time_s\":{},\"pool\":{},\"node\":{},\"kind\":\"{kind}\"}}",
        serde_json::to_string(&fault.time_s).expect("f64 serialises"),
        fault.pool,
        fault.node
    )
}

/// A successful response line with extra fields.
#[must_use]
pub fn ok_line(extra: Vec<(String, Value)>) -> String {
    let mut fields = vec![("ok".to_string(), Value::Bool(true))];
    fields.extend(extra);
    serde_json::to_string(&Value::Object(fields)).expect("response serialises")
}

/// An error response line. The daemon state is unchanged whenever a
/// client sees one of these.
#[must_use]
pub fn err_line(msg: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(msg.to_string())),
    ]))
    .expect("response serialises")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::{ModelConfig, ModelFamily};

    fn spec() -> JobSpec {
        JobSpec {
            id: 7,
            name: "j7".to_string(),
            submit_s: 120.0,
            model: ModelConfig::new(ModelFamily::Bert, 0.76, 256),
            iterations: 300,
            requested_gpus: 4,
            requested_pool: 1,
            deadline_s: None,
        }
    }

    #[test]
    fn submit_round_trips() {
        let line = submit_line(&spec());
        match parse_command(&line) {
            Ok(Command::Submit(s)) => {
                assert_eq!(s.id, 7);
                assert_eq!(s.requested_gpus, 4);
                assert_eq!(s.submit_s, 120.0);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn fault_round_trips() {
        let f = FaultEvent {
            time_s: 9_000.0,
            pool: 1,
            node: 3,
            kind: FaultKind::Failure,
        };
        assert_eq!(parse_command(&fault_line(&f)), Ok(Command::Fault(f)));
    }

    #[test]
    fn malformed_lines_reject_with_messages() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"cmd\":\"warp\"}",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"fault\",\"time_s\":1.0,\"pool\":0,\"node\":0,\"kind\":\"melt\"}",
            "{\"cmd\":\"query\",\"what\":\"vibes\"}",
            "{\"cmd\":\"advance\"}",
        ] {
            assert!(parse_command(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn queries_parse() {
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"status\"}"),
            Ok(Command::Query(Query::Status))
        );
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"job\",\"id\":3}"),
            Ok(Command::Query(Query::Job(3)))
        );
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"decisions\"}"),
            Ok(Command::Query(Query::Decisions { from: 0 }))
        );
        assert_eq!(
            parse_command("{\"cmd\":\"query\",\"what\":\"decisions\",\"from\":12}"),
            Ok(Command::Query(Query::Decisions { from: 12 }))
        );
    }
}
