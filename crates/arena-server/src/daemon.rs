//! The resident daemon: single writer thread that owns the incremental
//! engine and applies mutating commands, plus the handle other threads
//! use to reach it.
//!
//! Ownership layout: the policy, plan service, observability handle and
//! engine all live on the daemon thread's stack — [`daemon_main`] builds
//! them in order and the engine borrows the policy and service for its
//! whole life, so no self-referential struct is ever needed. Everything
//! outside the daemon talks to it through a [`ServerHandle`]:
//!
//! * **Mutating commands** (`submit`/`fault`/`cancel`/`advance`/`drain`)
//!   are forwarded over an mpsc channel and applied in arrival order.
//!   Each accepted command is appended to the event log (replay-based
//!   recovery) and followed by a fresh snapshot publication.
//! * **Queries** never touch the channel: [`ServerHandle::handle_line`]
//!   answers them from the latest [`ServerSnapshot`] via the RCU hub,
//!   so reads stay wait-free while the decision loop is busy.
//!
//! Determinism: applying a `submit` first advances the engine to just
//! *before* the command's timestamp (`advance_before` stops at the
//! first burst `te >= s - EPS`, exactly the window in which the batch
//! loop would consume an arrival at `s`); a `fault` is queued without
//! advancing, because the batch engines never simulate past the last
//! arrival's drain and a queued fault is consumed at the right burst by
//! whichever later input moves the clock. An online run fed the same
//! trace is therefore byte-identical to `simulate_sharded*` — the
//! contract pinned by `tests/server_e2e.rs`.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use arena_cluster::Cluster;
use arena_obs::{Decision, MetricsRegistry, Obs};
use arena_perf::CostParams;
use arena_runtime::WorkerPool;
use arena_sched::{policy_by_name, PlanService};
use arena_sim::{Engine, EngineState, ShardPlan, SimConfig, SimResult};
use serde::Value;

use crate::protocol::{
    err_line, ok_line, parse_command, request_id, with_request_id, Command, Query,
};
use crate::snapshot::{answer_query, ServerSnapshot, SnapshotHub};

/// How the daemon maps real time onto the engine clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// The clock only moves when a command moves it (`submit`, `fault`,
    /// `advance`, `drain`). Fully deterministic — the mode every test
    /// uses.
    Virtual,
    /// The clock tracks wall time scaled by `speedup` (engine seconds
    /// per wall second); the daemon also advances on idle ticks.
    Wall {
        /// Engine seconds per elapsed wall second.
        speedup: f64,
    },
}

/// Daemon configuration. `new` picks the defaults used by the test
/// suites; everything is overridable by struct update.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Policy name (see `arena_sched::POLICY_NAMES`).
    pub policy: String,
    /// The cluster to schedule onto.
    pub cluster: Cluster,
    /// Simulation constants (round interval, overheads, horizon).
    pub sim: SimConfig,
    /// Decision-loop shard count; `None` reads `ARENA_SHARDS` like the
    /// batch path does.
    pub shards: Option<usize>,
    /// Worker threads for the parallel view/estimator paths.
    pub worker_threads: usize,
    /// Plan-service RNG seed.
    pub seed: u64,
    /// Clock mode.
    pub clock: ClockMode,
    /// Append every accepted mutating command line here (the replay
    /// log). `None` keeps the log in memory only.
    pub event_log: Option<PathBuf>,
    /// Write the decision log as JSONL here at shutdown.
    pub decision_log: Option<PathBuf>,
    /// Replay this event log before accepting new commands (recovery
    /// after a restart). A missing file is treated as empty.
    pub resume: Option<PathBuf>,
    /// Publish a snapshot every this many bursts while draining.
    pub publish_every: usize,
    /// Flight-recorder capacity: the telemetry plane retains the last
    /// this-many decisions for `dump`.
    pub flight_capacity: usize,
    /// Auto-dump the flight recorder here (overwrite) after every
    /// applied fault and at shutdown. `None` keeps dumps on demand.
    pub flight_log: Option<PathBuf>,
}

impl ServerConfig {
    /// A deterministic virtual-clock config with the workspace's
    /// standard seed and no logs on disk.
    #[must_use]
    pub fn new(policy: &str, cluster: Cluster, sim: SimConfig) -> Self {
        ServerConfig {
            policy: policy.to_string(),
            cluster,
            sim,
            shards: None,
            worker_threads: 1,
            seed: 17,
            clock: ClockMode::Virtual,
            event_log: None,
            decision_log: None,
            resume: None,
            publish_every: 64,
            flight_capacity: 256,
            flight_log: None,
        }
    }

    /// Pins the decision-loop shard count (ignores `ARENA_SHARDS`).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }
}

/// What the daemon thread returns when it stops.
pub struct ServerOutcome {
    /// The full simulation result, present iff the run drained before
    /// shutdown (`finish` requires a drained engine).
    pub result: Option<SimResult>,
    /// Final engine state at shutdown.
    pub state: EngineState,
    /// Every accepted mutating command line, replayed ones included —
    /// feeding these to a fresh daemon reproduces the run.
    pub event_log: Vec<String>,
    /// The decision log as JSON Lines.
    pub decisions_jsonl: String,
    /// The flight recorder's final contents as JSON Lines — the last
    /// `flight_capacity` decisions, byte-identical to the tail of
    /// `decisions_jsonl`.
    pub flight_jsonl: String,
}

enum Request {
    Apply {
        cmd: Command,
        line: String,
        reply: Sender<String>,
    },
    Shutdown {
        reply: Sender<String>,
    },
}

/// Cloneable handle to a running daemon: forwards mutating commands,
/// answers queries from the snapshot hub and live telemetry from the
/// metrics registry.
#[derive(Clone)]
pub struct ServerHandle {
    tx: Sender<Request>,
    hub: Arc<SnapshotHub>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<MetricsRegistry>,
}

impl ServerHandle {
    /// The snapshot hub, for readers that want raw snapshots instead of
    /// protocol responses.
    #[must_use]
    pub fn hub(&self) -> &SnapshotHub {
        &self.hub
    }

    /// The live metrics registry shared with the daemon's engine —
    /// counters, gauges, stage histograms and the flight recorder.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Processes one protocol line and returns the response line.
    /// Reject-and-continue: any parse or validation failure produces an
    /// `ok:false` response and changes nothing. A `watch` command
    /// answers with its first sample only — use
    /// [`ServerHandle::handle_line_sink`] for the streamed form.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        let trimmed = line.trim();
        let response = self.respond(trimmed);
        match request_id(trimmed) {
            Some(id) => with_request_id(&response, &id),
            None => response,
        }
    }

    /// Processes one protocol line, emitting one or more response lines
    /// through `emit` (which returns `false` to cancel the stream).
    /// Identical to [`ServerHandle::handle_line`] for every command
    /// except `watch`, which emits a fresh sample every `interval_s`
    /// seconds until `count` samples are out, shutdown is requested, or
    /// the sink cancels.
    pub fn handle_line_sink(&self, line: &str, emit: &mut dyn FnMut(&str) -> bool) {
        let trimmed = line.trim();
        if let Ok(Command::Watch {
            what,
            interval_s,
            count,
        }) = parse_command(trimmed)
        {
            let id = request_id(trimmed);
            let mut sample: u64 = 0;
            loop {
                let mut response = self.answer(&what);
                response = with_sample(&response, sample);
                if let Some(id) = &id {
                    response = with_request_id(&response, id);
                }
                if !emit(&response) {
                    return;
                }
                sample += 1;
                if count != 0 && sample >= count {
                    return;
                }
                if self.is_shutdown() {
                    return;
                }
                std::thread::sleep(Duration::from_secs_f64(interval_s));
                if self.is_shutdown() {
                    return;
                }
            }
        }
        let _ = emit(&self.handle_line(line));
    }

    /// Answers one read-only query: `metrics` from the live registry,
    /// everything else from the latest snapshot.
    fn answer(&self, q: &Query) -> String {
        match q {
            Query::Metrics => ok_line(vec![(
                "metrics".to_string(),
                Value::Str(self.metrics.expose()),
            )]),
            other => answer_query(other, &self.hub.load()),
        }
    }

    fn respond(&self, trimmed: &str) -> String {
        if trimmed.is_empty() {
            return err_line("empty line");
        }
        match parse_command(trimmed) {
            Err(e) => err_line(&e),
            Ok(Command::Query(q)) => self.answer(&q),
            Ok(Command::Watch { what, .. }) => with_sample(&self.answer(&what), 0),
            Ok(Command::Dump) => {
                let flight = self.metrics.flight();
                ok_line(vec![
                    ("total".to_string(), Value::U64(flight.total())),
                    ("capacity".to_string(), Value::U64(flight.capacity() as u64)),
                    (
                        "jsonl".to_string(),
                        Value::Str(flight.dump_jsonl(flight.capacity())),
                    ),
                ])
            }
            Ok(Command::Shutdown) => {
                self.shutdown.store(true, Ordering::SeqCst);
                let (reply, rx) = mpsc::channel();
                match self.tx.send(Request::Shutdown { reply }) {
                    Ok(()) => rx.recv().unwrap_or_else(|_| {
                        ok_line(vec![("stopping".to_string(), Value::Bool(true))])
                    }),
                    Err(_) => ok_line(vec![("stopping".to_string(), Value::Bool(true))]),
                }
            }
            Ok(cmd) => {
                let started = Instant::now();
                let (reply, rx) = mpsc::channel();
                let sent = self.tx.send(Request::Apply {
                    cmd,
                    line: trimmed.to_string(),
                    reply,
                });
                let response = match sent {
                    Ok(()) => rx
                        .recv()
                        .unwrap_or_else(|_| err_line("daemon stopped before replying")),
                    Err(_) => err_line("daemon is not running"),
                };
                // End-to-end command→decision latency: send, apply (which
                // runs the decision loop), publish, reply.
                self.metrics
                    .observe("server.command_seconds", started.elapsed().as_secs_f64());
                response
            }
        }
    }
}

/// Stamps the watch sample index onto a response line.
fn with_sample(response: &str, sample: u64) -> String {
    match serde_json::from_str(response) {
        Ok(Value::Object(mut fields)) => {
            fields.push(("sample".to_string(), Value::U64(sample)));
            serde_json::to_string(&Value::Object(fields)).expect("response serialises")
        }
        _ => response.to_string(),
    }
}

/// A running daemon plus its join handle.
pub struct Server {
    handle: ServerHandle,
    daemon: Option<JoinHandle<ServerOutcome>>,
}

impl Server {
    /// Validates the config and spawns the daemon thread.
    ///
    /// # Errors
    ///
    /// Returns a message when the policy name is unknown or
    /// `publish_every` is zero.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        if policy_by_name(&cfg.policy, cfg.worker_threads).is_none() {
            return Err(format!(
                "unknown policy `{}` (expected one of {:?})",
                cfg.policy,
                arena_sched::POLICY_NAMES
            ));
        }
        if cfg.publish_every == 0 {
            return Err("publish_every must be at least 1".to_string());
        }
        let (tx, rx) = mpsc::channel();
        let hub = Arc::new(SnapshotHub::new(ServerSnapshot {
            seq: 0,
            policy: cfg.policy.clone(),
            shards: 0,
            state: empty_state(),
            counters: BTreeMap::new(),
            decisions: Vec::new(),
        }));
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(MetricsRegistry::new(cfg.flight_capacity));
        let handle = ServerHandle {
            tx,
            hub: Arc::clone(&hub),
            shutdown: Arc::clone(&shutdown),
            metrics: Arc::clone(&metrics),
        };
        let daemon = std::thread::Builder::new()
            .name("arena-daemon".to_string())
            .spawn(move || daemon_main(cfg, rx, &hub, &shutdown, metrics))
            .map_err(|e| format!("failed to spawn daemon thread: {e}"))?;
        // Wait for the daemon's first publication (which happens after
        // any resume-log replay) so a caller never observes the seq-0
        // placeholder: `start` returning means the server is ready.
        while handle.hub.load().seq == 0 {
            if daemon.is_finished() {
                return Err("daemon exited before publishing a snapshot".to_string());
            }
            std::thread::yield_now();
        }
        Ok(Server {
            handle,
            daemon: Some(daemon),
        })
    }

    /// A cloneable handle to the daemon.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Requests shutdown (if not already requested) and waits for the
    /// daemon to flush and stop.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread itself panicked.
    #[must_use]
    pub fn join(mut self) -> ServerOutcome {
        if !self.handle.is_shutdown() {
            let _ = self.handle.handle_line("{\"cmd\":\"shutdown\"}");
        }
        self.daemon
            .take()
            .expect("daemon already joined")
            .join()
            .expect("daemon thread panicked")
    }
}

fn empty_state() -> EngineState {
    EngineState {
        now_s: 0.0,
        submitted: 0,
        pending: 0,
        queued: 0,
        starting: 0,
        running: 0,
        finished: 0,
        dropped: 0,
        input_closed: false,
        drained: false,
        pools: Vec::new(),
        jobs: Vec::new(),
    }
}

/// Incremental mirror of the observability decision log as immutable
/// chunks, so snapshot publication cost tracks *new* decisions only.
struct DecisionMirror {
    chunks: Vec<Arc<Vec<Decision>>>,
    total: usize,
}

impl DecisionMirror {
    fn new() -> Self {
        DecisionMirror {
            chunks: Vec::new(),
            total: 0,
        }
    }

    fn refresh(&mut self, obs: &Obs) {
        let fresh = obs.decisions_after(self.total);
        if !fresh.is_empty() {
            self.total += fresh.len();
            self.chunks.push(Arc::new(fresh));
        }
    }
}

struct EventLog {
    lines: Vec<String>,
    file: Option<std::fs::File>,
}

impl EventLog {
    fn open(path: Option<&PathBuf>) -> Result<Self, String> {
        let file = match path {
            Some(p) => Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(|e| format!("cannot open event log {}: {e}", p.display()))?,
            ),
            None => None,
        };
        Ok(EventLog {
            lines: Vec::new(),
            file,
        })
    }

    /// Records a replayed line in memory without re-appending it to the
    /// on-disk log (it is already there).
    fn record_replayed(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }

    fn append(&mut self, line: &str) {
        self.lines.push(line.to_string());
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }
}

fn daemon_main(
    cfg: ServerConfig,
    rx: Receiver<Request>,
    hub: &SnapshotHub,
    shutdown: &AtomicBool,
    metrics: Arc<MetricsRegistry>,
) -> ServerOutcome {
    let mut policy =
        policy_by_name(&cfg.policy, cfg.worker_threads).expect("policy validated in Server::start");
    let service = PlanService::new(&cfg.cluster, CostParams::default(), cfg.seed);
    let obs = Obs::enabled().with_metrics(Arc::clone(&metrics));
    let plan = match cfg.shards {
        Some(n) => ShardPlan::per_pool(&cfg.cluster)
            .with_shards(n)
            .with_workers(WorkerPool::new(cfg.worker_threads)),
        None => ShardPlan::from_env(&cfg.cluster),
    };
    let shards = plan.shards();
    let mut engine = Engine::new(
        &cfg.cluster,
        policy.as_mut(),
        &service,
        &cfg.sim,
        &obs,
        &plan,
    );

    let mut mirror = DecisionMirror::new();
    let mut log = EventLog::open(cfg.event_log.as_ref()).unwrap_or_else(|e| {
        // Reported through the first snapshot's state being empty is
        // useless; fail loudly instead — a daemon that silently drops
        // its replay log is worse than one that refuses to start.
        panic!("{e}");
    });
    let mut seq: u64 = 0;

    // Recovery: replay the prior run's accepted command stream.
    if let Some(path) = &cfg.resume {
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                // Tolerate a truncated trailing line or stray garbage:
                // skip anything unparseable and keep replaying.
                let Ok(cmd) = parse_command(trimmed) else {
                    continue;
                };
                if !cmd.is_mutating() {
                    continue;
                }
                if apply(
                    &mut engine,
                    &cfg,
                    &cmd,
                    hub,
                    &mut mirror,
                    &obs,
                    &mut seq,
                    shards,
                )
                .is_ok()
                {
                    log.record_replayed(trimmed);
                }
            }
        }
    }

    seq += 1;
    publish(hub, &engine, &obs, &mut mirror, seq, &cfg.policy, shards);

    let origin = Instant::now();
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Request::Apply { cmd, line, reply }) => {
                if let ClockMode::Wall { speedup } = cfg.clock {
                    engine.advance_before(origin.elapsed().as_secs_f64() * speedup);
                }
                match apply(
                    &mut engine,
                    &cfg,
                    &cmd,
                    hub,
                    &mut mirror,
                    &obs,
                    &mut seq,
                    shards,
                ) {
                    Ok(extra) => {
                        let faulted = matches!(cmd, Command::Fault(_));
                        log.append(&line);
                        seq += 1;
                        publish(hub, &engine, &obs, &mut mirror, seq, &cfg.policy, shards);
                        if faulted {
                            // Fault injection is exactly when an operator
                            // wants the recent decision tail preserved.
                            dump_flight(cfg.flight_log.as_ref(), &metrics);
                        }
                        let _ = reply.send(ok_line(extra));
                    }
                    Err(e) => {
                        let _ = reply.send(err_line(&e));
                    }
                }
            }
            Ok(Request::Shutdown { reply }) => {
                let _ = reply.send(ok_line(vec![("stopping".to_string(), Value::Bool(true))]));
                break;
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let ClockMode::Wall { speedup } = cfg.clock {
                    engine.advance_before(origin.elapsed().as_secs_f64() * speedup);
                    seq += 1;
                    publish(hub, &engine, &obs, &mut mirror, seq, &cfg.policy, shards);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    shutdown.store(true, Ordering::SeqCst);

    // Final snapshot so late readers observe the terminal state.
    seq += 1;
    publish(hub, &engine, &obs, &mut mirror, seq, &cfg.policy, shards);

    let state = engine.state();
    let drained = engine.drained();
    let result = drained.then(|| engine.finish());
    let decisions_jsonl = result.as_ref().map_or_else(
        || obs.report().decisions_jsonl(),
        |r| r.trace.decisions_jsonl(),
    );
    if let Some(path) = &cfg.decision_log {
        let _ = std::fs::write(path, &decisions_jsonl);
    }
    dump_flight(cfg.flight_log.as_ref(), &metrics);
    let flight = metrics.flight();
    let flight_jsonl = flight.dump_jsonl(flight.capacity());
    ServerOutcome {
        result,
        state,
        event_log: log.lines,
        decisions_jsonl,
        flight_jsonl,
    }
}

/// Overwrites the flight log with the recorder's current contents.
fn dump_flight(path: Option<&PathBuf>, metrics: &MetricsRegistry) {
    if let Some(p) = path {
        let flight = metrics.flight();
        let _ = std::fs::write(p, flight.dump_jsonl(flight.capacity()));
    }
}

/// Applies one mutating command. On `Err` the engine is untouched
/// (validation happens before any state change).
#[allow(clippy::too_many_arguments)]
fn apply(
    engine: &mut Engine<'_>,
    cfg: &ServerConfig,
    cmd: &Command,
    hub: &SnapshotHub,
    mirror: &mut DecisionMirror,
    obs: &Obs,
    seq: &mut u64,
    shards: usize,
) -> Result<Vec<(String, Value)>, String> {
    match cmd {
        Command::Submit(spec) => {
            if spec.submit_s.is_finite() {
                engine.advance_before(spec.submit_s);
            }
            engine
                .submit(spec.clone())
                .map_err(|e| e.to_string())
                .map(|()| {
                    vec![
                        ("job".to_string(), Value::U64(spec.id)),
                        ("now_s".to_string(), Value::F64(engine.now())),
                    ]
                })
        }
        Command::Fault(fault) => {
            // Queue without advancing. The batch engines stop at the
            // first idle point after the arrival stream is exhausted and
            // never simulate trailing faults; advancing here would burst
            // through round ticks the batch run does not have. A queued
            // fault is a next-event candidate, so whichever later input
            // (submit, advance, drain) moves the clock past `time_s`
            // consumes it in exactly the burst the batch run would.
            engine
                .inject_fault(fault.clone())
                .map_err(|e| e.to_string())
                .map(|()| vec![("now_s".to_string(), Value::F64(engine.now()))])
        }
        Command::Cancel { time_s, job } => {
            if !time_s.is_finite() {
                return Err(format!("non-finite cancel time {time_s}"));
            }
            engine.advance_before(*time_s);
            engine.drop_job(*job).map_err(|e| e.to_string()).map(|()| {
                vec![
                    ("job".to_string(), Value::U64(*job)),
                    ("now_s".to_string(), Value::F64(engine.now())),
                ]
            })
        }
        Command::Advance { to_s } => {
            if !to_s.is_finite() {
                return Err(format!("non-finite advance target {to_s}"));
            }
            engine.advance_before(*to_s);
            Ok(vec![("now_s".to_string(), Value::F64(engine.now()))])
        }
        Command::Drain => {
            engine.close_input();
            // Run to completion, republishing periodically so query
            // threads watch the drain progress.
            loop {
                let mut progressed = false;
                for _ in 0..cfg.publish_every {
                    if !engine.step() {
                        break;
                    }
                    progressed = true;
                }
                *seq += 1;
                publish(hub, engine, obs, mirror, *seq, &cfg.policy, shards);
                if !progressed || engine.drained() {
                    break;
                }
            }
            Ok(vec![
                ("drained".to_string(), Value::Bool(engine.drained())),
                ("now_s".to_string(), Value::F64(engine.now())),
            ])
        }
        Command::Query(_) | Command::Watch { .. } | Command::Dump | Command::Shutdown => {
            Err("internal: non-mutating command routed to daemon".to_string())
        }
    }
}

fn publish(
    hub: &SnapshotHub,
    engine: &Engine<'_>,
    obs: &Obs,
    mirror: &mut DecisionMirror,
    seq: u64,
    policy: &str,
    shards: usize,
) {
    let started = Instant::now();
    mirror.refresh(obs);
    hub.publish(ServerSnapshot {
        seq,
        policy: policy.to_string(),
        shards,
        state: engine.state(),
        counters: obs.counters_snapshot(),
        decisions: mirror.chunks.clone(),
    });
    // RCU snapshot publish latency (mirror refresh + state copy + swap).
    obs.observe("server.publish_seconds", started.elapsed().as_secs_f64());
}
