//! Resident scheduling daemon for the Arena reproduction.
//!
//! Where the batch entry points (`simulate_sharded*`) consume a whole
//! trace and return a [`arena_sim::SimResult`], this crate keeps the
//! incremental engine *resident*: a single daemon thread owns the
//! decision loop and applies newline-delimited JSON commands — job
//! submissions, node-health events, cancellations, clock advances —
//! as they arrive over TCP or stdin. Reads never wait on the writer:
//! after every applied command the daemon publishes an immutable
//! [`ServerSnapshot`] through an RCU cell
//! ([`arena_runtime::RcuCell`]), and query threads answer
//! status/queue/job/cluster/decision-log/metrics requests from the
//! latest snapshot wait-free.
//!
//! The daemon also carries an always-on **telemetry plane**
//! (DESIGN.md §14): a lock-free [`arena_obs::MetricsRegistry`] records
//! per-stage decision-loop latencies, per-shard gauges and a
//! flight-recorder ring of the last N decisions. `query metrics`
//! renders a deterministic Prometheus-style scrape, `watch` streams any
//! query on an interval, `dump` returns the flight recorder's contents,
//! and every command may carry an `"id"` echoed on its response.
//!
//! The load-bearing property is **online/batch equivalence**: feeding
//! a trace to the daemon one command at a time, in any interleaving
//! with queries, then draining, produces byte-identical output
//! (records, timelines, decision JSONL, metrics) to handing the whole
//! trace to `simulate_sharded_with_faults_traced`. `tests/server_e2e.rs`
//! pins this for every policy, with and without fault injection, and
//! the restart suite pins that replaying the daemon's event log
//! reproduces the same bytes after a mid-trace shutdown.
//!
//! Module map:
//!
//! * [`protocol`] — command/query grammar, parsing, response builders.
//! * [`snapshot`] — [`ServerSnapshot`], the [`SnapshotHub`] RCU
//!   publication point, and query answering.
//! * [`daemon`] — the writer thread, event-log recovery, lifecycle.
//! * [`net`] — TCP listener and stdin line loop.
//! * [`client`] — a small blocking client for tests and examples.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod net;
pub mod protocol;
pub mod snapshot;

pub use client::Client;
pub use daemon::{ClockMode, Server, ServerConfig, ServerHandle, ServerOutcome};
pub use net::{serve_lines, spawn_listener};
pub use protocol::{parse_command, Command, Query};
pub use snapshot::{answer_query, ServerSnapshot, SnapshotHub};
