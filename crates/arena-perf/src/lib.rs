//! Analytical performance model — the "hardware" of the reproduction.
//!
//! The paper measures plan performance on a physical testbed; this crate
//! replaces the testbed with a first-order analytical model that serves as
//! **ground truth** for everything above it (estimator, tuner, scheduler,
//! simulator). The model is built from well-understood components:
//!
//! * [`compute`] — per-stage computation time: a roofline with a per-kind
//!   achievable-efficiency cap, an additive kernel-launch overhead (which
//!   makes small per-GPU work inefficient, capping scale-up), and a
//!   tensor-parallel fragmentation penalty.
//! * [`collective`] — α–β costs for ring all-reduce, all-gather,
//!   point-to-point transfers and all-to-all, parameterised by the link a
//!   communicator group actually crosses (NVLink inside a node, InfiniBand
//!   across nodes).
//! * [`memory`] — per-GPU memory: FP16 weights + gradients + Adam state
//!   (16 bytes/parameter, divided by the tensor-parallel degree) plus
//!   pipeline-buffered activations.
//! * [`pipeline`] — the GPipe composition of Fig. 10: the first
//!   micro-batch traverses all stages, the remaining `B − 1` are
//!   bottlenecked by the slowest stage with communication overlapped,
//!   plus the per-stage data-parallel gradient synchronisation.
//! * [`noise`] — deterministic, seeded multiplicative measurement noise so
//!   "measuring" the same plan twice agrees but the estimator cannot be
//!   trivially exact.
//! * [`meter`] — GPU-second accounting for profiling activity, used to
//!   reproduce the overhead comparisons of Fig. 12(b)/13(b).
//! * [`oracle`] — the [`oracle::GroundTruth`] facade
//!   combining all of the above; "running" or "directly profiling" a plan
//!   goes through it.
//!
//! The model's constants ([`params::CostParams`]) were chosen so the
//! qualitative landscape matches the paper's observations: data
//! parallelism wins when memory allows and links are fast, tensor
//! parallelism is required when memory is tight but only cheap on NVLink,
//! and pipeline parallelism wins across slow fabrics.

pub mod collective;
pub mod compute;
pub mod memory;
pub mod meter;
pub mod noise;
pub mod oracle;
pub mod params;
pub mod pipeline;
pub mod target;

pub use meter::ProfilingMeter;
pub use noise::NoiseModel;
pub use oracle::GroundTruth;
pub use params::CostParams;
pub use pipeline::{Infeasible, PerfModel, PlanPerf, StageCost};
pub use target::HwTarget;
