//! The ground-truth facade: "running" and "profiling" plans.

use std::sync::Arc;

use arena_model::ModelGraph;
use arena_parallelism::{PipelinePlan, PlanSpace};

use crate::meter::ProfilingMeter;
use crate::noise::NoiseModel;
use crate::params::CostParams;
use crate::pipeline::{Infeasible, PerfModel, PlanPerf};
use crate::target::HwTarget;

/// Ground-truth performance: the analytical model plus deterministic
/// measurement noise and profiling-cost accounting.
///
/// Everything the paper does *on real hardware* goes through this type:
///
/// * [`measure`](GroundTruth::measure) — the performance a job actually
///   achieves when it runs (free: running a job is not profiling).
/// * [`profile_direct`](GroundTruth::profile_direct) — an Alpa-style
///   trial: compile + warm-up + measured iterations on the plan's full
///   allocation, charged to the [`ProfilingMeter`].
/// * [`explore`](GroundTruth::explore) — full adaptive-parallelism
///   exploration of a plan space: directly profiles every plan and
///   returns the best, exactly the expensive workflow of Fig. 2.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    model: PerfModel,
    noise: NoiseModel,
    meter: Arc<ProfilingMeter>,
}

impl GroundTruth {
    /// Creates ground truth with the given constants and noise seed.
    #[must_use]
    pub fn new(params: CostParams, seed: u64) -> Self {
        let noise = NoiseModel::new(params.noise_sigma, seed);
        GroundTruth {
            model: PerfModel::new(params),
            noise,
            meter: Arc::new(ProfilingMeter::new()),
        }
    }

    /// Ground truth without measurement noise (for tests and analyses).
    #[must_use]
    pub fn noiseless(params: CostParams) -> Self {
        GroundTruth {
            model: PerfModel::new(params),
            noise: NoiseModel::disabled(),
            meter: Arc::new(ProfilingMeter::new()),
        }
    }

    /// The underlying noise-free analytical model.
    #[must_use]
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// The shared profiling meter.
    #[must_use]
    pub fn meter(&self) -> &Arc<ProfilingMeter> {
        &self.meter
    }

    /// The cost constants in use.
    #[must_use]
    pub fn params(&self) -> &CostParams {
        &self.model.params
    }

    fn noise_key(
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        hw: &HwTarget,
    ) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            graph.name,
            global_batch,
            plan.label(),
            hw.name(),
            hw.packed_gpn
        )
    }

    /// Measures a plan as the hardware would: analytical cost perturbed by
    /// deterministic noise. No profiling cost is charged.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] as [`PerfModel::evaluate`] does.
    pub fn measure(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        hw: &HwTarget,
    ) -> Result<PlanPerf, Infeasible> {
        let mut perf = self.model.evaluate(graph, global_batch, plan, hw)?;
        let f = self
            .noise
            .factor(&Self::noise_key(graph, global_batch, plan, hw));
        perf.iter_time_s *= f;
        perf.throughput_sps /= f;
        Ok(perf)
    }

    /// Measures a plan at a fixed micro-batch count (no gradient
    /// accumulation), as a plain DDP-style runtime would execute it.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] as [`PerfModel::evaluate_at`] does.
    pub fn measure_at(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        hw: &HwTarget,
        b: usize,
    ) -> Result<PlanPerf, Infeasible> {
        let mut perf = self.model.evaluate_at(graph, global_batch, plan, hw, b)?;
        let f = self
            .noise
            .factor(&Self::noise_key(graph, global_batch, plan, hw));
        perf.iter_time_s *= f;
        perf.throughput_sps /= f;
        Ok(perf)
    }

    /// Directly profiles a plan on its full allocation (Alpa-style trial),
    /// charging compile + warm-up + measured iterations on every GPU.
    ///
    /// Infeasible plans still pay the compilation part of the trial — a
    /// real tuner discovers OOM only after building the executable.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] as [`measure`](Self::measure) does.
    pub fn profile_direct(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        hw: &HwTarget,
    ) -> Result<PlanPerf, Infeasible> {
        let p = self.params();
        let gpus = plan.total_gpus();
        match self.measure(graph, global_batch, plan, hw) {
            Ok(perf) => {
                let wall = p.direct_profile_setup_s + p.direct_profile_iters * perf.iter_time_s;
                self.meter.charge(wall, gpus);
                Ok(perf)
            }
            Err(e) => {
                self.meter.charge(p.direct_profile_setup_s, gpus);
                Err(e)
            }
        }
    }

    /// Full adaptive-parallelism exploration: directly profiles every plan
    /// in `space` and returns the best `(plan, perf)` by throughput.
    ///
    /// Returns `None` when no plan in the space is feasible.
    #[must_use]
    pub fn explore(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        space: &PlanSpace,
        hw: &HwTarget,
    ) -> Option<(PipelinePlan, PlanPerf)> {
        let mut best: Option<(PipelinePlan, PlanPerf)> = None;
        for plan in space.iter() {
            if let Ok(perf) = self.profile_direct(graph, global_batch, &plan, hw) {
                let better = best
                    .as_ref()
                    .is_none_or(|(_, b)| perf.throughput_sps > b.throughput_sps);
                if better {
                    best = Some((plan, perf));
                }
            }
        }
        best
    }

    /// The best plan in `space` by *true* performance, without charging
    /// the meter — the omniscient reference used to score estimation and
    /// tuning accuracy.
    #[must_use]
    pub fn best_silent(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        space: &PlanSpace,
        hw: &HwTarget,
    ) -> Option<(PipelinePlan, PlanPerf)> {
        let mut best: Option<(PipelinePlan, PlanPerf)> = None;
        for plan in space.iter() {
            if let Ok(perf) = self.measure(graph, global_batch, &plan, hw) {
                let better = best
                    .as_ref()
                    .is_none_or(|(_, b)| perf.throughput_sps > b.throughput_sps);
                if better {
                    best = Some((plan, perf));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_parallelism::determine_stages;

    fn setup() -> (GroundTruth, ModelGraph, HwTarget) {
        let gt = GroundTruth::new(CostParams::default(), 7);
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
        (gt, g, hw)
    }

    fn space(g: &ModelGraph, gpus: usize, stages: usize) -> PlanSpace {
        PlanSpace::new(determine_stages(g, gpus, stages).unwrap())
    }

    #[test]
    fn measurement_is_deterministic_and_noisy() {
        let (gt, g, hw) = setup();
        let plan = space(&g, 4, 2).iter().next().unwrap();
        let a = gt.measure(&g, 256, &plan, &hw).unwrap();
        let b = gt.measure(&g, 256, &plan, &hw).unwrap();
        assert_eq!(a.iter_time_s, b.iter_time_s);
        let exact = gt.model().evaluate(&g, 256, &plan, &hw).unwrap();
        assert_ne!(a.iter_time_s, exact.iter_time_s);
        let rel = (a.iter_time_s - exact.iter_time_s).abs() / exact.iter_time_s;
        assert!(rel < 0.1, "noise {rel} too large");
    }

    #[test]
    fn direct_profiling_charges_gpu_time() {
        let (gt, g, hw) = setup();
        let plan = space(&g, 4, 1).iter().next().unwrap();
        assert_eq!(gt.meter().gpu_seconds(), 0.0);
        let perf = gt.profile_direct(&g, 256, &plan, &hw).unwrap();
        let expected = (gt.params().direct_profile_setup_s
            + gt.params().direct_profile_iters * perf.iter_time_s)
            * 4.0;
        assert!((gt.meter().gpu_seconds() - expected).abs() < 1e-9);
    }

    #[test]
    fn infeasible_trials_still_cost_setup() {
        let gt = GroundTruth::new(CostParams::default(), 7);
        let g = ModelConfig::new(ModelFamily::Bert, 6.7, 128).build();
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A10, 2));
        let plan = space(&g, 2, 1).iter().next().unwrap(); // hopeless on 24 GiB
        let r = gt.profile_direct(&g, 128, &plan, &hw);
        assert!(r.is_err());
        assert!(gt.meter().gpu_seconds() > 0.0);
    }

    #[test]
    fn explore_finds_best_and_charges_everything() {
        let (gt, g, hw) = setup();
        let sp = space(&g, 4, 2);
        let (_, best) = gt.explore(&g, 256, &sp, &hw).unwrap();
        // Exploration profiled every plan in the space.
        assert_eq!(gt.meter().trials(), sp.len() as u64);
        // Silent best agrees with explored best (same noise model).
        let (_, silent) = gt.best_silent(&g, 256, &sp, &hw).unwrap();
        assert_eq!(best.throughput_sps, silent.throughput_sps);
    }

    #[test]
    fn noiseless_matches_model_exactly() {
        let gt = GroundTruth::noiseless(CostParams::default());
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
        let plan = space(&g, 4, 1).iter().next().unwrap();
        let a = gt.measure(&g, 256, &plan, &hw).unwrap();
        let b = gt.model().evaluate(&g, 256, &plan, &hw).unwrap();
        assert_eq!(a.iter_time_s, b.iter_time_s);
    }
}
