//! Deterministic measurement noise.

use std::hash::{Hash, Hasher};

/// Multiplicative, deterministic measurement noise.
///
/// Real profiling never returns the analytical truth: kernel scheduling,
/// clock throttling and network jitter perturb every measurement. The
/// noise is a pure function of `(seed, key)`, so measuring the same plan
/// on the same hardware twice agrees — but an estimator composing
/// *different* measurements (per-stage profiles, offline tables) cannot be
/// trivially exact against an end-to-end measurement.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    sigma: f64,
    seed: u64,
}

impl NoiseModel {
    /// Creates a noise model with relative standard deviation `sigma`.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!((0.0..0.5).contains(&sigma), "sigma {sigma} out of range");
        NoiseModel { sigma, seed }
    }

    /// A model that returns exactly 1.0 for every key.
    #[must_use]
    pub fn disabled() -> Self {
        NoiseModel {
            sigma: 0.0,
            seed: 0,
        }
    }

    /// The multiplicative factor for a measurement identified by `key`.
    ///
    /// Approximately `N(1, sigma)`, clamped to `1 ± 3 sigma` so a factor
    /// can never be negative.
    #[must_use]
    pub fn factor(&self, key: &str) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        // Sum of four uniforms approximates a Gaussian (Irwin–Hall).
        let mut z = 0.0;
        for salt in 0..4_u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (self.seed, salt, key).hash(&mut h);
            let u = (h.finish() >> 11) as f64 / (1_u64 << 53) as f64; // [0, 1)
            z += u - 0.5;
        }
        // Var of one uniform(-0.5, 0.5) is 1/12; of the sum, 1/3.
        let gauss = z * 3.0_f64.sqrt();
        (1.0 + self.sigma * gauss).clamp(1.0 - 3.0 * self.sigma, 1.0 + 3.0 * self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let n = NoiseModel::new(0.05, 42);
        assert_eq!(n.factor("abc"), n.factor("abc"));
        assert_ne!(n.factor("abc"), n.factor("abd"));
    }

    #[test]
    fn seed_changes_draws() {
        let a = NoiseModel::new(0.05, 1);
        let b = NoiseModel::new(0.05, 2);
        assert_ne!(a.factor("k"), b.factor("k"));
    }

    #[test]
    fn disabled_is_identity() {
        assert_eq!(NoiseModel::disabled().factor("anything"), 1.0);
    }

    #[test]
    fn factors_are_bounded_and_centred() {
        let n = NoiseModel::new(0.05, 7);
        let mut sum = 0.0;
        const COUNT: usize = 2000;
        for i in 0..COUNT {
            let f = n.factor(&format!("key{i}"));
            assert!(f > 0.8 && f < 1.2, "factor {f} out of bounds");
            sum += f;
        }
        let mean = sum / COUNT as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} biased");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn huge_sigma_rejected() {
        let _ = NoiseModel::new(0.9, 0);
    }
}
