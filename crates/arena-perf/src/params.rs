//! Tunable constants of the cost model.

use arena_model::OpKind;

/// All tunable constants of the analytical performance model.
///
/// The defaults are calibrated against public large-model training
/// benchmarks at the *qualitative* level the reproduction needs (see the
/// crate docs); every experiment uses [`CostParams::default`] unless it is
/// explicitly studying a parameter.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Achievable fraction of peak FLOPs for large kernels, per op kind.
    pub eff_conv: f64,
    /// Achievable efficiency of dense transformer layers.
    pub eff_xfmr: f64,
    /// Achievable efficiency of MoE layers (routing overhead included).
    pub eff_moe: f64,
    /// Achievable efficiency of embedding/lookup operators.
    pub eff_emb: f64,
    /// Achievable efficiency of classifier/LM heads.
    pub eff_head: f64,
    /// Multiplier applied on Volta-class devices (older tensor cores).
    pub volta_eff: f64,
    /// Additive kernel-launch/dispatch overhead per operator per
    /// micro-batch, seconds. This term caps strong scaling: as per-GPU
    /// work shrinks the overhead dominates.
    pub launch_overhead_s: f64,
    /// Tensor-parallel fragmentation penalty: efficiency is divided by
    /// `1 + frag * (tp - 1)`.
    pub tp_fragmentation: f64,
    /// Backward/forward FLOP ratio; total per-sample compute is
    /// `(1 + bwd_ratio) × flops_fwd`.
    pub bwd_ratio: f64,
    /// Bytes of optimizer + gradient state per parameter *byte* of FP16
    /// weights (weights + FP16 grads + FP32 master/m/v = 16 B per param =
    /// 8× the FP16 weight bytes).
    pub state_bytes_per_param_byte: f64,
    /// Fraction of the data-parallel gradient all-reduce hidden under the
    /// backward pass.
    pub dp_overlap: f64,
    /// Multiplier on boundary traffic when crossing stages requires
    /// resharding (all-gather) rather than plain send/recv.
    pub reshard_factor: f64,
    /// Fraction of device memory usable by a training job (the runtime,
    /// CUDA context and fragmentation claim the rest).
    pub usable_mem_frac: f64,
    /// Seconds of compilation + warm-up paid when directly profiling one
    /// parallelism plan on its full allocation (Alpa-style trial).
    pub direct_profile_setup_s: f64,
    /// Measured iterations per direct profiling trial.
    pub direct_profile_iters: f64,
    /// Seconds of single-device distributed-equivalent compilation paid
    /// per stage profile in the agile estimator (§5.1).
    pub agile_profile_setup_s: f64,
    /// Measured iterations per agile stage profile.
    pub agile_profile_iters: f64,
    /// Standard deviation of multiplicative measurement noise.
    pub noise_sigma: f64,
    /// Standard deviation of the noise baked into offline communication
    /// tables (NCCL profiling jitter at table-build time).
    pub table_sigma: f64,
    /// ZeRO-1 optimizer-state sharding: the FP32 master weights and Adam
    /// moments (12 of the 16 bytes/param) are partitioned across
    /// data-parallel replicas instead of replicated. Off by default — the
    /// paper's systems replicate optimizer state, and the DP-memory
    /// overestimation its ElasticFlow critique rests on (§8.3) assumes
    /// that; the `ablate_zero` experiment studies turning it on.
    pub zero1: bool,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            eff_conv: 0.50,
            eff_xfmr: 0.62,
            eff_moe: 0.55,
            eff_emb: 0.25,
            eff_head: 0.55,
            volta_eff: 0.88,
            launch_overhead_s: 25.0e-6,
            tp_fragmentation: 0.03,
            bwd_ratio: 2.0,
            state_bytes_per_param_byte: 8.0,
            dp_overlap: 0.3,
            reshard_factor: 1.5,
            usable_mem_frac: 0.92,
            direct_profile_setup_s: 60.0,
            direct_profile_iters: 5.0,
            agile_profile_setup_s: 25.0,
            agile_profile_iters: 5.0,
            noise_sigma: 0.03,
            table_sigma: 0.02,
            zero1: false,
        }
    }
}

impl CostParams {
    /// Achievable large-kernel efficiency for an operator kind.
    #[must_use]
    pub fn eff_for(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::ConvBlock => self.eff_conv,
            OpKind::TransformerLayer => self.eff_xfmr,
            OpKind::MoeLayer => self.eff_moe,
            OpKind::Embedding => self.eff_emb,
            OpKind::Head => self.eff_head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = CostParams::default();
        for kind in [
            OpKind::ConvBlock,
            OpKind::TransformerLayer,
            OpKind::MoeLayer,
            OpKind::Embedding,
            OpKind::Head,
        ] {
            let e = p.eff_for(kind);
            assert!(e > 0.0 && e < 1.0);
        }
        assert!(p.dp_overlap >= 0.0 && p.dp_overlap < 1.0);
        assert!(p.usable_mem_frac > 0.5 && p.usable_mem_frac <= 1.0);
        assert!(p.noise_sigma < 0.2);
    }
}
