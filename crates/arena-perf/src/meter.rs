//! GPU-time accounting for profiling activity.

use parking_lot::Mutex;

/// Accumulates the GPU-seconds spent on profiling.
///
/// The paper's overhead results (Fig. 12(b), Fig. 13(b)) compare how much
/// *GPU time* different strategies pay to acquire performance data:
/// direct profiling occupies a plan's whole allocation for compilation,
/// warm-up and measured iterations, while the agile estimator occupies a
/// single GPU per stage profile. Both paths charge this meter, so the
/// reported reductions are real accounting rather than assumed ratios.
#[derive(Debug, Default)]
pub struct ProfilingMeter {
    inner: Mutex<MeterState>,
}

#[derive(Debug, Default, Clone, Copy)]
struct MeterState {
    gpu_seconds: f64,
    wall_seconds: f64,
    trials: u64,
}

impl ProfilingMeter {
    /// A fresh meter with zero charge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one profiling trial: `wall_seconds` of wall-clock occupying
    /// `gpus` devices.
    pub fn charge(&self, wall_seconds: f64, gpus: usize) {
        debug_assert!(wall_seconds >= 0.0);
        let mut st = self.inner.lock();
        st.gpu_seconds += wall_seconds * gpus as f64;
        st.wall_seconds += wall_seconds;
        st.trials += 1;
    }

    /// Total GPU-seconds charged so far.
    #[must_use]
    pub fn gpu_seconds(&self) -> f64 {
        self.inner.lock().gpu_seconds
    }

    /// Total wall-clock seconds charged so far (trials are assumed
    /// sequential).
    #[must_use]
    pub fn wall_seconds(&self) -> f64 {
        self.inner.lock().wall_seconds
    }

    /// Number of trials charged.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.inner.lock().trials
    }

    /// Resets the meter to zero and returns the GPU-seconds it held.
    pub fn reset(&self) -> f64 {
        let mut st = self.inner.lock();
        let total = st.gpu_seconds;
        *st = MeterState::default();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let m = ProfilingMeter::new();
        m.charge(10.0, 4);
        m.charge(5.0, 1);
        assert_eq!(m.gpu_seconds(), 45.0);
        assert_eq!(m.wall_seconds(), 15.0);
        assert_eq!(m.trials(), 2);
    }

    #[test]
    fn reset_returns_and_clears() {
        let m = ProfilingMeter::new();
        m.charge(2.0, 2);
        assert_eq!(m.reset(), 4.0);
        assert_eq!(m.gpu_seconds(), 0.0);
        assert_eq!(m.trials(), 0);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(ProfilingMeter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || m.charge(1.0, 1))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.gpu_seconds(), 8.0);
    }
}
