//! Hardware targets: where a plan runs.

use arena_cluster::{Allocation, LinkKind, MeshShape, NodeSpec};

/// An effective communication channel: the α–β parameters a communicator
/// group actually sees after link selection and NIC sharing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Base per-message latency, seconds.
    pub latency_s: f64,
    /// Effective bandwidth, bytes per second.
    pub bandwidth_bps: f64,
}

impl Channel {
    /// A channel with a link's nominal parameters.
    #[must_use]
    pub fn from_link(link: LinkKind) -> Self {
        Channel {
            latency_s: link.latency_s(),
            bandwidth_bps: link.bandwidth_bps(),
        }
    }
}

/// The hardware a plan is evaluated against: a node class plus how densely
/// the allocation is packed onto nodes.
///
/// `packed_gpn` is the number of co-located GPUs a communicator group can
/// rely on: the node's GPU count, reduced when the allocation is spread
/// over partially-used nodes. Any group no larger than `packed_gpn` runs
/// over the intra-node link; larger groups cross the inter-node fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwTarget {
    /// The node class (GPU spec + links).
    pub node: NodeSpec,
    /// Co-located GPUs available to communicator groups.
    pub packed_gpn: usize,
}

impl HwTarget {
    /// A target assuming ideally packed allocations on this node class.
    #[must_use]
    pub fn new(node: NodeSpec) -> Self {
        HwTarget {
            node,
            packed_gpn: node.gpus_per_node.max(1),
        }
    }

    /// A target reflecting a concrete allocation's packing.
    #[must_use]
    pub fn with_mesh(node: NodeSpec, mesh: MeshShape) -> Self {
        HwTarget {
            node,
            packed_gpn: node.gpus_per_node.min(mesh.max_gpus_per_node).max(1),
        }
    }

    /// A target for an allocation on the owning cluster's node class.
    #[must_use]
    pub fn for_allocation(node: NodeSpec, alloc: &Allocation) -> Self {
        Self::with_mesh(node, alloc.mesh())
    }

    /// The link a communicator group of `group` GPUs crosses.
    #[must_use]
    pub fn link_for(&self, group: usize) -> LinkKind {
        if group <= self.packed_gpn {
            self.node.intra_link
        } else {
            self.node.inter_link
        }
    }

    /// The effective channel for a communicator group of `group` GPUs.
    ///
    /// A group contained in one node uses the intra-node link at full
    /// bandwidth. A group spanning nodes is bottlenecked by the node's
    /// single fabric adapter, which all co-located members share — the
    /// effective per-group bandwidth is the NIC divided by the co-located
    /// member count. This NIC-sharing effect is why wide data parallelism
    /// collapses on dense multi-GPU nodes with thin fabrics, and why the
    /// paper's workloads pipeline across nodes instead.
    #[must_use]
    pub fn channel_for(&self, group: usize) -> Channel {
        if group <= self.packed_gpn {
            Channel::from_link(self.node.intra_link)
        } else {
            let per_node = self.packed_gpn.min(group).max(1) as f64;
            let link = self.node.inter_link;
            Channel {
                latency_s: link.latency_s(),
                bandwidth_bps: link.bandwidth_bps() / per_node,
            }
        }
    }

    /// Display name, e.g. `"A100"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.node.gpu.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::GpuSpec;

    #[test]
    fn link_selection() {
        let t = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
        assert_eq!(t.link_for(2), LinkKind::NvLink3);
        assert_eq!(t.link_for(4), LinkKind::NvLink3);
        assert_eq!(t.link_for(8), LinkKind::IbCx5);
    }

    #[test]
    fn sparse_mesh_degrades_locality() {
        let node = NodeSpec::with_default_links(GpuSpec::A100, 4);
        let sparse = MeshShape {
            nodes: 4,
            max_gpus_per_node: 1,
            total_gpus: 4,
        };
        let t = HwTarget::with_mesh(node, sparse);
        // Even a 2-GPU group must cross InfiniBand when GPUs are scattered.
        assert_eq!(t.link_for(2), LinkKind::IbCx5);
    }

    #[test]
    fn cross_node_channel_shares_the_nic() {
        let t = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A40, 2));
        let intra = t.channel_for(2);
        let inter = t.channel_for(8);
        assert_eq!(intra, Channel::from_link(LinkKind::Pcie4));
        // Two co-located GPUs share one ConnectX-5.
        assert!((inter.bandwidth_bps - LinkKind::IbCx5.bandwidth_bps() / 2.0).abs() < 1.0);
    }

    #[test]
    fn for_allocation_uses_actual_packing() {
        let node = NodeSpec::with_default_links(GpuSpec::A40, 2);
        let alloc = Allocation {
            pool: arena_cluster::GpuTypeId(0),
            node_gpus: vec![(0, 2), (1, 2)],
        };
        let t = HwTarget::for_allocation(node, &alloc);
        assert_eq!(t.packed_gpn, 2);
        assert_eq!(t.link_for(2), LinkKind::Pcie4);
        assert_eq!(t.link_for(4), LinkKind::IbCx5);
    }
}
