//! Per-GPU memory model.

use std::ops::Range;

use arena_model::ModelGraph;

use crate::params::CostParams;

/// Per-GPU memory (bytes) of one pipeline stage.
///
/// * Static state — FP16 weights, FP16 gradients and FP32 Adam state
///   (16 bytes per parameter, i.e. 8× the FP16 weight bytes) — is sharded
///   by tensor parallelism only: every data-parallel replica keeps a full
///   copy. This is why data parallelism is the memory-hungry choice and
///   why ElasticFlow's DP-only profiles overestimate large jobs' minimum
///   GPU share (§8.3).
/// * Activations: each in-flight micro-batch buffers its stage input
///   (GPipe retains one input per micro-batch for recomputation), and the
///   live micro-batch holds the full intermediate footprint.
///
/// `mb_samples` is the stage's micro-batch size in samples (already
/// divided by the data-parallel degree); `microbatches` is the pipeline's
/// in-flight micro-batch count `B`.
#[must_use]
pub fn stage_memory_bytes(
    p: &CostParams,
    graph: &ModelGraph,
    range: Range<usize>,
    mb_samples: f64,
    tp: usize,
    microbatches: usize,
) -> f64 {
    let (fixed, scalable) = stage_memory_parts_dp(p, graph, range, mb_samples, 1, tp, microbatches);
    fixed + scalable
}

/// The stage memory split into a *fixed* part (parameter/optimizer state
/// plus input buffers, which do not shrink under gradient accumulation)
/// and a *scalable* part (live activations, proportional to the
/// micro-batch size).
///
/// Input buffering is fixed because `B × mb` is the per-replica batch: as
/// accumulation raises `B`, each buffered input shrinks proportionally.
#[must_use]
pub fn stage_memory_parts(
    p: &CostParams,
    graph: &ModelGraph,
    range: Range<usize>,
    mb_samples: f64,
    tp: usize,
    microbatches: usize,
) -> (f64, f64) {
    stage_memory_parts_dp(p, graph, range, mb_samples, 1, tp, microbatches)
}

/// [`stage_memory_parts`] with an explicit data-parallel degree, which
/// only matters under ZeRO-1 ([`CostParams::zero1`]): the optimizer state
/// (FP32 master weights and Adam moments, 12 of the 16 bytes/param) is
/// then sharded across the `dp` replicas rather than replicated.
#[must_use]
pub fn stage_memory_parts_dp(
    p: &CostParams,
    graph: &ModelGraph,
    range: Range<usize>,
    mb_samples: f64,
    dp: usize,
    tp: usize,
    microbatches: usize,
) -> (f64, f64) {
    let tpf = tp as f64;
    let ops = &graph.ops[range.clone()];
    let param_bytes: f64 = ops.iter().map(arena_model::Operator::param_bytes).sum();
    // Of the 8x FP16-weight-bytes of training state, weights + FP16 grads
    // are 2x and the optimizer state is the remaining 6x.
    let static_bytes = if p.zero1 {
        let weights_grads = 2.0 * param_bytes / tpf;
        let optimizer = (p.state_bytes_per_param_byte - 2.0) * param_bytes / (tpf * dp as f64);
        weights_grads + optimizer
    } else {
        p.state_bytes_per_param_byte * param_bytes / tpf
    };

    let live_acts: f64 = ops.iter().map(|o| o.act_bytes).sum::<f64>() * mb_samples;
    let input_bytes = if range.start == 0 {
        // Raw input data is negligible next to hidden activations.
        0.0
    } else {
        graph.ops[range.start - 1].out_bytes * mb_samples
    };
    let buffered = microbatches as f64 * input_bytes;

    (static_bytes + buffered / tpf, live_acts / tpf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn bert26() -> ModelGraph {
        ModelConfig::new(ModelFamily::Bert, 2.6, 256).build()
    }

    #[test]
    fn tensor_parallelism_shards_memory() {
        let p = CostParams::default();
        let g = bert26();
        let m1 = stage_memory_bytes(&p, &g, 0..g.len(), 8.0, 1, 4);
        let m4 = stage_memory_bytes(&p, &g, 0..g.len(), 8.0, 4, 4);
        assert!((m1 / m4 - 4.0).abs() < 0.2, "ratio {}", m1 / m4);
    }

    #[test]
    fn static_state_dominates_for_big_models_small_batches() {
        let p = CostParams::default();
        let g = bert26();
        let m = stage_memory_bytes(&p, &g, 0..g.len(), 1.0, 1, 4);
        let static_expected = p.state_bytes_per_param_byte * g.total_param_bytes();
        assert!(m > static_expected);
        assert!(m < 1.2 * static_expected);
    }

    #[test]
    fn bert26_needs_tp_on_v100_class_memory() {
        // The paper's Fig. 3(b) observation: BERT-2.6B cannot run data-
        // parallel-only within 32 GiB but fits with TP=2.
        let p = CostParams::default();
        let g = bert26();
        let budget = 32.0 * (1 << 30) as f64 * p.usable_mem_frac;
        let dp_only = stage_memory_bytes(&p, &g, 0..g.len(), 8.0, 1, 4);
        let tp2 = stage_memory_bytes(&p, &g, 0..g.len(), 8.0, 2, 4);
        assert!(dp_only > budget, "DP-only unexpectedly fits");
        assert!(tp2 < budget, "TP=2 unexpectedly does not fit");
    }

    #[test]
    fn later_stage_pays_input_buffering() {
        let p = CostParams::default();
        let g = bert26();
        let cut = g.len() / 2;
        let no_buffer = stage_memory_bytes(&p, &g, cut..g.len(), 4.0, 1, 0);
        let buffered = stage_memory_bytes(&p, &g, cut..g.len(), 4.0, 1, 16);
        assert!(buffered > no_buffer);
    }

    #[test]
    fn zero1_shards_optimizer_state_across_replicas() {
        let mut p = CostParams::default();
        let g = bert26();
        let (replicated, _) = stage_memory_parts_dp(&p, &g, 0..g.len(), 8.0, 8, 1, 4);
        p.zero1 = true;
        let (fixed8, _) = stage_memory_parts_dp(&p, &g, 0..g.len(), 8.0, 8, 1, 4);
        let (fixed1, _) = stage_memory_parts_dp(&p, &g, 0..g.len(), 8.0, 1, 1, 4);
        // dp=1 ZeRO degenerates to replication; dp=8 shards 6/8 of the
        // training state (weights+grads stay, optimizer shards).
        assert!((fixed1 - replicated).abs() / replicated < 1e-9);
        let expected = replicated * (2.0 + 6.0 / 8.0) / 8.0;
        assert!(
            (fixed8 - expected).abs() / expected < 1e-9,
            "fixed8 {fixed8} vs expected {expected}"
        );
        // BERT-2.6B pure-DP becomes feasible on 32 GiB with ZeRO-1 at dp=8.
        let budget = 32.0 * (1 << 30) as f64 * p.usable_mem_frac;
        assert!(fixed8 < budget && replicated > budget);
    }

    #[test]
    fn activations_scale_with_microbatch() {
        let p = CostParams::default();
        let g = ModelConfig::new(ModelFamily::WideResNet, 1.0, 512).build();
        let m1 = stage_memory_bytes(&p, &g, 0..g.len(), 1.0, 1, 4);
        let m64 = stage_memory_bytes(&p, &g, 0..g.len(), 256.0, 1, 4);
        // WideResNet is activation-heavy: 256x the micro-batch should blow
        // memory up by far more than 2x.
        assert!(m64 > 2.0 * m1);
    }
}
