//! α–β cost model for communication collectives.
//!
//! Every cost is `steps × α + traffic / β` over an effective
//! [`Channel`] (link parameters after NIC sharing), with traffic the
//! bytes each participant moves under the bandwidth-optimal (ring)
//! algorithm.

use crate::target::Channel;

/// Ring all-reduce of `bytes` over `n` participants.
///
/// Each rank sends `2 (n − 1) / n × bytes` in `2 (n − 1)` latency-bound
/// steps. Degenerates to zero for `n <= 1`.
#[must_use]
#[inline]
pub fn allreduce(bytes: f64, n: usize, ch: Channel) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    // `steps` doubles as the traffic multiplier: it is exactly the
    // `2 (n - 1)` the bandwidth term used to recompute.
    let steps = 2.0 * (nf - 1.0);
    steps * ch.latency_s + steps / nf * bytes / ch.bandwidth_bps
}

/// Ring all-gather of `bytes` (total gathered payload) over `n` ranks.
#[must_use]
#[inline]
pub fn allgather(bytes: f64, n: usize, ch: Channel) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    (nf - 1.0) * ch.latency_s + (nf - 1.0) / nf * bytes / ch.bandwidth_bps
}

/// Point-to-point transfer of `bytes` (pipeline send/recv).
#[must_use]
#[inline]
pub fn p2p(bytes: f64, ch: Channel) -> f64 {
    if bytes <= 0.0 {
        return 0.0;
    }
    ch.latency_s + bytes / ch.bandwidth_bps
}

/// All-to-all of `bytes` (each rank's total payload) over `n` ranks.
#[must_use]
#[inline]
pub fn alltoall(bytes: f64, n: usize, ch: Channel) -> f64 {
    if n <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    (nf - 1.0) * ch.latency_s + (nf - 1.0) / nf * bytes / ch.bandwidth_bps
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::LinkKind;

    fn nv() -> Channel {
        Channel::from_link(LinkKind::NvLink3)
    }

    fn ib() -> Channel {
        Channel::from_link(LinkKind::IbCx5)
    }

    #[test]
    fn degenerate_groups_are_free() {
        assert_eq!(allreduce(1e9, 1, nv()), 0.0);
        assert_eq!(allgather(1e9, 0, nv()), 0.0);
        assert_eq!(alltoall(1e9, 1, nv()), 0.0);
        assert_eq!(p2p(0.0, nv()), 0.0);
        assert_eq!(allreduce(0.0, 8, nv()), 0.0);
    }

    #[test]
    fn allreduce_grows_with_volume() {
        assert!(allreduce(2e9, 4, nv()) > allreduce(1e9, 4, nv()));
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_in_n() {
        // For large volumes, ring all-reduce cost approaches 2 x bytes/BW
        // regardless of n; n=64 must cost < 2x of n=2.
        let small_n = allreduce(10e9, 2, nv());
        let large_n = allreduce(10e9, 64, nv());
        assert!(large_n < 2.0 * small_n);
        assert!(large_n > small_n);
    }

    #[test]
    fn slower_links_cost_more() {
        assert!(allreduce(1e9, 4, ib()) > 10.0 * allreduce(1e9, 4, nv()));
    }

    #[test]
    fn p2p_is_latency_plus_bandwidth() {
        let t = p2p(10e9, ib());
        let expected = ib().latency_s + 10e9 / ib().bandwidth_bps;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn allreduce_costs_about_twice_allgather() {
        let ar = allreduce(8e9, 8, nv());
        let ag = allgather(8e9, 8, nv());
        assert!(ar / ag > 1.8 && ar / ag < 2.2);
    }

    #[test]
    fn shared_nic_halves_throughput() {
        let full = ib();
        let shared = Channel {
            latency_s: full.latency_s,
            bandwidth_bps: full.bandwidth_bps / 2.0,
        };
        let t_full = allreduce(4e9, 8, full);
        let t_shared = allreduce(4e9, 8, shared);
        assert!(t_shared / t_full > 1.9 && t_shared / t_full < 2.1);
    }
}
