//! End-to-end plan evaluation: the GPipe composition of Fig. 10.

use arena_model::ModelGraph;
use arena_parallelism::{PipelinePlan, StageAssignment};

use crate::collective;
use crate::compute::stage_compute_time;
use crate::memory::stage_memory_parts_dp;
use crate::params::CostParams;
use crate::target::HwTarget;

/// Why a plan cannot run on the given hardware.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasible {
    /// A stage's per-GPU footprint exceeds usable device memory.
    OutOfMemory {
        /// Index of the offending stage.
        stage: usize,
        /// Bytes the stage needs per GPU.
        needed: f64,
        /// Usable bytes per GPU.
        budget: f64,
    },
    /// The global batch cannot feed `B × dp` micro-batch slots with at
    /// least one sample each.
    MicrobatchTooSmall {
        /// Index of the offending stage.
        stage: usize,
        /// The stage's data-parallel degree.
        dp: usize,
    },
    /// The plan has no stages or does not cover the model.
    InvalidPlan,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasible::OutOfMemory {
                stage,
                needed,
                budget,
            } => write!(
                f,
                "stage {stage} needs {:.1} GiB but only {:.1} GiB usable",
                needed / (1 << 30) as f64,
                budget / (1 << 30) as f64
            ),
            Infeasible::MicrobatchTooSmall { stage, dp } => {
                write!(f, "stage {stage} with dp={dp} starves its micro-batches")
            }
            Infeasible::InvalidPlan => write!(f, "plan does not cover the model"),
        }
    }
}

impl std::error::Error for Infeasible {}

/// Cost breakdown of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// Micro-batch size in samples on one replica.
    pub mb_samples: f64,
    /// Forward + backward computation per micro-batch, seconds.
    pub compute_s: f64,
    /// Tensor-parallel activation collectives per micro-batch, seconds.
    pub tp_comm_s: f64,
    /// Expert-dispatch all-to-all per micro-batch, seconds.
    pub dispatch_s: f64,
    /// Activation transfer from the previous stage per micro-batch,
    /// seconds (zero for stage 0).
    pub boundary_in_s: f64,
    /// End-of-iteration data-parallel gradient all-reduce, seconds.
    pub dp_sync_s: f64,
    /// Per-GPU memory footprint, bytes.
    pub mem_bytes: f64,
}

impl StageCost {
    /// The stage's per-micro-batch latency including communication.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.compute_s + self.tp_comm_s + self.dispatch_s + self.boundary_in_s
    }

    /// The stage's per-micro-batch busy time excluding the (overlappable)
    /// boundary transfer.
    #[must_use]
    pub fn busy_s(&self) -> f64 {
        self.compute_s + self.tp_comm_s + self.dispatch_s
    }

    /// The stage's steady-state occupancy: boundary transfers overlap
    /// with computation, but the link is a serial resource — a stage can
    /// never stream micro-batches faster than its inbound transfer.
    #[must_use]
    pub fn steady_s(&self) -> f64 {
        self.busy_s().max(self.boundary_in_s)
    }
}

/// Evaluated performance of a plan on a hardware target.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPerf {
    /// Seconds per training iteration (one global batch).
    pub iter_time_s: f64,
    /// Training throughput in samples per second.
    pub throughput_sps: f64,
    /// Index of the steady-state bottleneck stage.
    pub bottleneck: usize,
    /// Largest per-GPU memory footprint across stages, bytes.
    pub max_mem_bytes: f64,
    /// Effective micro-batches per iteration (>= the GPipe default when
    /// gradient accumulation kicked in).
    pub microbatches: usize,
    /// Per-stage cost breakdown.
    pub stages: Vec<StageCost>,
}

/// The analytical performance model (exact, noise-free).
#[derive(Debug, Clone, Default)]
pub struct PerfModel {
    /// Model constants.
    pub params: CostParams,
}

impl PerfModel {
    /// Creates a model with the given constants.
    #[must_use]
    pub fn new(params: CostParams) -> Self {
        PerfModel { params }
    }

    /// Full cost breakdown of stage `idx` of `plan` at the plan's default
    /// micro-batch count (`B = 4 × stages`).
    ///
    /// Exposed separately because the agile estimator profiles stages
    /// individually (§5.1).
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] if the stage starves its micro-batches or
    /// exceeds device memory.
    pub fn stage_cost(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        idx: usize,
        hw: &HwTarget,
    ) -> Result<StageCost, Infeasible> {
        self.stage_cost_at(graph, global_batch, plan, idx, hw, plan.microbatches())
    }

    /// [`stage_cost`](Self::stage_cost) at an explicit micro-batch count
    /// `b` (gradient accumulation raises `b` above the GPipe default).
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] if the stage starves its micro-batches or
    /// exceeds device memory.
    pub fn stage_cost_at(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        idx: usize,
        hw: &HwTarget,
        b: usize,
    ) -> Result<StageCost, Infeasible> {
        let p = &self.params;
        let st: &StageAssignment = &plan.stages[idx];
        let (dp, tp) = (st.plan.dp, st.plan.tp);
        let mb = global_batch as f64 / (b * dp) as f64;
        if mb < 1.0 {
            return Err(Infeasible::MicrobatchTooSmall { stage: idx, dp });
        }

        let gpu = &hw.node.gpu;
        let compute_s = stage_compute_time(p, graph, st.op_range.clone(), mb, tp, gpu);

        let ops = &graph.ops[st.op_range.clone()];
        // One pass over the stage's operators for every per-op
        // reduction. Each accumulator still sums its own terms in the
        // same left-to-right op order as the separate passes did, so
        // the totals are bitwise unchanged.
        let mut tp_bytes_raw = 0.0_f64;
        let mut dispatch_bytes_raw = 0.0_f64;
        let mut param_bytes = 0.0_f64;
        for o in ops {
            tp_bytes_raw += o.tp_comm_bytes;
            dispatch_bytes_raw += o.dispatch_bytes;
            param_bytes += o.param_bytes();
        }
        // Forward + backward activation collectives for tensor sharding.
        let tp_payload = tp_bytes_raw * mb * 2.0;
        let tp_comm_s = collective::allreduce(tp_payload, tp, hw.channel_for(tp));

        // Expert dispatch spans the whole stage group (GShard shards
        // experts across every device of the stage).
        let group = st.gpus();
        let dispatch_payload = dispatch_bytes_raw * mb * 2.0;
        let dispatch_s = collective::alltoall(dispatch_payload, group, hw.channel_for(group));

        // Activation transfer from the previous stage: the full global
        // micro-batch crosses, resharded when layouts differ.
        let boundary_in_s = if idx == 0 {
            0.0
        } else {
            let prev = &plan.stages[idx - 1];
            let bytes = graph.ops[st.op_range.start - 1].out_bytes * global_batch as f64 / b as f64;
            let ch = hw.channel_for(plan.total_gpus());
            let factor = if prev.plan == st.plan && tp == 1 {
                1.0
            } else {
                p.reshard_factor
            };
            collective::p2p(bytes * factor, ch)
        };

        // Gradient all-reduce across replicas of this stage's TP shards.
        let grad_bytes = param_bytes / tp as f64;
        let dp_sync_s = collective::allreduce(grad_bytes, dp, hw.channel_for(group));

        let (fixed_mem, scalable_mem) =
            stage_memory_parts_dp(p, graph, st.op_range.clone(), mb, dp, tp, b);
        let mem_bytes = fixed_mem + scalable_mem;
        let budget = gpu.mem_bytes() as f64 * p.usable_mem_frac;
        if mem_bytes > budget {
            return Err(Infeasible::OutOfMemory {
                stage: idx,
                needed: mem_bytes,
                budget,
            });
        }

        Ok(StageCost {
            mb_samples: mb,
            compute_s,
            tp_comm_s,
            dispatch_s,
            boundary_in_s,
            dp_sync_s,
            mem_bytes,
        })
    }

    /// Evaluates a full plan on a hardware target (Fig. 10 composition).
    ///
    /// Iteration time is the first micro-batch's traversal of every stage
    /// plus `B − 1` rounds of the slowest stage (boundary communication
    /// overlaps in steady state), plus the non-overlapped fraction of the
    /// slowest data-parallel gradient synchronisation.
    ///
    /// # Examples
    ///
    /// ```
    /// use arena_cluster::{GpuSpec, NodeSpec};
    /// use arena_model::zoo::{ModelConfig, ModelFamily};
    /// use arena_parallelism::{determine_stages, PlanSpace};
    /// use arena_perf::{HwTarget, PerfModel};
    ///
    /// let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    /// let space = PlanSpace::new(determine_stages(&graph, 4, 2).unwrap());
    /// let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    /// let model = PerfModel::default();
    /// let perf = model.evaluate(&graph, 256, &space.iter().next().unwrap(), &hw).unwrap();
    /// assert!(perf.throughput_sps > 0.0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] for structurally invalid, memory-infeasible
    /// or batch-starved plans.
    pub fn evaluate(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        hw: &HwTarget,
    ) -> Result<PlanPerf, Infeasible> {
        if !plan.is_valid_for(graph) {
            return Err(Infeasible::InvalidPlan);
        }
        // Gradient accumulation: try doubled micro-batch counts (which
        // shrink per-micro-batch memory and the pipeline bubble, at the
        // cost of launch overhead and boundary-link saturation) and keep
        // the fastest feasible variant. Batch starvation only worsens
        // with more micro-batches, so it ends the escalation.
        let mut best: Option<PlanPerf> = None;
        let mut last = Infeasible::InvalidPlan;
        for factor in [1_usize, 2, 4, 8, 16] {
            let b = plan.microbatches() * factor;
            match self.evaluate_at(graph, global_batch, plan, hw, b) {
                Ok(perf) => {
                    if best
                        .as_ref()
                        .is_none_or(|p| perf.iter_time_s < p.iter_time_s)
                    {
                        best = Some(perf);
                    }
                }
                Err(e @ Infeasible::MicrobatchTooSmall { .. }) => {
                    last = if factor == 1 { e } else { last };
                    break;
                }
                Err(e) => last = e,
            }
        }
        best.ok_or(last)
    }

    /// [`evaluate`](Self::evaluate) at a fixed micro-batch count.
    ///
    /// # Errors
    ///
    /// Returns [`Infeasible`] for structurally invalid, memory-infeasible
    /// or batch-starved plans.
    pub fn evaluate_at(
        &self,
        graph: &ModelGraph,
        global_batch: usize,
        plan: &PipelinePlan,
        hw: &HwTarget,
        b: usize,
    ) -> Result<PlanPerf, Infeasible> {
        let mut stages = Vec::with_capacity(plan.num_stages());
        for idx in 0..plan.num_stages() {
            stages.push(self.stage_cost_at(graph, global_batch, plan, idx, hw, b)?);
        }

        let fill: f64 = stages.iter().map(StageCost::latency_s).sum();
        let (bottleneck, steady) = stages
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.steady_s()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("plan has at least one stage");
        let sync = stages.iter().map(|s| s.dp_sync_s).fold(0.0_f64, f64::max)
            * (1.0 - self.params.dp_overlap);

        let iter_time_s = fill + (b as f64 - 1.0) * steady + sync;
        let max_mem_bytes = stages.iter().map(|s| s.mem_bytes).fold(0.0, f64::max);

        Ok(PlanPerf {
            iter_time_s,
            throughput_sps: global_batch as f64 / iter_time_s,
            bottleneck,
            max_mem_bytes,
            microbatches: b,
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, NodeSpec};
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_parallelism::{determine_stages, PlanSpace, StagePlan};

    fn a100x4() -> HwTarget {
        HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4))
    }

    fn plan_for(graph: &ModelGraph, gpus: usize, stages: usize) -> PlanSpace {
        PlanSpace::new(determine_stages(graph, gpus, stages).unwrap())
    }

    fn dp_only_plan(graph: &ModelGraph, gpus: usize, stages: usize) -> PipelinePlan {
        let part = determine_stages(graph, gpus, stages).unwrap();
        let plan_stages = part
            .ranges
            .iter()
            .zip(&part.gpus)
            .map(|(r, &g)| StageAssignment {
                op_range: r.clone(),
                plan: StagePlan::dp_only(g),
            })
            .collect();
        PipelinePlan {
            stages: plan_stages,
        }
    }

    #[test]
    fn evaluate_returns_consistent_perf() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let plan = dp_only_plan(&g, 4, 1);
        let perf = m.evaluate(&g, 256, &plan, &a100x4()).unwrap();
        assert!(perf.iter_time_s > 0.0);
        assert!((perf.throughput_sps - 256.0 / perf.iter_time_s).abs() < 1e-9);
        assert_eq!(perf.stages.len(), 1);
        assert!(perf.max_mem_bytes > 0.0);
    }

    #[test]
    fn more_gpus_are_faster_within_a_node() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 0.76, 128).build();
        let hw = a100x4();
        let t1 = m
            .evaluate(&g, 128, &dp_only_plan(&g, 1, 1), &hw)
            .unwrap()
            .iter_time_s;
        let t4 = m
            .evaluate(&g, 128, &dp_only_plan(&g, 4, 1), &hw)
            .unwrap()
            .iter_time_s;
        assert!(t4 < t1, "t1={t1} t4={t4}");
        assert!(t4 > t1 / 4.5, "scaling is implausibly superlinear");
    }

    #[test]
    fn oversized_dp_starves_microbatches() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 0.76, 128).build();
        // dp=64 with B=4 requires 256 samples but the batch has 128.
        let plan = dp_only_plan(&g, 64, 1);
        assert_eq!(
            m.evaluate(&g, 128, &plan, &a100x4()),
            Err(Infeasible::MicrobatchTooSmall { stage: 0, dp: 64 })
        );
    }

    #[test]
    fn big_model_dp_only_goes_oom() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 6.7, 128).build();
        let plan = dp_only_plan(&g, 4, 1);
        assert!(matches!(
            m.evaluate(&g, 128, &plan, &a100x4()),
            Err(Infeasible::OutOfMemory { .. })
        ));
    }

    #[test]
    fn some_plan_fits_big_model_via_pipeline() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 6.7, 128).build();
        let hw = a100x4();
        let feasible = plan_for(&g, 8, 4)
            .iter()
            .filter(|p| m.evaluate(&g, 128, p, &hw).is_ok())
            .count();
        assert!(feasible > 0, "no feasible plan for BERT-6.7B on 8xA100");
    }

    #[test]
    fn pipeline_beats_dp_across_slow_fabric() {
        // On 2-GPU-per-node PCIe + InfiniBand A40 servers, an 8-GPU job
        // should prefer pipelining over pure data parallelism, whose
        // gradient all-reduce crosses the fabric with the full model.
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A40, 2));
        let dp = m
            .evaluate(&g, 256, &dp_only_plan(&g, 8, 1), &hw)
            .unwrap()
            .iter_time_s;
        let pp = plan_for(&g, 8, 4)
            .iter()
            .filter_map(|p| m.evaluate(&g, 256, &p, &hw).ok())
            .map(|perf| perf.iter_time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(pp < dp, "pipeline {pp} not faster than wide DP {dp}");
    }

    #[test]
    fn tp_cheaper_on_nvlink_than_pcie() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 2.6, 128).build();
        let part = determine_stages(&g, 4, 1).unwrap();
        let tp_plan = PipelinePlan {
            stages: vec![StageAssignment {
                op_range: part.ranges[0].clone(),
                plan: StagePlan::tp_only(4),
            }],
        };
        let nvlink = m
            .evaluate(&g, 128, &tp_plan, &a100x4())
            .unwrap()
            .iter_time_s;
        // Same silicon speed, PCIe interconnect: build a fake A100-PCIe.
        let mut pcie_node = NodeSpec::with_default_links(GpuSpec::A100, 4);
        pcie_node.intra_link = arena_cluster::LinkKind::Pcie4;
        let pcie = m
            .evaluate(&g, 128, &tp_plan, &HwTarget::new(pcie_node))
            .unwrap()
            .iter_time_s;
        assert!(pcie > 1.2 * nvlink, "nvlink={nvlink} pcie={pcie}");
    }

    #[test]
    fn invalid_plan_rejected() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let plan = PipelinePlan { stages: vec![] };
        assert_eq!(
            m.evaluate(&g, 256, &plan, &a100x4()),
            Err(Infeasible::InvalidPlan)
        );
    }

    #[test]
    fn stage_cost_breakdown_sums() {
        let m = PerfModel::default();
        let g = ModelConfig::new(ModelFamily::Moe, 1.3, 256).build();
        let part = determine_stages(&g, 8, 2).unwrap();
        let plan = PipelinePlan {
            stages: part
                .ranges
                .iter()
                .zip(&part.gpus)
                .map(|(r, &gp)| StageAssignment {
                    op_range: r.clone(),
                    plan: StagePlan { dp: gp / 2, tp: 2 },
                })
                .collect(),
        };
        let perf = m.evaluate(&g, 256, &plan, &a100x4()).unwrap();
        for (i, st) in perf.stages.iter().enumerate() {
            assert!(st.compute_s > 0.0);
            assert!(st.tp_comm_s > 0.0, "stage {i} lost its TP collectives");
            assert!(
                (st.latency_s() - st.busy_s() - st.boundary_in_s).abs() < 1e-12,
                "latency/busy decomposition broken"
            );
        }
        // MoE layers live somewhere, so some stage pays dispatch.
        assert!(perf.stages.iter().any(|s| s.dispatch_s > 0.0));
    }
}
