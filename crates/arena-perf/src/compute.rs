//! Per-stage computation time.

use std::ops::Range;

use arena_cluster::{GpuArch, GpuSpec};
use arena_model::ModelGraph;

use crate::params::CostParams;

/// Computation time of one pipeline stage for one micro-batch (forward +
/// backward), on one tensor-parallel shard.
///
/// Each operator contributes a roofline term — total FLOPs divided by the
/// device's peak scaled by an achievable-efficiency cap — plus an additive
/// launch overhead. Tensor parallelism divides the FLOPs across `tp`
/// shards but pays a fragmentation penalty and the same launch overheads,
/// so efficiency degrades as per-GPU work shrinks: the mechanism behind
/// the performance ceiling of Fig. 4(a).
#[must_use]
pub fn stage_compute_time(
    p: &CostParams,
    graph: &ModelGraph,
    range: Range<usize>,
    mb_samples: f64,
    tp: usize,
    gpu: &GpuSpec,
) -> f64 {
    let arch_eff = match gpu.arch {
        GpuArch::Ampere => 1.0,
        GpuArch::Volta => p.volta_eff,
    };
    let frag = 1.0 + p.tp_fragmentation * (tp as f64 - 1.0);
    // Loop-invariant factors hoisted out of the op walk. Each hoisted
    // value is exactly the scalar the old per-op expression produced,
    // multiplied in the same position, so the sum is bitwise unchanged.
    let bwd = 1.0 + p.bwd_ratio;
    let tpf = tp as f64;
    let peak = gpu.peak_flops();
    let mut total = 0.0;
    for op in &graph.ops[range] {
        let work = bwd * op.flops_fwd * mb_samples / tpf;
        let eff = p.eff_for(op.kind) * arch_eff / frag;
        total += work / (peak * eff) + p.launch_overhead_s;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn bert() -> ModelGraph {
        ModelConfig::new(ModelFamily::Bert, 1.3, 256).build()
    }

    #[test]
    fn time_scales_with_microbatch() {
        let p = CostParams::default();
        let g = bert();
        let t1 = stage_compute_time(&p, &g, 0..g.len(), 1.0, 1, &GpuSpec::A100);
        let t8 = stage_compute_time(&p, &g, 0..g.len(), 8.0, 1, &GpuSpec::A100);
        assert!(t8 > 6.0 * t1 && t8 < 8.0 * t1, "t1={t1} t8={t8}");
    }

    #[test]
    fn tensor_parallelism_is_sublinear() {
        // TP over 8 shards must be faster than 1 shard but slower than the
        // ideal 8x, because of fragmentation and launch overhead.
        let p = CostParams::default();
        let g = bert();
        let t1 = stage_compute_time(&p, &g, 0..g.len(), 8.0, 1, &GpuSpec::A100);
        let t8 = stage_compute_time(&p, &g, 0..g.len(), 8.0, 8, &GpuSpec::A100);
        assert!(t8 < t1);
        assert!(t8 > t1 / 8.0);
    }

    #[test]
    fn faster_gpu_is_faster() {
        let p = CostParams::default();
        let g = bert();
        let a100 = stage_compute_time(&p, &g, 0..g.len(), 4.0, 1, &GpuSpec::A100);
        let v100 = stage_compute_time(&p, &g, 0..g.len(), 4.0, 1, &GpuSpec::V100);
        assert!(v100 > 2.0 * a100);
    }

    #[test]
    fn tiny_work_is_overhead_bound() {
        // With negligible per-op work, the launch overhead dominates and
        // stage time approaches ops x overhead.
        let p = CostParams::default();
        let g = bert();
        let t = stage_compute_time(&p, &g, 0..g.len(), 1e-9, 1, &GpuSpec::A100);
        let floor = g.len() as f64 * p.launch_overhead_s;
        assert!((t - floor) / floor < 0.01);
    }

    #[test]
    fn realistic_magnitude() {
        // A full BERT-1.3B fwd+bwd micro-batch of 4 samples on one A100
        // should take on the order of tens of milliseconds.
        let p = CostParams::default();
        let g = bert();
        let t = stage_compute_time(&p, &g, 0..g.len(), 4.0, 1, &GpuSpec::A100);
        assert!(t > 0.01 && t < 1.0, "t={t}");
    }
}
