//! Pool-to-partition maps for sharded scheduling.
//!
//! A [`PartitionMap`] assigns every GPU pool to a *partition* — the
//! semantic unit of scheduler sharding. Partitions are a property of the
//! cluster layout (the default is one partition per pool, the paper's
//! per-pool decomposition), while the number of *executor shards* a
//! sharded engine groups those partitions onto is purely an execution
//! knob: partitions are stable identifiers that decision provenance may
//! record, executor shard counts must stay invisible in every observable
//! output (see `DESIGN.md` §12).
//!
//! The map is deliberately dumb data: a `pool → partition` vector plus a
//! partition count. Empty partitions are legal (an executor shard with no
//! pools simply never has work), as is mapping every pool to one
//! partition (fully serial decisions under a sharded engine).

use crate::cluster::{Cluster, GpuTypeId};

/// Assignment of every pool to a scheduling partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// `partition_of[pool] = partition`.
    partition_of: Vec<usize>,
    /// Number of partitions; at least `max(partition_of) + 1`, but may be
    /// larger, leaving trailing partitions empty.
    partitions: usize,
}

impl PartitionMap {
    /// One partition per pool — the canonical decomposition. Partition
    /// ids equal pool ids, so provenance stamped from this map reads as
    /// the job's home pool.
    #[must_use]
    pub fn per_pool(num_pools: usize) -> Self {
        PartitionMap {
            partition_of: (0..num_pools).collect(),
            partitions: num_pools.max(1),
        }
    }

    /// Every pool in partition 0 — sharding degenerates to the serial
    /// decision loop.
    #[must_use]
    pub fn single(num_pools: usize) -> Self {
        PartitionMap {
            partition_of: vec![0; num_pools],
            partitions: 1,
        }
    }

    /// An explicit assignment; the partition count is inferred as
    /// `max(assignment) + 1`.
    ///
    /// # Panics
    ///
    /// Panics on an empty assignment.
    #[must_use]
    pub fn new(assignment: Vec<usize>) -> Self {
        let partitions = assignment
            .iter()
            .max()
            .map(|&m| m + 1)
            .expect("partition map needs at least one pool");
        PartitionMap {
            partition_of: assignment,
            partitions,
        }
    }

    /// An explicit assignment with an explicit partition count, allowing
    /// empty partitions (adversarial maps in tests, fixed shard grids).
    ///
    /// # Panics
    ///
    /// Panics if any assigned partition is `>= partitions` or
    /// `partitions == 0`.
    #[must_use]
    pub fn with_partitions(assignment: Vec<usize>, partitions: usize) -> Self {
        assert!(partitions > 0, "at least one partition is required");
        assert!(
            assignment.iter().all(|&p| p < partitions),
            "assignment references a partition >= {partitions}"
        );
        PartitionMap {
            partition_of: assignment,
            partitions,
        }
    }

    /// The canonical map for a cluster: [`PartitionMap::per_pool`].
    #[must_use]
    pub fn for_cluster(cluster: &Cluster) -> Self {
        Self::per_pool(cluster.pool_ids().count())
    }

    /// Partition owning `pool`. Pools beyond the map (a cluster larger
    /// than the map was built for) fold into partition 0 rather than
    /// panicking mid-simulation.
    #[must_use]
    pub fn partition_of(&self, pool: usize) -> usize {
        self.partition_of.get(pool).copied().unwrap_or(0)
    }

    /// Number of partitions (empty ones included).
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of pools the map covers.
    #[must_use]
    pub fn num_pools(&self) -> usize {
        self.partition_of.len()
    }

    /// Pools assigned to `partition`, in ascending pool order.
    #[must_use]
    pub fn pools_of(&self, partition: usize) -> Vec<usize> {
        self.partition_of
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == partition)
            .map(|(pool, _)| pool)
            .collect()
    }

    /// Per-partition capacity index over `cluster`: each partition's
    /// totals aggregate its pools' counts in ascending pool order.
    /// Conservation holds by construction: summed over partitions, the
    /// totals equal the cluster-wide books.
    #[must_use]
    pub fn shard_stats(&self, cluster: &Cluster) -> Vec<ShardStats> {
        let mut out: Vec<ShardStats> = (0..self.partitions)
            .map(|partition| ShardStats {
                partition,
                pools: 0,
                total_gpus: 0,
                free_gpus: 0,
                used_gpus: 0,
                failed_gpus: 0,
            })
            .collect();
        for (pool, &partition) in self.partition_of.iter().enumerate() {
            let id = GpuTypeId(pool);
            let s = &mut out[partition];
            s.pools += 1;
            s.total_gpus += cluster.num_nodes(id) * cluster.spec(id).gpus_per_node;
            s.free_gpus += cluster.free_gpus(id);
            s.used_gpus += cluster.used_gpus(id);
            s.failed_gpus += cluster.failed_gpus(id);
        }
        out
    }
}

/// Capacity counts of one partition (see [`PartitionMap::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Partition id.
    pub partition: usize,
    /// Pools assigned to the partition.
    pub pools: usize,
    /// Total GPUs across the partition's pools.
    pub total_gpus: usize,
    /// Free GPUs across the partition's pools.
    pub free_gpus: usize,
    /// Allocated GPUs across the partition's pools.
    pub used_gpus: usize,
    /// Failed/draining GPUs across the partition's pools.
    pub failed_gpus: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::gpu::GpuSpec;
    use crate::node::NodeSpec;

    fn two_pool() -> Cluster {
        Cluster::new(&[
            (NodeSpec::with_default_links(GpuSpec::A100, 4), 3),
            (NodeSpec::with_default_links(GpuSpec::A10, 2), 4),
        ])
    }

    #[test]
    fn per_pool_is_identity() {
        let m = PartitionMap::per_pool(3);
        assert_eq!(m.partitions(), 3);
        for p in 0..3 {
            assert_eq!(m.partition_of(p), p);
            assert_eq!(m.pools_of(p), vec![p]);
        }
    }

    #[test]
    fn single_folds_everything() {
        let m = PartitionMap::single(4);
        assert_eq!(m.partitions(), 1);
        assert_eq!(m.pools_of(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn explicit_counts_allow_empty_partitions() {
        let m = PartitionMap::with_partitions(vec![2, 2], 4);
        assert_eq!(m.partitions(), 4);
        assert!(m.pools_of(0).is_empty());
        assert_eq!(m.pools_of(2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "references a partition")]
    fn out_of_range_assignment_rejected() {
        let _ = PartitionMap::with_partitions(vec![0, 3], 3);
    }

    #[test]
    fn shard_stats_conserve_capacity() {
        let mut cluster = two_pool();
        let a = cluster.allocate(GpuTypeId(0), 5).unwrap();
        cluster.fail_node(GpuTypeId(1), 0).unwrap();
        for map in [
            PartitionMap::per_pool(2),
            PartitionMap::single(2),
            PartitionMap::with_partitions(vec![1, 1], 3),
        ] {
            let stats = map.shard_stats(&cluster);
            assert_eq!(stats.len(), map.partitions());
            let total: usize = stats.iter().map(|s| s.total_gpus).sum();
            let free: usize = stats.iter().map(|s| s.free_gpus).sum();
            let used: usize = stats.iter().map(|s| s.used_gpus).sum();
            let failed: usize = stats.iter().map(|s| s.failed_gpus).sum();
            assert_eq!(total, cluster.total_gpus());
            assert_eq!(free + used + failed, total);
            assert_eq!(used, 5);
            assert_eq!(failed, 2);
        }
        cluster.release(&a).unwrap();
    }

    #[test]
    fn unknown_pool_folds_to_partition_zero() {
        let m = PartitionMap::per_pool(2);
        assert_eq!(m.partition_of(9), 0);
    }
}
