//! Cluster presets used throughout the paper's evaluation.

use crate::cluster::Cluster;
use crate::gpu::GpuSpec;
use crate::node::NodeSpec;

/// The 1,280-GPU simulated heterogeneous cluster of Table 1.
///
/// | GPU  | Mem | Intra    | Inter  | Nodes | GPUs/node |
/// |------|-----|----------|--------|-------|-----------|
/// | A100 | 40  | NVLink3  | IB-CX5 | 80    | 4         |
/// | A40  | 48  | PCIe4    | IB-CX5 | 160   | 2         |
/// | A10  | 24  | PCIe4    | IB-CX6 | 160   | 2         |
/// | V100 | 32  | NVLink2  | IB-CX5 | 20    | 16        |
#[must_use]
pub fn table1_simulated() -> Cluster {
    Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A100, 4), 80),
        (NodeSpec::with_default_links(GpuSpec::A40, 2), 160),
        (NodeSpec::with_default_links(GpuSpec::A10, 2), 160),
        (NodeSpec::with_default_links(GpuSpec::V100, 16), 20),
    ])
}

/// The 64-GPU physical testbed of §8.1: 16 servers with 2×A40 (IB-CX5)
/// and 16 servers with 2×A10 (IB-CX6).
#[must_use]
pub fn physical_testbed() -> Cluster {
    Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A40, 2), 16),
        (NodeSpec::with_default_links(GpuSpec::A10, 2), 16),
    ])
}

/// The motivation-experiment hardware of Figure 1 / Figure 3(b):
/// one 4×A100 NVLink server and one 4×V100 NVLink server.
#[must_use]
pub fn motivation_pair() -> Cluster {
    Cluster::new(&[
        (NodeSpec::with_default_links(GpuSpec::A100, 4), 1),
        (NodeSpec::with_default_links(GpuSpec::V100, 4), 1),
    ])
}

/// A small homogeneous cluster handy for unit tests: `nodes`×`gpn` A100s.
#[must_use]
pub fn tiny_a100(nodes: usize, gpn: usize) -> Cluster {
    Cluster::new(&[(NodeSpec::with_default_links(GpuSpec::A100, gpn), nodes)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::GpuTypeId;

    #[test]
    fn table1_totals() {
        let c = table1_simulated();
        assert_eq!(c.total_gpus(), 1280);
        assert_eq!(c.free_gpus(GpuTypeId(0)), 320); // A100
        assert_eq!(c.free_gpus(GpuTypeId(1)), 320); // A40
        assert_eq!(c.free_gpus(GpuTypeId(2)), 320); // A10
        assert_eq!(c.free_gpus(GpuTypeId(3)), 320); // V100
    }

    #[test]
    fn testbed_totals() {
        let c = physical_testbed();
        assert_eq!(c.total_gpus(), 64);
        assert_eq!(c.num_pools(), 2);
    }

    #[test]
    fn motivation_pair_shape() {
        let c = motivation_pair();
        assert_eq!(c.total_gpus(), 8);
        assert!(c.spec(GpuTypeId(0)).intra_link.is_nvlink());
        assert!(c.spec(GpuTypeId(1)).intra_link.is_nvlink());
    }
}
