//! GPU allocations handed to jobs.

use serde::{Deserialize, Serialize};

use crate::cluster::GpuTypeId;

/// The shape of the device mesh an allocation provides.
///
/// The performance model only needs to know how many servers the allocation
/// spans and how many GPUs sit together on a server; the exact node ids are
/// irrelevant because nodes in a pool are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshShape {
    /// Number of servers spanned.
    pub nodes: usize,
    /// Largest number of allocated GPUs co-located on one server.
    pub max_gpus_per_node: usize,
    /// Total GPUs.
    pub total_gpus: usize,
}

impl MeshShape {
    /// A mesh fully contained in one server.
    #[must_use]
    pub fn single_node(gpus: usize) -> Self {
        MeshShape {
            nodes: 1,
            max_gpus_per_node: gpus,
            total_gpus: gpus,
        }
    }

    /// Whether the mesh is contained in a single server.
    #[must_use]
    pub fn is_single_node(&self) -> bool {
        self.nodes == 1
    }
}

/// A concrete grant of GPUs of one type, possibly spanning several nodes.
///
/// Jobs in the paper always run on a single GPU type at a time;
/// heterogeneity scaling moves a job between types by releasing one
/// allocation and acquiring another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Which pool (GPU type) the GPUs come from.
    pub pool: GpuTypeId,
    /// `(node index within pool, GPUs taken on that node)` pairs.
    pub node_gpus: Vec<(usize, usize)>,
}

impl Allocation {
    /// Total number of GPUs in the allocation.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.node_gpus.iter().map(|&(_, g)| g).sum()
    }

    /// Number of distinct nodes spanned.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.node_gpus.len()
    }

    /// Whether the allocation holds any GPUs on `(pool, node)`; used by
    /// fault handling to find the jobs a node failure takes down.
    #[must_use]
    pub fn uses_node(&self, pool: GpuTypeId, node: usize) -> bool {
        self.pool == pool && self.node_gpus.iter().any(|&(n, _)| n == node)
    }

    /// The mesh shape this allocation provides to the performance model.
    #[must_use]
    pub fn mesh(&self) -> MeshShape {
        MeshShape {
            nodes: self.num_nodes(),
            max_gpus_per_node: self.node_gpus.iter().map(|&(_, g)| g).max().unwrap_or(0),
            total_gpus: self.total_gpus(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_mesh() {
        let a = Allocation {
            pool: GpuTypeId(0),
            node_gpus: vec![(0, 4), (1, 4), (2, 2)],
        };
        assert_eq!(a.total_gpus(), 10);
        assert_eq!(a.num_nodes(), 3);
        let m = a.mesh();
        assert_eq!(m.nodes, 3);
        assert_eq!(m.max_gpus_per_node, 4);
        assert_eq!(m.total_gpus, 10);
    }

    #[test]
    fn single_node_mesh() {
        let m = MeshShape::single_node(8);
        assert!(m.is_single_node());
        assert_eq!(m.total_gpus, 8);
    }
}
