//! Interconnect link kinds and their performance parameters.

use serde::Serialize;

/// A kind of interconnect between GPUs (intra-node) or nodes (inter-node).
///
/// Bandwidths are *effective achievable* bandwidths for large collective
/// transfers, not headline peak numbers: e.g. a 100 Gb/s ConnectX-5 NIC
/// yields roughly 10 GiB/s of useful collective bandwidth in practice.
///
/// These values are the hardware constants the α–β communication model in
/// `arena-perf` is built on. They only need to be *relatively* faithful
/// (NVLink ≫ PCIe ≫ InfiniBand per-GPU) for the paper's decision structure —
/// tensor parallelism favoured on NVLink, pipeline parallelism favoured over
/// slow fabrics — to emerge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LinkKind {
    /// Third-generation NVLink (A100-class NVSwitch topology).
    NvLink3,
    /// Second-generation NVLink (V100-class hybrid cube mesh).
    NvLink2,
    /// PCIe 4.0 x16 host bridge shared between GPUs on one node.
    Pcie4,
    /// PCIe 3.0 x16 host bridge.
    Pcie3,
    /// Mellanox InfiniBand ConnectX-5 (100 Gb/s EDR).
    IbCx5,
    /// Mellanox InfiniBand ConnectX-6 (200 Gb/s HDR).
    IbCx6,
    /// Commodity 10 GbE, used only in degraded-fabric experiments.
    Ethernet10G,
}

impl LinkKind {
    /// Effective large-message bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth_bps(self) -> f64 {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        match self {
            LinkKind::NvLink3 => 200.0 * GIB,
            LinkKind::NvLink2 => 120.0 * GIB,
            LinkKind::Pcie4 => 16.0 * GIB,
            LinkKind::Pcie3 => 10.0 * GIB,
            LinkKind::IbCx5 => 10.0 * GIB,
            LinkKind::IbCx6 => 20.0 * GIB,
            LinkKind::Ethernet10G => 1.0 * GIB,
        }
    }

    /// Base per-message latency (the α term) in seconds.
    #[must_use]
    pub fn latency_s(self) -> f64 {
        match self {
            LinkKind::NvLink3 | LinkKind::NvLink2 => 4.0e-6,
            LinkKind::Pcie4 | LinkKind::Pcie3 => 8.0e-6,
            LinkKind::IbCx5 | LinkKind::IbCx6 => 12.0e-6,
            LinkKind::Ethernet10G => 50.0e-6,
        }
    }

    /// Whether this link kind is an intra-node GPU-to-GPU interconnect.
    #[must_use]
    pub fn is_intra_node(self) -> bool {
        matches!(
            self,
            LinkKind::NvLink3 | LinkKind::NvLink2 | LinkKind::Pcie4 | LinkKind::Pcie3
        )
    }

    /// Whether this is a high-bandwidth NVLink-class interconnect.
    ///
    /// The paper marks such pools with a dagger in Table 1; the distinction
    /// matters because tensor parallelism is only cheap on NVLink.
    #[must_use]
    pub fn is_nvlink(self) -> bool {
        matches!(self, LinkKind::NvLink3 | LinkKind::NvLink2)
    }

    /// Short human-readable name used in experiment printouts.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            LinkKind::NvLink3 => "NVLink3",
            LinkKind::NvLink2 => "NVLink2",
            LinkKind::Pcie4 => "PCIe4",
            LinkKind::Pcie3 => "PCIe3",
            LinkKind::IbCx5 => "IB-CX5",
            LinkKind::IbCx6 => "IB-CX6",
            LinkKind::Ethernet10G => "10GbE",
        }
    }
}

impl std::fmt::Display for LinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_hardware_reality() {
        // NVLink must dominate PCIe, which must dominate or equal InfiniBand
        // per GPU; this ordering is what drives parallelism choices.
        assert!(LinkKind::NvLink3.bandwidth_bps() > LinkKind::NvLink2.bandwidth_bps());
        assert!(LinkKind::NvLink2.bandwidth_bps() > LinkKind::Pcie4.bandwidth_bps());
        assert!(LinkKind::Pcie4.bandwidth_bps() > LinkKind::IbCx5.bandwidth_bps());
        assert!(LinkKind::IbCx6.bandwidth_bps() > LinkKind::IbCx5.bandwidth_bps());
    }

    #[test]
    fn intra_node_classification() {
        assert!(LinkKind::NvLink3.is_intra_node());
        assert!(LinkKind::Pcie4.is_intra_node());
        assert!(!LinkKind::IbCx5.is_intra_node());
        assert!(!LinkKind::Ethernet10G.is_intra_node());
    }

    #[test]
    fn nvlink_classification() {
        assert!(LinkKind::NvLink2.is_nvlink());
        assert!(!LinkKind::Pcie4.is_nvlink());
    }

    #[test]
    fn latencies_are_positive_and_small() {
        for l in [
            LinkKind::NvLink3,
            LinkKind::NvLink2,
            LinkKind::Pcie4,
            LinkKind::Pcie3,
            LinkKind::IbCx5,
            LinkKind::IbCx6,
            LinkKind::Ethernet10G,
        ] {
            assert!(l.latency_s() > 0.0);
            assert!(l.latency_s() < 1e-3);
        }
    }
}
