//! Node (server) specifications.

use serde::Serialize;

use crate::gpu::GpuSpec;
use crate::link::LinkKind;

/// Specification of one server class: identical GPUs plus its interconnects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeSpec {
    /// GPU device model installed in this server.
    pub gpu: GpuSpec,
    /// Number of GPUs per server.
    pub gpus_per_node: usize,
    /// GPU-to-GPU interconnect inside the server.
    pub intra_link: LinkKind,
    /// Fabric connecting servers of this class.
    pub inter_link: LinkKind,
}

impl NodeSpec {
    /// Creates a node spec with the default links for the device model.
    #[must_use]
    pub fn with_default_links(gpu: GpuSpec, gpus_per_node: usize) -> Self {
        NodeSpec {
            gpu,
            gpus_per_node,
            intra_link: crate::gpu::default_intra_link(&gpu),
            inter_link: crate::gpu::default_inter_link(&gpu),
        }
    }

    /// The slowest link a collective spanning `gpus` devices must cross.
    ///
    /// Collectives confined to a single server use the intra-node link; any
    /// collective spanning servers is bottlenecked by the inter-node fabric.
    #[must_use]
    pub fn link_for_group(&self, gpus: usize) -> LinkKind {
        if gpus <= self.gpus_per_node {
            self.intra_link
        } else {
            self.inter_link
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_for_group_respects_node_boundary() {
        let spec = NodeSpec::with_default_links(GpuSpec::A100, 4);
        assert_eq!(spec.link_for_group(1), LinkKind::NvLink3);
        assert_eq!(spec.link_for_group(4), LinkKind::NvLink3);
        assert_eq!(spec.link_for_group(5), LinkKind::IbCx5);
        assert_eq!(spec.link_for_group(64), LinkKind::IbCx5);
    }

    #[test]
    fn default_links_applied() {
        let a10 = NodeSpec::with_default_links(GpuSpec::A10, 2);
        assert_eq!(a10.intra_link, LinkKind::Pcie4);
        assert_eq!(a10.inter_link, LinkKind::IbCx6);
    }
}
