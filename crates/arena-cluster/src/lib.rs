//! Heterogeneous GPU cluster model.
//!
//! This crate is the hardware substrate of the Arena reproduction. It models
//! everything the paper's scheduler needs to know about a cluster:
//!
//! * GPU device specifications ([`GpuSpec`]): architecture, memory capacity,
//!   and peak dense compute throughput.
//! * Interconnects ([`LinkKind`]): intra-node links (NVLink, PCIe) and
//!   inter-node fabrics (InfiniBand ConnectX-5/6), each with an effective
//!   bandwidth and a base latency used by the α–β communication model in
//!   `arena-perf`.
//! * Nodes and pools ([`NodeSpec`], [`Cluster`]): a cluster is a set of
//!   homogeneous pools, each holding many identical nodes. This matches the
//!   paper's Table 1 (four pools: A100, A40, A10, V100) and the §8.1
//!   physical testbed (two pools: A40, A10).
//! * Allocations ([`Allocation`]): a set of GPUs of one type, possibly
//!   spanning nodes, produced by the packing allocator in [`Cluster`].
//!
//! The cluster presets used throughout the evaluation live in [`presets`].

pub mod alloc;
pub mod cluster;
pub mod gpu;
pub mod link;
pub mod node;
pub mod partition;
pub mod presets;

pub use alloc::{Allocation, MeshShape};
pub use cluster::{Cluster, ClusterError, GpuTypeId, HealthDelta, NodeHealth, PoolStats};
pub use gpu::{GpuArch, GpuSpec};
pub use link::LinkKind;
pub use node::NodeSpec;
pub use partition::{PartitionMap, ShardStats};
