//! GPU device specifications.

use serde::Serialize;

use crate::link::LinkKind;

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum GpuArch {
    /// NVIDIA Ampere (A100, A40, A10).
    Ampere,
    /// NVIDIA Volta (V100).
    Volta,
}

/// Specification of one GPU device model.
///
/// `peak_tflops` is the mixed-precision (FP16 with FP32 accumulate) tensor
/// throughput, which is what large-model training kernels are limited by.
/// The achievable fraction of peak is modelled separately by the efficiency
/// curve in `arena-perf`; this struct carries only device constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100"`.
    pub name: &'static str,
    /// Micro-architecture generation.
    pub arch: GpuArch,
    /// Device memory capacity in GiB.
    pub mem_gib: f64,
    /// Peak FP16 tensor throughput in TFLOP/s.
    pub peak_tflops: f64,
}

impl GpuSpec {
    /// NVIDIA A100 40 GB (SXM): the fastest device in Table 1.
    pub const A100: GpuSpec = GpuSpec {
        name: "A100",
        arch: GpuArch::Ampere,
        mem_gib: 40.0,
        peak_tflops: 312.0,
    };

    /// NVIDIA A40 48 GB: large memory, mid-range compute, PCIe only.
    pub const A40: GpuSpec = GpuSpec {
        name: "A40",
        arch: GpuArch::Ampere,
        mem_gib: 48.0,
        peak_tflops: 150.0,
    };

    /// NVIDIA A10 24 GB: the smallest-memory device in the testbed.
    pub const A10: GpuSpec = GpuSpec {
        name: "A10",
        arch: GpuArch::Ampere,
        mem_gib: 24.0,
        peak_tflops: 125.0,
    };

    /// NVIDIA V100 32 GB (SXM2): previous-generation NVLink device.
    pub const V100: GpuSpec = GpuSpec {
        name: "V100",
        arch: GpuArch::Volta,
        mem_gib: 32.0,
        peak_tflops: 112.0,
    };

    /// Device memory capacity in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        (self.mem_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Peak throughput in FLOP/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }
}

/// All device models used in the paper's experiments, fastest first.
pub const ALL_GPU_MODELS: [GpuSpec; 4] = [GpuSpec::A100, GpuSpec::A40, GpuSpec::A10, GpuSpec::V100];

/// Returns the default intra-node interconnect for a device model.
///
/// A100 and V100 pools in Table 1 are NVLink-connected (dagger in the
/// table); A40 and A10 servers use PCIe 4.0.
#[must_use]
pub fn default_intra_link(gpu: &GpuSpec) -> LinkKind {
    match gpu.name {
        "A100" => LinkKind::NvLink3,
        "V100" => LinkKind::NvLink2,
        _ => LinkKind::Pcie4,
    }
}

/// Returns the default inter-node fabric for a device model per Table 1.
#[must_use]
pub fn default_inter_link(gpu: &GpuSpec) -> LinkKind {
    match gpu.name {
        "A10" => LinkKind::IbCx6,
        _ => LinkKind::IbCx5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constants_match_table1() {
        assert_eq!(GpuSpec::A100.mem_gib, 40.0);
        assert_eq!(GpuSpec::A40.mem_gib, 48.0);
        assert_eq!(GpuSpec::A10.mem_gib, 24.0);
        assert_eq!(GpuSpec::V100.mem_gib, 32.0);
        assert_eq!(GpuSpec::A100.arch, GpuArch::Ampere);
        assert_eq!(GpuSpec::V100.arch, GpuArch::Volta);
    }

    #[test]
    fn compute_ordering() {
        // A100 > A40 > A10 > V100 in peak tensor TFLOPS.
        let peaks: Vec<f64> = ALL_GPU_MODELS.iter().map(|g| g.peak_tflops).collect();
        for w in peaks.windows(2) {
            assert!(w[0] > w[1], "expected descending peaks, got {peaks:?}");
        }
    }

    #[test]
    fn default_links_match_table1_daggers() {
        assert!(default_intra_link(&GpuSpec::A100).is_nvlink());
        assert!(default_intra_link(&GpuSpec::V100).is_nvlink());
        assert!(!default_intra_link(&GpuSpec::A40).is_nvlink());
        assert!(!default_intra_link(&GpuSpec::A10).is_nvlink());
        assert_eq!(default_inter_link(&GpuSpec::A10), LinkKind::IbCx6);
        assert_eq!(default_inter_link(&GpuSpec::A40), LinkKind::IbCx5);
    }

    #[test]
    fn mem_bytes_conversion() {
        assert_eq!(GpuSpec::A100.mem_bytes(), 40 * 1024 * 1024 * 1024);
    }
}
