//! The cluster: pools of identical nodes, with a packing allocator.

use serde::{Deserialize, Serialize};

use crate::alloc::Allocation;
use crate::node::NodeSpec;

/// Index of a GPU type (pool) inside a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuTypeId(pub usize);

/// Errors returned by cluster allocation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The requested pool index does not exist.
    UnknownPool(GpuTypeId),
    /// The requested node index does not exist in its pool.
    UnknownNode {
        /// Pool the node was looked up in.
        pool: GpuTypeId,
        /// Out-of-range node index.
        node: usize,
    },
    /// Not enough free GPUs of the requested type.
    Insufficient {
        /// Requested GPU count.
        requested: usize,
        /// Currently free GPU count in the pool.
        free: usize,
    },
    /// An allocation being released does not match the cluster's books.
    BadRelease,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownPool(id) => write!(f, "unknown GPU pool {}", id.0),
            ClusterError::UnknownNode { pool, node } => {
                write!(f, "unknown node {node} in pool {}", pool.0)
            }
            ClusterError::Insufficient { requested, free } => {
                write!(f, "requested {requested} GPUs but only {free} free")
            }
            ClusterError::BadRelease => write!(f, "released allocation does not match books"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Health of one server, as seen by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeHealth {
    /// In service: its idle GPUs are allocatable.
    Healthy,
    /// Crashed: nothing allocatable; running jobs must be evicted.
    Failed,
    /// Being decommissioned: nothing new allocatable, but existing
    /// allocations keep running until released.
    Draining,
}

/// One node-health transition applied online — pool/node coordinates
/// plus the target state. Carried by serving-layer commands and routed
/// through [`Cluster::apply_health_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthDelta {
    /// Pool index.
    pub pool: usize,
    /// Node index within the pool.
    pub node: usize,
    /// Target health state.
    pub to: NodeHealth,
}

/// One homogeneous pool: `num_nodes` identical servers of one [`NodeSpec`].
#[derive(Debug, Clone, Serialize)]
struct Pool {
    spec: NodeSpec,
    /// Allocatable GPUs on each node (0 on non-[`NodeHealth::Healthy`]
    /// nodes; length = number of nodes).
    free: Vec<usize>,
    /// GPUs currently granted to allocations on each node, regardless of
    /// the node's health.
    used: Vec<usize>,
    /// Health of each node.
    health: Vec<NodeHealth>,
    /// Capacity index: running totals of the three per-node columns,
    /// maintained incrementally by [`Pool::update_node`] so aggregate
    /// queries ([`Cluster::free_gpus`], [`Cluster::pool_stats`], …) never
    /// scan the node vectors. Invariant: `free_total + used_total +
    /// failed_total == num_nodes * gpus_per_node`.
    free_total: usize,
    /// See [`Pool::free_total`].
    used_total: usize,
    /// See [`Pool::free_total`]; the sum of [`Pool::failed_contrib`].
    failed_total: usize,
}

impl Pool {
    /// Restores `free[node]` to match health and usage after a change.
    fn sync_free(&mut self, node: usize) {
        self.free[node] = match self.health[node] {
            NodeHealth::Healthy => self.spec.gpus_per_node - self.used[node],
            NodeHealth::Failed | NodeHealth::Draining => 0,
        };
    }

    /// Unavailable capacity on one node: GPUs a failed/draining node can
    /// no longer offer (GPUs still granted to un-released allocations on
    /// it count as used, not failed).
    fn failed_contrib(&self, node: usize) -> usize {
        match self.health[node] {
            NodeHealth::Healthy => 0,
            NodeHealth::Failed | NodeHealth::Draining => self.spec.gpus_per_node - self.used[node],
        }
    }

    /// The single mutation point for a node's books: applies a new
    /// used-count and health, re-derives `free[node]`, and keeps the
    /// aggregate totals in sync by delta.
    fn update_node(&mut self, node: usize, used: usize, health: NodeHealth) {
        self.free_total -= self.free[node];
        self.used_total -= self.used[node];
        self.failed_total -= self.failed_contrib(node);
        self.used[node] = used;
        self.health[node] = health;
        self.sync_free(node);
        self.free_total += self.free[node];
        self.used_total += self.used[node];
        self.failed_total += self.failed_contrib(node);
        debug_assert_eq!(
            self.free_total + self.used_total + self.failed_total,
            self.free.len() * self.spec.gpus_per_node,
            "capacity index out of sync with node books"
        );
    }
}

/// Aggregate statistics for one pool, used by scheduler policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// Pool identifier.
    pub id: GpuTypeId,
    /// Node spec of the pool.
    pub spec: NodeSpec,
    /// Total GPUs in the pool, including unavailable ones.
    pub total_gpus: usize,
    /// Currently free (allocatable) GPUs in the pool.
    pub free_gpus: usize,
    /// GPUs unavailable due to failed or draining nodes (capacity those
    /// nodes cannot offer; GPUs still held by un-released allocations on
    /// them count as allocated, not failed).
    pub failed_gpus: usize,
}

/// A heterogeneous cluster: several pools of identical nodes.
///
/// The allocator packs allocations onto as few nodes as possible (whole
/// nodes first, then the fullest partially-used node), because locality
/// determines which interconnect a job's collectives traverse.
#[derive(Debug, Clone, Serialize)]
pub struct Cluster {
    pools: Vec<Pool>,
}

impl Cluster {
    /// Builds a cluster from `(node spec, number of nodes)` pool descriptions.
    #[must_use]
    pub fn new(pools: &[(NodeSpec, usize)]) -> Self {
        Cluster {
            pools: pools
                .iter()
                .map(|&(spec, n)| Pool {
                    spec,
                    free: vec![spec.gpus_per_node; n],
                    used: vec![0; n],
                    health: vec![NodeHealth::Healthy; n],
                    free_total: spec.gpus_per_node * n,
                    used_total: 0,
                    failed_total: 0,
                })
                .collect(),
        }
    }

    /// Number of pools (distinct GPU types).
    #[must_use]
    pub fn num_pools(&self) -> usize {
        self.pools.len()
    }

    /// All pool ids.
    pub fn pool_ids(&self) -> impl Iterator<Item = GpuTypeId> + '_ {
        (0..self.pools.len()).map(GpuTypeId)
    }

    /// The node spec of a pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; pool ids are created by this cluster.
    #[must_use]
    pub fn spec(&self, id: GpuTypeId) -> NodeSpec {
        self.pools[id.0].spec
    }

    /// Looks up a pool by GPU model name, e.g. `"A100"`.
    #[must_use]
    pub fn pool_by_gpu_name(&self, name: &str) -> Option<GpuTypeId> {
        self.pools
            .iter()
            .position(|p| p.spec.gpu.name == name)
            .map(GpuTypeId)
    }

    /// Total GPUs across all pools.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.pools
            .iter()
            .map(|p| p.free.len() * p.spec.gpus_per_node)
            .sum()
    }

    /// Free GPUs in one pool (O(1): served from the capacity index).
    #[must_use]
    pub fn free_gpus(&self, id: GpuTypeId) -> usize {
        self.pools.get(id.0).map_or(0, |p| p.free_total)
    }

    /// Free GPUs across all pools.
    #[must_use]
    pub fn total_free_gpus(&self) -> usize {
        (0..self.pools.len())
            .map(|i| self.free_gpus(GpuTypeId(i)))
            .sum()
    }

    /// Number of nodes in one pool (0 for an unknown pool).
    #[must_use]
    pub fn num_nodes(&self, id: GpuTypeId) -> usize {
        self.pools.get(id.0).map_or(0, |p| p.free.len())
    }

    /// GPUs currently granted to allocations in one pool (O(1): served
    /// from the capacity index).
    #[must_use]
    pub fn used_gpus(&self, id: GpuTypeId) -> usize {
        self.pools.get(id.0).map_or(0, |p| p.used_total)
    }

    /// Unavailable capacity in one pool: GPUs on failed or draining nodes
    /// that are neither free nor held by an allocation (O(1): served from
    /// the capacity index).
    #[must_use]
    pub fn failed_gpus(&self, id: GpuTypeId) -> usize {
        self.pools.get(id.0).map_or(0, |p| p.failed_total)
    }

    /// Health of one node.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownPool`] / [`ClusterError::UnknownNode`]
    /// for out-of-range indices.
    pub fn node_health(&self, id: GpuTypeId, node: usize) -> Result<NodeHealth, ClusterError> {
        let pool = self.pools.get(id.0).ok_or(ClusterError::UnknownPool(id))?;
        pool.health
            .get(node)
            .copied()
            .ok_or(ClusterError::UnknownNode { pool: id, node })
    }

    fn set_health(
        &mut self,
        id: GpuTypeId,
        node: usize,
        health: NodeHealth,
    ) -> Result<(), ClusterError> {
        let pool = self
            .pools
            .get_mut(id.0)
            .ok_or(ClusterError::UnknownPool(id))?;
        if node >= pool.health.len() {
            return Err(ClusterError::UnknownNode { pool: id, node });
        }
        pool.update_node(node, pool.used[node], health);
        Ok(())
    }

    /// Marks a node as crashed: its GPUs leave the free pool immediately.
    ///
    /// The cluster does not track which allocations touch the node; the
    /// caller must find them (see [`Allocation::uses_node`]) and
    /// [`Cluster::release`] them — their GPUs then count as failed
    /// capacity rather than returning to the free pool. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownPool`] / [`ClusterError::UnknownNode`]
    /// for out-of-range indices.
    pub fn fail_node(&mut self, id: GpuTypeId, node: usize) -> Result<(), ClusterError> {
        self.set_health(id, node, NodeHealth::Failed)
    }

    /// Returns a node to service: its capacity not held by un-released
    /// allocations becomes free again. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownPool`] / [`ClusterError::UnknownNode`]
    /// for out-of-range indices.
    pub fn repair_node(&mut self, id: GpuTypeId, node: usize) -> Result<(), ClusterError> {
        self.set_health(id, node, NodeHealth::Healthy)
    }

    /// Starts decommissioning a node: nothing new is placed on it, but
    /// existing allocations keep running until released.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownPool`] / [`ClusterError::UnknownNode`]
    /// for out-of-range indices.
    pub fn drain_node(&mut self, id: GpuTypeId, node: usize) -> Result<(), ClusterError> {
        self.set_health(id, node, NodeHealth::Draining)
    }

    /// Applies one online health delta — the serving layer's uniform
    /// entry point for capacity events arriving as commands rather than
    /// as a pre-validated fault schedule. Idempotent like the individual
    /// transitions it routes to.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownPool`] / [`ClusterError::UnknownNode`]
    /// for out-of-range indices.
    pub fn apply_health_delta(&mut self, delta: &HealthDelta) -> Result<(), ClusterError> {
        self.set_health(GpuTypeId(delta.pool), delta.node, delta.to)
    }

    /// Per-pool node-health census `(healthy, draining, failed)`, in
    /// pool order — the capacity view a status snapshot publishes.
    #[must_use]
    pub fn health_summary(&self) -> Vec<(usize, usize, usize)> {
        self.pools
            .iter()
            .map(|p| {
                let mut counts = (0, 0, 0);
                for h in &p.health {
                    match h {
                        NodeHealth::Healthy => counts.0 += 1,
                        NodeHealth::Draining => counts.1 += 1,
                        NodeHealth::Failed => counts.2 += 1,
                    }
                }
                counts
            })
            .collect()
    }

    /// Statistics for every pool (O(pools): served from the capacity
    /// index, no node scans).
    #[must_use]
    pub fn pool_stats(&self) -> Vec<PoolStats> {
        self.pools
            .iter()
            .enumerate()
            .map(|(i, p)| PoolStats {
                id: GpuTypeId(i),
                spec: p.spec,
                total_gpus: p.free.len() * p.spec.gpus_per_node,
                free_gpus: p.free_total,
                failed_gpus: p.failed_total,
            })
            .collect()
    }

    /// Whether `n` GPUs of type `id` could be allocated right now.
    #[must_use]
    pub fn can_alloc(&self, id: GpuTypeId, n: usize) -> bool {
        n > 0 && self.free_gpus(id) >= n
    }

    /// Allocates `n` GPUs from pool `id`, packing onto as few nodes as
    /// possible.
    ///
    /// Strategy: first try to fit the whole request on the single
    /// partially-free node with the *least* sufficient free space (best
    /// fit); otherwise take whole free nodes greedily and finish with a
    /// best-fit remainder.
    ///
    /// # Examples
    ///
    /// ```
    /// use arena_cluster::{presets, GpuTypeId};
    ///
    /// let mut cluster = presets::physical_testbed();
    /// let a40 = cluster.pool_by_gpu_name("A40").unwrap();
    /// let alloc = cluster.allocate(a40, 8).unwrap();
    /// assert_eq!(alloc.total_gpus(), 8);
    /// assert_eq!(alloc.num_nodes(), 4); // 2-GPU A40 servers
    /// cluster.release(&alloc).unwrap();
    /// assert_eq!(cluster.free_gpus(a40), 32);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownPool`] for a bad pool id and
    /// [`ClusterError::Insufficient`] when fewer than `n` GPUs are free.
    pub fn allocate(&mut self, id: GpuTypeId, n: usize) -> Result<Allocation, ClusterError> {
        let pool = self
            .pools
            .get_mut(id.0)
            .ok_or(ClusterError::UnknownPool(id))?;
        let free_total = pool.free_total;
        if n == 0 || free_total < n {
            return Err(ClusterError::Insufficient {
                requested: n,
                free: free_total,
            });
        }

        let mut node_gpus: Vec<(usize, usize)> = Vec::new();
        let mut remaining = n;

        // Best fit on a single node if possible.
        if let Some((node, _)) = pool
            .free
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f >= remaining)
            .min_by_key(|&(_, &f)| f)
        {
            pool.update_node(node, pool.used[node] + remaining, pool.health[node]);
            node_gpus.push((node, remaining));
            return Ok(Allocation {
                pool: id,
                node_gpus,
            });
        }

        // Otherwise take the fullest nodes first to minimise node count.
        let mut order: Vec<usize> = (0..pool.free.len()).filter(|&i| pool.free[i] > 0).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(pool.free[i]));
        for node in order {
            if remaining == 0 {
                break;
            }
            let take = pool.free[node].min(remaining);
            pool.update_node(node, pool.used[node] + take, pool.health[node]);
            node_gpus.push((node, take));
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0);
        Ok(Allocation {
            pool: id,
            node_gpus,
        })
    }

    /// Releases a previously granted allocation.
    ///
    /// GPUs return to the free pool only on healthy nodes; on failed or
    /// draining nodes they become unavailable capacity until the node is
    /// repaired.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::BadRelease`] if the allocation refers to an
    /// unknown pool/node or releases more GPUs than a node has granted
    /// (double free).
    pub fn release(&mut self, alloc: &Allocation) -> Result<(), ClusterError> {
        let pool = self
            .pools
            .get_mut(alloc.pool.0)
            .ok_or(ClusterError::BadRelease)?;
        // Validate before mutating so a failed release leaves books intact.
        for &(node, gpus) in &alloc.node_gpus {
            let used = *pool.used.get(node).ok_or(ClusterError::BadRelease)?;
            if gpus > used {
                return Err(ClusterError::BadRelease);
            }
        }
        for &(node, gpus) in &alloc.node_gpus {
            pool.update_node(node, pool.used[node] - gpus, pool.health[node]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuSpec;

    fn small_cluster() -> Cluster {
        // 4 nodes x 4 A100, 8 nodes x 2 A10.
        Cluster::new(&[
            (NodeSpec::with_default_links(GpuSpec::A100, 4), 4),
            (NodeSpec::with_default_links(GpuSpec::A10, 2), 8),
        ])
    }

    #[test]
    fn totals() {
        let c = small_cluster();
        assert_eq!(c.total_gpus(), 16 + 16);
        assert_eq!(c.free_gpus(GpuTypeId(0)), 16);
        assert_eq!(c.free_gpus(GpuTypeId(1)), 16);
        assert_eq!(c.num_pools(), 2);
    }

    #[test]
    fn single_node_best_fit() {
        let mut c = small_cluster();
        // Leave node 0 with 1 free GPU, then request 1: best fit should use
        // the 1-free node, not break a fresh node.
        let a = c.allocate(GpuTypeId(0), 3).unwrap();
        assert_eq!(a.num_nodes(), 1);
        let b = c.allocate(GpuTypeId(0), 1).unwrap();
        assert_eq!(b.node_gpus, vec![(a.node_gpus[0].0, 1)]);
    }

    #[test]
    fn multi_node_allocation_packs() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 10).unwrap();
        assert_eq!(a.total_gpus(), 10);
        // 10 GPUs over 4-GPU nodes must span exactly 3 nodes.
        assert_eq!(a.num_nodes(), 3);
        assert_eq!(a.mesh().max_gpus_per_node, 4);
    }

    #[test]
    fn allocate_all_then_fail() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(1), 16).unwrap();
        assert_eq!(a.total_gpus(), 16);
        assert_eq!(
            c.allocate(GpuTypeId(1), 1),
            Err(ClusterError::Insufficient {
                requested: 1,
                free: 0
            })
        );
    }

    #[test]
    fn release_restores_capacity() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 13).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 3);
        c.release(&a).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 16);
    }

    #[test]
    fn double_release_rejected() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 16).unwrap();
        c.release(&a).unwrap();
        assert_eq!(c.release(&a), Err(ClusterError::BadRelease));
        // Books untouched by failed release.
        assert_eq!(c.free_gpus(GpuTypeId(0)), 16);
    }

    #[test]
    fn zero_request_rejected() {
        let mut c = small_cluster();
        assert!(matches!(
            c.allocate(GpuTypeId(0), 0),
            Err(ClusterError::Insufficient { .. })
        ));
    }

    #[test]
    fn unknown_pool_rejected() {
        let mut c = small_cluster();
        assert_eq!(
            c.allocate(GpuTypeId(9), 1),
            Err(ClusterError::UnknownPool(GpuTypeId(9)))
        );
    }

    #[test]
    fn fail_node_removes_free_capacity() {
        let mut c = small_cluster();
        c.fail_node(GpuTypeId(0), 1).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 12);
        assert_eq!(c.failed_gpus(GpuTypeId(0)), 4);
        assert_eq!(c.node_health(GpuTypeId(0), 1), Ok(NodeHealth::Failed));
        // Allocations avoid the failed node.
        let a = c.allocate(GpuTypeId(0), 12).unwrap();
        assert!(!a.uses_node(GpuTypeId(0), 1));
        assert_eq!(
            c.allocate(GpuTypeId(0), 1),
            Err(ClusterError::Insufficient {
                requested: 1,
                free: 0
            })
        );
    }

    #[test]
    fn release_on_failed_node_goes_to_failed_capacity() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 4).unwrap();
        let node = a.node_gpus[0].0;
        c.fail_node(GpuTypeId(0), node).unwrap();
        // While the evicted job still holds the allocation, its GPUs count
        // as allocated, not failed.
        assert_eq!(c.failed_gpus(GpuTypeId(0)), 0);
        c.release(&a).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 12);
        assert_eq!(c.failed_gpus(GpuTypeId(0)), 4);
        // Repair restores the full pool.
        c.repair_node(GpuTypeId(0), node).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 16);
        assert_eq!(c.failed_gpus(GpuTypeId(0)), 0);
    }

    #[test]
    fn repair_respects_surviving_allocations() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 3).unwrap();
        let node = a.node_gpus[0].0;
        c.fail_node(GpuTypeId(0), node).unwrap();
        // Repair before the allocation is released: only the node's idle
        // GPU returns to the free pool.
        c.repair_node(GpuTypeId(0), node).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 13);
        c.release(&a).unwrap();
        assert_eq!(c.free_gpus(GpuTypeId(0)), 16);
    }

    #[test]
    fn drain_blocks_new_allocations_but_keeps_running_jobs() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 2).unwrap();
        let node = a.node_gpus[0].0;
        c.drain_node(GpuTypeId(0), node).unwrap();
        assert_eq!(c.node_health(GpuTypeId(0), node), Ok(NodeHealth::Draining));
        assert_eq!(c.free_gpus(GpuTypeId(0)), 12);
        let b = c.allocate(GpuTypeId(0), 4).unwrap();
        assert!(!b.uses_node(GpuTypeId(0), node));
        // The draining node's job releases into unavailable capacity.
        c.release(&a).unwrap();
        assert_eq!(c.failed_gpus(GpuTypeId(0)), 4);
    }

    #[test]
    fn health_conservation_invariant() {
        let mut c = small_cluster();
        let a = c.allocate(GpuTypeId(0), 7).unwrap();
        c.fail_node(GpuTypeId(0), 0).unwrap();
        c.fail_node(GpuTypeId(0), 3).unwrap();
        let id = GpuTypeId(0);
        assert_eq!(
            c.free_gpus(id) + c.used_gpus(id) + c.failed_gpus(id),
            16,
            "free + allocated + failed must equal capacity"
        );
        c.release(&a).unwrap();
        c.repair_node(GpuTypeId(0), 0).unwrap();
        assert_eq!(c.free_gpus(id) + c.used_gpus(id) + c.failed_gpus(id), 16);
    }

    #[test]
    fn bad_node_indices_rejected() {
        let mut c = small_cluster();
        assert_eq!(
            c.fail_node(GpuTypeId(0), 99),
            Err(ClusterError::UnknownNode {
                pool: GpuTypeId(0),
                node: 99
            })
        );
        assert_eq!(
            c.fail_node(GpuTypeId(9), 0),
            Err(ClusterError::UnknownPool(GpuTypeId(9)))
        );
    }

    #[test]
    fn pool_stats_report_failed_capacity() {
        let mut c = small_cluster();
        c.fail_node(GpuTypeId(1), 0).unwrap();
        let stats = c.pool_stats();
        assert_eq!(stats[1].total_gpus, 16);
        assert_eq!(stats[1].free_gpus, 14);
        assert_eq!(stats[1].failed_gpus, 2);
        assert_eq!(stats[0].failed_gpus, 0);
    }

    /// The incremental capacity index must agree with a from-scratch scan
    /// of the node books after any interleaving of allocate / release /
    /// fail / drain / repair.
    #[test]
    fn capacity_index_matches_node_scans() {
        let mut c = small_cluster();
        let scan_check = |c: &Cluster| {
            for (i, p) in c.pools.iter().enumerate() {
                let id = GpuTypeId(i);
                let free: usize = p.free.iter().sum();
                let used: usize = p.used.iter().sum();
                let failed: usize = (0..p.free.len()).map(|n| p.failed_contrib(n)).sum();
                assert_eq!(c.free_gpus(id), free, "pool {i} free");
                assert_eq!(c.used_gpus(id), used, "pool {i} used");
                assert_eq!(c.failed_gpus(id), failed, "pool {i} failed");
                assert_eq!(
                    free + used + failed,
                    p.free.len() * p.spec.gpus_per_node,
                    "pool {i} conservation"
                );
            }
        };
        let mut held: Vec<Allocation> = Vec::new();
        // A deterministic pseudo-random walk over every operation kind,
        // including idempotent re-fails and repairs of busy nodes.
        let mut x: u64 = 0x9e37_79b9;
        for step in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pool = GpuTypeId((x >> 33) as usize % 2);
            let node = (x >> 17) as usize % c.num_nodes(pool);
            match step % 7 {
                0 | 1 => {
                    let want = 1 + (x as usize % 6);
                    if let Ok(a) = c.allocate(pool, want) {
                        held.push(a);
                    }
                }
                2 => {
                    if !held.is_empty() {
                        let a = held.swap_remove(x as usize % held.len());
                        c.release(&a).unwrap();
                    }
                }
                3 => c.fail_node(pool, node).unwrap(),
                4 => c.drain_node(pool, node).unwrap(),
                _ => c.repair_node(pool, node).unwrap(),
            }
            scan_check(&c);
        }
        for a in held {
            c.release(&a).unwrap();
        }
        scan_check(&c);
    }

    #[test]
    fn pool_lookup_by_name() {
        let c = small_cluster();
        assert_eq!(c.pool_by_gpu_name("A100"), Some(GpuTypeId(0)));
        assert_eq!(c.pool_by_gpu_name("A10"), Some(GpuTypeId(1)));
        assert_eq!(c.pool_by_gpu_name("H100"), None);
    }
}
