//! Hybrid parallelism plan representation.

use std::ops::Range;

use serde::Serialize;

use arena_model::ModelGraph;

/// The internal parallelism of one pipeline stage: `dp` data-parallel
/// replicas, each sharded over `tp` tensor-parallel devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct StagePlan {
    /// Data-parallel degree.
    pub dp: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
}

impl StagePlan {
    /// A pure data-parallel split over `g` GPUs.
    #[must_use]
    pub fn dp_only(g: usize) -> Self {
        StagePlan { dp: g, tp: 1 }
    }

    /// A pure tensor-parallel split over `g` GPUs.
    #[must_use]
    pub fn tp_only(g: usize) -> Self {
        StagePlan { dp: 1, tp: g }
    }

    /// GPUs the stage occupies.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.dp * self.tp
    }

    /// Whether the plan uses any tensor parallelism.
    #[must_use]
    pub fn uses_tp(&self) -> bool {
        self.tp > 1
    }

    /// Compact label, e.g. `"D4T2"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("D{}T{}", self.dp, self.tp)
    }
}

/// One pipeline stage: a contiguous operator range, its GPU share and its
/// internal parallelism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageAssignment {
    /// Operators `[start, end)` of the model graph owned by this stage.
    pub op_range: Range<usize>,
    /// Internal parallelism; `plan.gpus()` is the stage's GPU count.
    pub plan: StagePlan,
}

impl StageAssignment {
    /// GPUs the stage occupies.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.plan.gpus()
    }
}

/// A complete hybrid plan: an ordered list of pipeline stages.
///
/// The pipeline degree is `stages.len()`; following GPipe (and the paper,
/// Fig. 10), the number of micro-batches per iteration is four times the
/// stage count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PipelinePlan {
    /// Pipeline stages in order.
    pub stages: Vec<StageAssignment>,
}

impl PipelinePlan {
    /// Number of pipeline stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total GPUs across all stages.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.stages.iter().map(StageAssignment::gpus).sum()
    }

    /// Micro-batches per iteration (GPipe rule: `4 × stages`).
    #[must_use]
    pub fn microbatches(&self) -> usize {
        4 * self.num_stages()
    }

    /// Checks that the plan is structurally valid for `graph`: stages are
    /// contiguous, non-empty, cover every operator exactly once, and every
    /// stage has at least one GPU.
    #[must_use]
    pub fn is_valid_for(&self, graph: &ModelGraph) -> bool {
        if self.stages.is_empty() {
            return false;
        }
        let mut next = 0;
        for st in &self.stages {
            if st.op_range.start != next || st.op_range.is_empty() || st.gpus() == 0 {
                return false;
            }
            next = st.op_range.end;
        }
        next == graph.len()
    }

    /// Compact label, e.g. `"P4[D2T1,D2T1,D1T2,D1T2]"`.
    #[must_use]
    pub fn label(&self) -> String {
        let inner: Vec<String> = self.stages.iter().map(|s| s.plan.label()).collect();
        format!("P{}[{}]", self.num_stages(), inner.join(","))
    }

    /// Paper-style summary when all stages share the same split, e.g.
    /// `"D2T2-P4"`; falls back to [`label`](Self::label) otherwise.
    #[must_use]
    pub fn short_label(&self) -> String {
        let first = self.stages[0].plan;
        if self.stages.iter().all(|s| s.plan == first) {
            format!("D{}T{}-P{}", first.dp, first.tp, self.num_stages())
        } else {
            self.label()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn bert() -> ModelGraph {
        ModelConfig::new(ModelFamily::Bert, 1.3, 256).build()
    }

    fn plan_over(graph: &ModelGraph, cuts: &[usize], plans: &[StagePlan]) -> PipelinePlan {
        let mut stages = Vec::new();
        let mut start = 0;
        for (i, &end) in cuts.iter().chain(std::iter::once(&graph.len())).enumerate() {
            stages.push(StageAssignment {
                op_range: start..end,
                plan: plans[i],
            });
            start = end;
        }
        PipelinePlan { stages }
    }

    #[test]
    fn stage_plan_basics() {
        let p = StagePlan { dp: 4, tp: 2 };
        assert_eq!(p.gpus(), 8);
        assert!(p.uses_tp());
        assert_eq!(p.label(), "D4T2");
        assert!(!StagePlan::dp_only(8).uses_tp());
        assert_eq!(StagePlan::tp_only(8).tp, 8);
    }

    #[test]
    fn valid_plan_accepted() {
        let g = bert();
        let plan = plan_over(
            &g,
            &[g.len() / 2],
            &[StagePlan::dp_only(2), StagePlan::tp_only(2)],
        );
        assert!(plan.is_valid_for(&g));
        assert_eq!(plan.total_gpus(), 4);
        assert_eq!(plan.microbatches(), 8);
    }

    #[test]
    fn gapped_plan_rejected() {
        let g = bert();
        let mut plan = plan_over(
            &g,
            &[g.len() / 2],
            &[StagePlan::dp_only(2), StagePlan::dp_only(2)],
        );
        plan.stages[1].op_range.start += 1;
        assert!(!plan.is_valid_for(&g));
    }

    #[test]
    fn incomplete_plan_rejected() {
        let g = bert();
        let mut plan = plan_over(&g, &[], &[StagePlan::dp_only(4)]);
        plan.stages[0].op_range.end -= 1;
        assert!(!plan.is_valid_for(&g));
    }

    #[test]
    fn labels() {
        let g = bert();
        let uniform = plan_over(
            &g,
            &[g.len() / 2],
            &[StagePlan { dp: 2, tp: 2 }, StagePlan { dp: 2, tp: 2 }],
        );
        assert_eq!(uniform.short_label(), "D2T2-P2");
        let mixed = plan_over(
            &g,
            &[g.len() / 2],
            &[StagePlan::dp_only(4), StagePlan::tp_only(4)],
        );
        assert_eq!(mixed.short_label(), "P2[D4T1,D1T4]");
    }
}
