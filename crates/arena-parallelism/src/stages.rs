//! Stage determination (§4.2, Fig. 7).
//!
//! Given a model graph, an allocated GPU count and a desired stage count,
//! Arena decides *where* to cut the model and *how many* GPUs each stage
//! receives — before any data/tensor parallelism is chosen. The heuristic
//! follows the paper:
//!
//! 1. Map the `G` allocated GPUs onto operators proportionally to their
//!    FLOPs, so that every operator's "theoretical" execution time
//!    `FLOPs / gpus` is equal (a full-state pipeline).
//! 2. Choose the `S − 1` cut boundaries with the smallest inter-operator
//!    activation traffic, subject to every resulting stage accumulating a
//!    meaningful GPU share.
//! 3. Accumulate each stage's fractional GPUs and round to a power of two
//!    (the common GPU topology in training clusters), repairing the total
//!    so it sums exactly to `G`.

use std::ops::Range;

use serde::Serialize;

use arena_model::ModelGraph;

/// A stage partition: where the model is cut and each stage's GPU share.
///
/// This is a [`crate::PipelinePlan`] without the per-stage `(dp, tp)`
/// choice — exactly the information a Cell fixes (§4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StagePartition {
    /// Operator ranges of each stage, in order.
    pub ranges: Vec<Range<usize>>,
    /// GPUs assigned to each stage (powers of two summing to the total).
    pub gpus: Vec<usize>,
}

impl StagePartition {
    /// Number of stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.ranges.len()
    }

    /// Total GPUs across stages.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.gpus.iter().sum()
    }
}

/// Largest power of two that is `<= x`, at least 1.
#[must_use]
pub fn pow2_floor(x: f64) -> usize {
    if x <= 1.0 {
        return 1;
    }
    1 << (x.log2().floor() as u32)
}

/// Rounds `x` to the nearest power of two (geometric midpoint), at least 1.
#[must_use]
pub fn pow2_round(x: f64) -> usize {
    let lo = pow2_floor(x);
    let hi = lo * 2;
    // Geometric midpoint: sqrt(lo * hi) = lo * sqrt(2).
    if x >= lo as f64 * std::f64::consts::SQRT_2 {
        hi
    } else {
        lo
    }
}

/// Splits `total` GPUs into `parts` power-of-two summands.
///
/// Starts from the binary decomposition of `total` and repeatedly splits
/// the largest part in half until `parts` summands exist, yielding the
/// most balanced composition (e.g. `8 = 4 + 2 + 2` for three stages).
/// A composition exists iff `popcount(total) <= parts <= total`.
#[must_use]
pub fn pow2_composition(total: usize, parts: usize) -> Option<Vec<usize>> {
    if parts == 0 || total < parts || (total.count_ones() as usize) > parts {
        return None;
    }
    // Binary decomposition, largest first.
    let mut out: Vec<usize> = (0..usize::BITS)
        .rev()
        .filter(|&b| total >> b & 1 == 1)
        .map(|b| 1_usize << b)
        .collect();
    while out.len() < parts {
        // Split the largest splittable part (front of the sorted vec).
        let i = out
            .iter()
            .position(|&p| p > 1)
            .expect("parts <= total guarantees a splittable part");
        let half = out[i] / 2;
        out[i] = half;
        out.insert(i + 1, half);
        // Keep descending order: the halves may be smaller than later
        // parts only when duplicates exist, which descending insert keeps.
        out.sort_unstable_by(|a, b| b.cmp(a));
    }
    Some(out)
}

/// Determines the stage partition for a Cell (§4.2).
///
/// Returns `None` when no partition exists: fewer GPUs than stages, more
/// stages than operators, no power-of-two composition of the GPU count, or
/// the FLOPs distribution is so skewed that some stage would own no
/// operator.
///
/// # Examples
///
/// ```
/// use arena_model::zoo::{ModelConfig, ModelFamily};
/// use arena_parallelism::determine_stages;
///
/// let graph = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
/// let part = determine_stages(&graph, 8, 4).unwrap();
/// assert_eq!(part.gpus, vec![2, 2, 2, 2]); // homogeneous layers
/// assert_eq!(part.total_gpus(), 8);
/// ```
#[must_use]
pub fn determine_stages(
    graph: &ModelGraph,
    total_gpus: usize,
    num_stages: usize,
) -> Option<StagePartition> {
    let n = graph.len();
    if num_stages == 0 || num_stages > n || total_gpus < num_stages {
        return None;
    }
    if num_stages == 1 {
        let whole = 0..n;
        return Some(StagePartition {
            ranges: vec![whole],
            gpus: vec![total_gpus],
        });
    }

    // Step 1: fractional GPU share per operator, proportional to FLOPs
    // (Fig. 7: every operator's FLOPs / GPUs is equal, a full-state
    // pipeline in theory).
    let total_flops = graph.total_flops_fwd();
    if total_flops <= 0.0 {
        return None;
    }
    let share: Vec<f64> = graph
        .ops
        .iter()
        .map(|o| total_gpus as f64 * o.flops_fwd / total_flops)
        .collect();
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &s in &share {
        prefix.push(prefix.last().unwrap() + s);
    }

    // Step 2: fix each stage's GPU count to a power of two (the common GPU
    // topology in a training cluster) using the most balanced composition.
    let gpus = pow2_composition(total_gpus, num_stages)?;

    // Step 3: place each cut at the cheapest communication boundary whose
    // prefix share is close to the stage's cumulative GPU target. The
    // window of acceptable boundaries spans ±40% of the adjacent stage
    // sizes, which keeps stages balanced while letting the cut slide to a
    // low-traffic boundary (the paper's "minimise inter-stage
    // communication" criterion).
    let mut cuts: Vec<usize> = Vec::with_capacity(num_stages - 1);
    let mut cum_target = 0.0;
    let mut prev_cut = 0; // First op index of the current stage.
    for s in 0..num_stages - 1 {
        cum_target += gpus[s] as f64;
        let slack = 0.4 * (gpus[s].min(gpus[s + 1]) as f64).max(1.0);
        // A cut after op `c` keeps ops [prev_cut, c] in stage s; leave at
        // least one op per remaining stage.
        let candidates = prev_cut..n - (num_stages - 1 - s);
        if candidates.is_empty() {
            return None;
        }
        let dist = |c: usize| (prefix[c + 1] - cum_target).abs();
        // Inside the balance window the cheapest boundary wins; if the
        // window is empty, fall back to the most balanced cut.
        let in_window: Vec<usize> = candidates.clone().filter(|&c| dist(c) <= slack).collect();
        let cut = if in_window.is_empty() {
            candidates
                .min_by(|&a, &b| dist(a).partial_cmp(&dist(b)).unwrap())
                .unwrap()
        } else {
            *in_window
                .iter()
                .min_by(|&&a, &&b| {
                    graph
                        .boundary_bytes(a)
                        .partial_cmp(&graph.boundary_bytes(b))
                        .unwrap()
                        .then(dist(a).partial_cmp(&dist(b)).unwrap())
                })
                .unwrap()
        };
        cuts.push(cut);
        prev_cut = cut + 1;
    }

    // Cuts must be strictly increasing with room for every later stage;
    // the candidate range above guarantees it, but a skewed share profile
    // can still produce an empty tail stage.
    if prev_cut >= n {
        return None;
    }

    let mut ranges = Vec::with_capacity(num_stages);
    let mut start = 0;
    for &c in &cuts {
        ranges.push(start..c + 1);
        start = c + 1;
    }
    ranges.push(start..n);

    Some(StagePartition { ranges, gpus })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn bert() -> ModelGraph {
        ModelConfig::new(ModelFamily::Bert, 1.3, 256).build()
    }

    #[test]
    fn pow2_round_behaviour() {
        assert_eq!(pow2_round(0.3), 1);
        assert_eq!(pow2_round(1.3), 1);
        assert_eq!(pow2_round(1.5), 2);
        assert_eq!(pow2_round(3.0), 4);
        assert_eq!(pow2_round(2.7), 2);
        assert_eq!(pow2_round(6.0), 8);
        assert_eq!(pow2_round(5.0), 4);
    }

    #[test]
    fn single_stage_takes_everything() {
        let g = bert();
        let p = determine_stages(&g, 8, 1).unwrap();
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.gpus, vec![8]);
        assert_eq!(p.ranges[0], 0..g.len());
    }

    #[test]
    fn partition_covers_graph_and_sums_gpus() {
        let g = bert();
        for stages in [2, 4, 8] {
            let p = determine_stages(&g, 8, stages)
                .unwrap_or_else(|| panic!("no partition for {stages} stages"));
            assert_eq!(p.num_stages(), stages);
            assert_eq!(p.total_gpus(), 8);
            // Contiguous cover.
            let mut next = 0;
            for r in &p.ranges {
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, g.len());
            // All power-of-two stage sizes.
            for &gp in &p.gpus {
                assert!(gp.is_power_of_two(), "{gp} not a power of two");
            }
        }
    }

    #[test]
    fn balanced_model_gets_balanced_stages() {
        // BERT layers are homogeneous, so a 4-stage cut of 8 GPUs should
        // give every stage 2 GPUs.
        let g = bert();
        let p = determine_stages(&g, 8, 4).unwrap();
        assert_eq!(p.gpus, vec![2, 2, 2, 2]);
    }

    #[test]
    fn infeasible_requests_rejected() {
        let g = bert();
        assert!(determine_stages(&g, 2, 4).is_none()); // fewer GPUs than stages
        assert!(determine_stages(&g, 8, 0).is_none());
        assert!(determine_stages(&g, 1000, g.len() + 1).is_none());
    }

    #[test]
    fn wresnet_partitions_at_cheap_boundaries() {
        // WideResNet activations shrink with depth; cutting late is cheaper
        // than cutting early, so a 2-stage partition should not cut in the
        // first (most expensive) stage of blocks.
        let g = ModelConfig::new(ModelFamily::WideResNet, 1.0, 512).build();
        let p = determine_stages(&g, 8, 2).unwrap();
        assert!(
            p.ranges[0].end > 4,
            "cut at {} is inside the early high-traffic blocks",
            p.ranges[0].end
        );
    }

    #[test]
    fn works_for_all_table2_models() {
        for cfg in arena_model::zoo::table2_configs() {
            let g = cfg.build();
            for (gpus, stages) in [(4, 2), (8, 4), (16, 4)] {
                if let Some(p) = determine_stages(&g, gpus, stages) {
                    assert_eq!(p.total_gpus(), gpus, "{}", cfg.name());
                }
            }
        }
    }
}
