//! Parallelism plans and the Cell exploration space.
//!
//! This crate implements the parallelism machinery of §4:
//!
//! * [`plan`] — the representation of a hybrid parallelism plan: pipeline
//!   stages, each internally split into data × tensor parallelism.
//! * [`stages`] — the paper's stage-determination heuristic (§4.2, Fig. 7):
//!   map allocated GPUs onto operators proportionally to FLOPs, cut the
//!   model at the cheapest communication boundaries, and round per-stage
//!   GPU counts to powers of two.
//! * [`space`] — enumeration of a Cell's exploration space (all `(dp, tp)`
//!   combinations per stage) and of the estimator's `2^Ns` *assembled*
//!   grid sample (DP-only / TP-only per stage, §5.1).

pub mod plan;
pub mod space;
pub mod stages;

pub use plan::{PipelinePlan, StageAssignment, StagePlan};
pub use space::{assembled_plans, stage_plan_options, PlanSpace};
pub use stages::{determine_stages, StagePartition};
