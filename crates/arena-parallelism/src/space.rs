//! Enumeration of a Cell's parallelism exploration space (§4.2, §5.1).

use crate::plan::{PipelinePlan, StageAssignment, StagePlan};
use crate::stages::StagePartition;

/// All `(dp, tp)` splits of `g` GPUs with power-of-two factors.
///
/// For a power-of-two `g` this yields `log2(g) + 1` options ordered from
/// DP-only to TP-only — the single-stage exploration axis of Fig. 11. For
/// a non-power-of-two `g` (rare; stage determination rounds to powers of
/// two) only the two pure splits are offered.
#[must_use]
pub fn stage_plan_options(g: usize) -> Vec<StagePlan> {
    assert!(g > 0, "a stage must own at least one GPU");
    if g.is_power_of_two() {
        let bits = g.trailing_zeros();
        (0..=bits)
            .map(|t| StagePlan {
                dp: g >> t,
                tp: 1 << t,
            })
            .collect()
    } else if g == 1 {
        vec![StagePlan { dp: 1, tp: 1 }]
    } else {
        vec![StagePlan::dp_only(g), StagePlan::tp_only(g)]
    }
}

/// The full exploration space of a Cell: the cartesian product of each
/// stage's `(dp, tp)` options.
///
/// The space is iterated lazily; it is never materialised, because for
/// deep pipelines it holds `(log2(g) + 1)^S` plans.
#[derive(Debug, Clone)]
pub struct PlanSpace {
    partition: StagePartition,
    options: Vec<Vec<StagePlan>>,
}

impl PlanSpace {
    /// Builds the exploration space of a stage partition.
    #[must_use]
    pub fn new(partition: StagePartition) -> Self {
        let options = partition
            .gpus
            .iter()
            .map(|&g| stage_plan_options(g))
            .collect();
        PlanSpace { partition, options }
    }

    /// Builds a *restricted* space from explicit per-stage option lists
    /// (used by the Cell-guided tuner to search a pruned space).
    ///
    /// # Panics
    ///
    /// Panics if the option list length differs from the stage count or
    /// any option's GPU count differs from the stage's allocation.
    #[must_use]
    pub fn with_options(partition: StagePartition, options: Vec<Vec<StagePlan>>) -> Self {
        assert_eq!(options.len(), partition.num_stages());
        for (opts, &g) in options.iter().zip(&partition.gpus) {
            assert!(!opts.is_empty(), "a stage must keep at least one option");
            assert!(opts.iter().all(|p| p.gpus() == g));
        }
        PlanSpace { partition, options }
    }

    /// The underlying stage partition.
    #[must_use]
    pub fn partition(&self) -> &StagePartition {
        &self.partition
    }

    /// Per-stage option lists.
    #[must_use]
    pub fn options(&self) -> &[Vec<StagePlan>] {
        &self.options
    }

    /// Number of plans in the space, saturating at `usize::MAX`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len_u128().min(usize::MAX as u128) as usize
    }

    /// Exact number of plans in the space (deep pipelines overflow usize).
    #[must_use]
    pub fn len_u128(&self) -> u128 {
        self.options.iter().map(|o| o.len() as u128).product()
    }

    /// Materialises the `idx`-th plan in mixed-radix order (stage 0 is the
    /// least-significant digit).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len_u128()`.
    #[must_use]
    pub fn plan_at_index(&self, mut idx: u128) -> PipelinePlan {
        assert!(idx < self.len_u128(), "plan index out of range");
        let digits: Vec<usize> = self
            .options
            .iter()
            .map(|opts| {
                let d = (idx % opts.len() as u128) as usize;
                idx /= opts.len() as u128;
                d
            })
            .collect();
        self.plan_at(&digits)
    }

    /// An evenly strided sample of at most `cap` plans covering the space.
    pub fn sample(&self, cap: usize) -> impl Iterator<Item = PipelinePlan> + '_ {
        let total = self.len_u128();
        let take = (cap.max(1) as u128).min(total);
        let stride = total.checked_div(take).unwrap_or(1);
        (0..take).map(move |i| self.plan_at_index(i * stride))
    }

    /// Whether the space is empty (never true for a valid partition).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every plan in the space.
    pub fn iter(&self) -> impl Iterator<Item = PipelinePlan> + '_ {
        PlanSpaceIter {
            space: self,
            idx: vec![0; self.options.len()],
            done: false,
        }
    }

    /// Materialises the plan at the given per-stage option indices.
    fn plan_at(&self, idx: &[usize]) -> PipelinePlan {
        let stages = self
            .partition
            .ranges
            .iter()
            .zip(idx)
            .enumerate()
            .map(|(s, (range, &i))| StageAssignment {
                op_range: range.clone(),
                plan: self.options[s][i],
            })
            .collect();
        PipelinePlan { stages }
    }
}

struct PlanSpaceIter<'a> {
    space: &'a PlanSpace,
    idx: Vec<usize>,
    done: bool,
}

impl Iterator for PlanSpaceIter<'_> {
    type Item = PipelinePlan;

    fn next(&mut self) -> Option<PipelinePlan> {
        if self.done {
            return None;
        }
        let plan = self.space.plan_at(&self.idx);
        // Odometer increment.
        let mut carried = true;
        for (i, digit) in self.idx.iter_mut().enumerate() {
            *digit += 1;
            if *digit < self.space.options[i].len() {
                carried = false;
                break;
            }
            *digit = 0;
        }
        if carried {
            self.done = true;
        }
        Some(plan)
    }
}

/// The estimator's `2^Ns` assembled plans (§5.1): every combination of
/// DP-only / TP-only per stage.
///
/// This is the grid sample of the full space that the agile estimator
/// prices by combining two physical profilings per stage with offline
/// communication tables (Fig. 9).
#[must_use]
pub fn assembled_plans(partition: &StagePartition) -> Vec<PipelinePlan> {
    let s = partition.num_stages();
    let mut out = Vec::with_capacity(1 << s);
    for mask in 0..(1_u64 << s) {
        let stages = partition
            .ranges
            .iter()
            .zip(&partition.gpus)
            .enumerate()
            .map(|(i, (range, &g))| StageAssignment {
                op_range: range.clone(),
                plan: if mask >> i & 1 == 0 {
                    StagePlan::dp_only(g)
                } else {
                    StagePlan::tp_only(g)
                },
            })
            .collect();
        out.push(PipelinePlan { stages });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::{ModelConfig, ModelFamily};

    fn partition(gpus: &[usize]) -> StagePartition {
        // A synthetic partition over a model with `gpus.len() * 2` ops.
        let ranges = (0..gpus.len()).map(|i| 2 * i..2 * i + 2).collect();
        StagePartition {
            ranges,
            gpus: gpus.to_vec(),
        }
    }

    #[test]
    fn options_for_pow2() {
        let opts = stage_plan_options(8);
        assert_eq!(opts.len(), 4);
        assert_eq!(opts[0], StagePlan::dp_only(8));
        assert_eq!(opts[3], StagePlan::tp_only(8));
        assert!(opts.iter().all(|p| p.gpus() == 8));
    }

    #[test]
    fn options_for_one_gpu() {
        assert_eq!(stage_plan_options(1), vec![StagePlan { dp: 1, tp: 1 }]);
    }

    #[test]
    fn options_for_non_pow2() {
        let opts = stage_plan_options(6);
        assert_eq!(opts.len(), 2);
        assert!(opts.iter().all(|p| p.gpus() == 6));
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = stage_plan_options(0);
    }

    #[test]
    fn space_size_is_product() {
        let space = PlanSpace::new(partition(&[4, 4]));
        assert_eq!(space.len(), 3 * 3);
        assert_eq!(space.iter().count(), 9);
    }

    #[test]
    fn space_iterates_unique_valid_plans() {
        let space = PlanSpace::new(partition(&[2, 4, 2]));
        let plans: Vec<_> = space.iter().collect();
        assert_eq!(plans.len(), 2 * 3 * 2);
        let labels: std::collections::HashSet<String> =
            plans.iter().map(PipelinePlan::label).collect();
        assert_eq!(labels.len(), plans.len(), "duplicate plans in space");
        for p in &plans {
            assert_eq!(p.total_gpus(), 8);
        }
    }

    #[test]
    fn assembled_is_pow2_count_and_subset_of_space() {
        let part = partition(&[4, 4, 4]);
        let assembled = assembled_plans(&part);
        assert_eq!(assembled.len(), 8);
        let full: std::collections::HashSet<String> =
            PlanSpace::new(part).iter().map(|p| p.label()).collect();
        for p in &assembled {
            assert!(full.contains(&p.label()), "{} not in full space", p.label());
        }
    }

    #[test]
    fn assembled_covers_pure_corners() {
        let part = partition(&[4, 4]);
        let labels: Vec<String> = assembled_plans(&part).iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"P2[D4T1,D4T1]".to_string()));
        assert!(labels.contains(&"P2[D1T4,D1T4]".to_string()));
    }

    #[test]
    fn indexed_access_matches_iteration() {
        let space = PlanSpace::new(partition(&[2, 4, 2]));
        let by_iter: Vec<String> = space.iter().map(|p| p.label()).collect();
        let by_index: Vec<String> = (0..space.len_u128())
            .map(|i| space.plan_at_index(i).label())
            .collect();
        assert_eq!(by_iter, by_index);
    }

    #[test]
    fn sample_covers_and_bounds() {
        let space = PlanSpace::new(partition(&[4, 4, 4]));
        assert_eq!(space.sample(1000).count(), space.len());
        let sampled: Vec<_> = space.sample(5).collect();
        assert_eq!(sampled.len(), 5);
        // Sampled plans are distinct and include the first plan.
        let labels: std::collections::HashSet<String> =
            sampled.iter().map(PipelinePlan::label).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_index_out_of_range_panics() {
        let space = PlanSpace::new(partition(&[2]));
        let _ = space.plan_at_index(99);
    }

    #[test]
    fn restricted_space() {
        let part = partition(&[4, 4]);
        let opts = vec![
            vec![StagePlan::dp_only(4), StagePlan { dp: 2, tp: 2 }],
            vec![StagePlan::tp_only(4)],
        ];
        let space = PlanSpace::with_options(part, opts);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn end_to_end_with_real_partition() {
        let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
        let part = crate::stages::determine_stages(&g, 8, 4).unwrap();
        let space = PlanSpace::new(part.clone());
        for plan in space.iter() {
            assert!(plan.is_valid_for(&g));
        }
        for plan in assembled_plans(&part) {
            assert!(plan.is_valid_for(&g));
        }
    }
}
