//! Benchmark and reproduction harness for the Arena evaluation.
//!
//! * The `repro` binary (`cargo run --release -p arena-bench --bin repro`)
//!   regenerates every table and figure of the paper; see
//!   `repro --help`.
//! * The Criterion benches (`cargo bench`) measure the wall-clock of the
//!   reproduction's own machinery: the analytical performance model, the
//!   agile estimator, the Cell-guided tuner and scheduling decisions at
//!   various search depths (the Fig. 21(a) axis).

use std::path::Path;

/// Writes a serialisable experiment result as pretty JSON under
/// `results/`, creating the directory if needed.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(file, value).map_err(std::io::Error::other)
}

/// Writes raw text (e.g. a JSON-Lines decision log) under `results/`,
/// creating the directory if needed. `filename` includes the extension.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_text(filename: &str, body: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(filename), body)
}

/// Lowercases a display name into a filesystem-safe slug
/// (`ElasticFlow-LS` → `elasticflow-ls`).
#[must_use]
pub fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(super::slug("ElasticFlow-LS"), "elasticflow-ls");
        assert_eq!(super::slug("Arena (solver)"), "arena--solver-");
    }

    #[test]
    fn write_json_roundtrip() {
        let tmp = std::env::temp_dir().join("arena-bench-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        super::write_json("unit", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string("results/unit.json").unwrap();
        assert!(body.contains('1'));
        std::env::set_current_dir(old).unwrap();
    }
}
