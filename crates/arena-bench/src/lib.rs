//! Benchmark and reproduction harness for the Arena evaluation.
//!
//! * The `repro` binary (`cargo run --release -p arena-bench --bin repro`)
//!   regenerates every table and figure of the paper; see
//!   `repro --help`.
//! * The Criterion benches (`cargo bench`) measure the wall-clock of the
//!   reproduction's own machinery: the analytical performance model, the
//!   agile estimator, the Cell-guided tuner and scheduling decisions at
//!   various search depths (the Fig. 21(a) axis).

use std::path::{Path, PathBuf};
use std::time::Instant;

/// One timed loop's aggregate in the machine-readable `BENCH_*` schema
/// consumed by `arena-analyze bench-check`.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Stable bench name, e.g. `sched/arena_decision_loaded`.
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Mean wall time per iteration, seconds.
    pub mean_s: f64,
    /// Fastest iteration, seconds.
    pub min_s: f64,
    /// Slowest iteration, seconds.
    pub max_s: f64,
    /// Process peak resident set (`VmHWM`) sampled right after the loop,
    /// bytes. Only memory-gated benches record it; absent elsewhere so
    /// pre-existing entries keep their schema.
    pub peak_rss_bytes: Option<u64>,
    /// Mean heap allocations per iteration, recorded only when the
    /// `alloc-count` feature swaps in the counting allocator; absent
    /// elsewhere so pre-existing entries keep their schema.
    pub allocs_per_iter: Option<u64>,
}

// Hand-written so an absent watermark *omits* the field (the derive
// shim would emit `null`, changing the schema of every historical
// entry).
impl serde::Serialize for BenchEntry {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("iters".to_string(), self.iters.to_value()),
            ("mean_s".to_string(), self.mean_s.to_value()),
            ("min_s".to_string(), self.min_s.to_value()),
            ("max_s".to_string(), self.max_s.to_value()),
        ];
        if let Some(rss) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes".to_string(), rss.to_value()));
        }
        if let Some(allocs) = self.allocs_per_iter {
            fields.push(("allocs_per_iter".to_string(), allocs.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// A full bench run in the `BENCH_*` schema.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchReport {
    /// True when `BENCH_SMOKE=1` collapsed every loop to one iteration
    /// (CI mode: proves the paths run, not how fast).
    pub smoke: bool,
    /// `git rev-parse --short HEAD` at bench time ("unknown" outside a
    /// checkout).
    pub git_rev: String,
    /// Policies the bench suite exercises.
    pub policies: Vec<String>,
    /// The timed entries.
    pub benches: Vec<BenchEntry>,
}

/// The current git revision, if the bench runs inside a checkout.
#[must_use]
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

/// Heap allocations counting, active only under the `alloc-count`
/// feature. Counts `alloc`, `alloc_zeroed` and `realloc` calls from
/// every thread; frees are not counted (the interesting regression is
/// allocation *churn*, and a free implies a prior counted alloc).
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// System-allocator wrapper bumping a global counter per allocation.
    pub struct CountingAlloc;

    // SAFETY: defers every allocation to `System`, which upholds the
    // `GlobalAlloc` contract; the counter update has no effect on the
    // returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Total heap allocations made by the process so far, when the
/// `alloc-count` feature has swapped in the counting global allocator;
/// `None` in a default build. The count is process-wide, so callers
/// measuring a loop must keep other threads quiet across the window.
#[must_use]
pub fn alloc_count() -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        Some(counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

/// Times `iters` executions of `f` and returns the aggregate entry,
/// printing a one-line summary as it goes. Under the `alloc-count`
/// feature the entry also records mean heap allocations per iteration.
pub fn time_loop<F: FnMut()>(name: &str, iters: usize, mut f: F) -> BenchEntry {
    let mut samples = Vec::with_capacity(iters);
    let allocs_before = alloc_count();
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let allocs_per_iter =
        allocs_before.and_then(|a0| Some(alloc_count()?.saturating_sub(a0) / iters.max(1) as u64));
    let sum: f64 = samples.iter().sum();
    let entry = BenchEntry {
        name: name.to_string(),
        iters,
        mean_s: sum / iters as f64,
        min_s: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max_s: samples.iter().copied().fold(0.0, f64::max),
        peak_rss_bytes: None,
        allocs_per_iter,
    };
    println!(
        "{name}: {iters} iters, mean {:.6}s, min {:.6}s",
        entry.mean_s, entry.min_s
    );
    entry
}

/// The process's peak resident set size (`VmHWM` from
/// `/proc/self/status`) in bytes, or `None` where procfs is absent.
///
/// `VmHWM` is a high-water mark: monotone over the process lifetime and
/// never reset. Sampling it after consecutive in-process runs of
/// growing size therefore yields a sound flatness check — if the big
/// run barely moves the mark the small run set, its working set did not
/// grow with input size.
#[must_use]
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`.
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Writes a [`BenchReport`] as pretty JSON at the workspace root (where
/// CI's `arena-analyze bench-check` looks for `BENCH_*.json` trend
/// files) and returns the path written.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn write_bench_report(filename: &str, report: &BenchReport) -> std::io::Result<PathBuf> {
    let root: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let path = root.join(filename);
    let body = serde_json::to_string_pretty(report).map_err(std::io::Error::other)?;
    std::fs::write(&path, body)?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// Writes a serialisable experiment result as pretty JSON under
/// `results/`, creating the directory if needed.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(file, value).map_err(std::io::Error::other)
}

/// Writes raw text (e.g. a JSON-Lines decision log) under `results/`,
/// creating the directory if needed. `filename` includes the extension.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_text(filename: &str, body: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(filename), body)
}

/// Lowercases a display name into a filesystem-safe slug
/// (`ElasticFlow-LS` → `elasticflow-ls`).
#[must_use]
pub fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn time_loop_aggregates_samples() {
        let mut n = 0_u64;
        let e = super::time_loop("unit/spin", 4, || n += 1);
        assert_eq!(n, 4);
        assert_eq!(e.iters, 4);
        assert!(e.min_s <= e.mean_s && e.mean_s <= e.max_s);
    }

    #[test]
    fn bench_report_serialises_to_the_schema() {
        let report = super::BenchReport {
            smoke: true,
            git_rev: "deadbee".into(),
            policies: vec!["Arena".into()],
            benches: vec![super::BenchEntry {
                name: "x/y".into(),
                iters: 1,
                mean_s: 0.5,
                min_s: 0.5,
                max_s: 0.5,
                peak_rss_bytes: None,
                allocs_per_iter: None,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        for key in ["smoke", "git_rev", "policies", "benches", "mean_s"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // RSS and alloc counts are opt-in: absent entries keep the
        // historical schema, and recording one adds the field.
        assert!(!json.contains("peak_rss_bytes"));
        assert!(!json.contains("allocs_per_iter"));
        let mut with_rss = report.clone();
        with_rss.benches[0].peak_rss_bytes = Some(1 << 20);
        with_rss.benches[0].allocs_per_iter = Some(3);
        let json = serde_json::to_string(&with_rss).unwrap();
        assert!(json.contains("\"peak_rss_bytes\":1048576"));
        assert!(json.contains("\"allocs_per_iter\":3"));
    }

    #[test]
    fn vm_hwm_reads_on_linux() {
        // On Linux procfs is always there; elsewhere the probe is None.
        if std::path::Path::new("/proc/self/status").exists() {
            let hwm = super::vm_hwm_bytes().expect("VmHWM readable");
            assert!(hwm > 0, "peak RSS cannot be zero for a live process");
            // Growing the heap never lowers a high-water mark.
            let ballast = vec![0_u8; 4 << 20];
            std::hint::black_box(&ballast);
            assert!(super::vm_hwm_bytes().unwrap() >= hwm);
        } else {
            assert_eq!(super::vm_hwm_bytes(), None);
        }
    }

    #[test]
    fn slug_is_filesystem_safe() {
        assert_eq!(super::slug("ElasticFlow-LS"), "elasticflow-ls");
        assert_eq!(super::slug("Arena (solver)"), "arena--solver-");
    }

    #[test]
    fn write_json_roundtrip() {
        let tmp = std::env::temp_dir().join("arena-bench-test");
        let _ = std::fs::create_dir_all(&tmp);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        super::write_json("unit", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string("results/unit.json").unwrap();
        assert!(body.contains('1'));
        std::env::set_current_dir(old).unwrap();
    }
}
