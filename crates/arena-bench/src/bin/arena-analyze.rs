//! `arena-analyze` — offline analysis of timeline artifacts and bench
//! regression checking.
//!
//! ```text
//! arena-analyze summarize <results-dir>
//! arena-analyze diff <dir-a> <dir-b> [--top N]
//! arena-analyze bench-check <old.json> <new.json> [--threshold FRAC] [--rss-threshold FRAC]
//! arena-analyze metrics <dump.txt> [<other.txt>] [--prefix P]
//! ```
//!
//! * `summarize` reads the `timeline_*.summary.json` files written by
//!   `repro timeline` and renders the per-policy time-in-state +
//!   utilization comparison.
//! * `diff` compares two such directories (e.g. two branches' runs) and
//!   reports JCT / utilization deltas per policy plus the jobs whose JCT
//!   moved the most.
//! * `bench-check` compares two `BENCH_sim.json` files and exits
//!   non-zero when any bench's mean regressed by more than the
//!   threshold (default 0.20 = +20%). The `smoke:true` single-iteration
//!   format is accepted on either side. With `--rss-threshold` it also
//!   gates `peak_rss_bytes` on entries where both sides record it
//!   (e.g. the streaming fleet benches), at its own fraction.
//! * `metrics` parses a Prometheus-style exposition dump as scraped
//!   from the daemon's `query metrics` (the `metrics` string of the
//!   response, or the raw response line itself) and summarizes it; with
//!   two dumps it reports per-series deltas instead. Exits non-zero on
//!   malformed or empty input — CI uses it as a well-formedness gate.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

use arena::experiments::observability::{timeline_summary_table, TimelineSummary};
use arena::report::Table;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") if args.len() >= 2 => summarize(Path::new(&args[1])),
        Some("diff") if args.len() >= 3 => {
            let top = flag_value(&args, "--top").map_or(5, |v| v.parse().unwrap_or(5));
            diff(Path::new(&args[1]), Path::new(&args[2]), top)
        }
        Some("bench-check") if args.len() >= 3 => {
            let threshold =
                flag_value(&args, "--threshold").map_or(0.20, |v| v.parse().unwrap_or(0.20));
            let rss_threshold = flag_value(&args, "--rss-threshold").and_then(|v| v.parse().ok());
            bench_check(
                Path::new(&args[1]),
                Path::new(&args[2]),
                threshold,
                rss_threshold,
            )
        }
        Some("metrics") if args.len() >= 2 => {
            let prefix = flag_value(&args, "--prefix").unwrap_or("").to_string();
            let files: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            // --prefix takes a value; drop it from the positional list.
            let files: Vec<&String> = files.into_iter().filter(|f| **f != prefix).collect();
            match files.as_slice() {
                [one] => metrics_summary(Path::new(one), &prefix),
                [a, b] => metrics_diff(Path::new(a), Path::new(b), &prefix),
                _ => {
                    eprintln!("metrics: expected one or two dump files");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!(
                "usage:\n  arena-analyze summarize <results-dir>\n  \
                 arena-analyze diff <dir-a> <dir-b> [--top N]\n  \
                 arena-analyze bench-check <old.json> <new.json> [--threshold FRAC] [--rss-threshold FRAC]\n  \
                 arena-analyze metrics <dump.txt> [<other.txt>] [--prefix P]"
            );
            ExitCode::from(2)
        }
    }
}

/// The value following `name` in the argument list, if present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Loads every `timeline_*.summary.json` under `dir`, sorted by file
/// name for deterministic output.
fn load_summaries(dir: &Path) -> Result<Vec<TimelineSummary>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("timeline_") && n.ends_with(".summary.json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "no timeline_*.summary.json files in {} (run `repro timeline` first)",
            dir.display()
        ));
    }
    let mut out = Vec::new();
    for p in paths {
        let body = std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let s: TimelineSummary =
            serde_json::from_str(&body).map_err(|e| format!("parse {}: {e}", p.display()))?;
        out.push(s);
    }
    Ok(out)
}

fn summarize(dir: &Path) -> ExitCode {
    match load_summaries(dir) {
        Ok(summaries) => {
            println!("{}", timeline_summary_table(&summaries).render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("summarize: {e}");
            ExitCode::from(2)
        }
    }
}

fn diff(dir_a: &Path, dir_b: &Path, top: usize) -> ExitCode {
    let (a, b) = match (load_summaries(dir_a), load_summaries(dir_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("diff: {e}");
            return ExitCode::from(2);
        }
    };
    let by_policy = |v: Vec<TimelineSummary>| -> BTreeMap<String, TimelineSummary> {
        v.into_iter().map(|s| (s.policy.clone(), s)).collect()
    };
    let (a, b) = (by_policy(a), by_policy(b));

    let mut t = Table::new(
        &format!("Timeline diff: {} -> {}", dir_a.display(), dir_b.display()),
        &[
            "policy",
            "avg JCT a",
            "avg JCT b",
            "dJCT s",
            "util a",
            "util b",
            "d prod GPU-s",
        ],
    );
    for (policy, sa) in &a {
        let Some(sb) = b.get(policy) else {
            eprintln!("diff: policy {policy} missing from {}", dir_b.display());
            continue;
        };
        t.row(vec![
            policy.clone(),
            format!("{:.0}", sa.avg_jct_s),
            format!("{:.0}", sb.avg_jct_s),
            format!("{:+.0}", sb.avg_jct_s - sa.avg_jct_s),
            format!("{:.3}", sa.mean_util_frac),
            format!("{:.3}", sb.mean_util_frac),
            format!("{:+.0}", sb.productive_gpu_s - sa.productive_gpu_s),
        ]);
    }
    println!("{}", t.render());

    for (policy, sa) in &a {
        let Some(sb) = b.get(policy) else { continue };
        let jcts_b: BTreeMap<u64, Option<f64>> = sb.jobs.iter().map(|j| (j.id, j.jct_s)).collect();
        // Jobs whose JCT moved, largest absolute move first.
        let mut moved: Vec<(u64, f64, f64)> = sa
            .jobs
            .iter()
            .filter_map(|j| {
                let ja = j.jct_s?;
                let jb = (*jcts_b.get(&j.id)?)?;
                Some((j.id, ja, jb - ja))
            })
            .filter(|&(_, _, d)| d != 0.0)
            .collect();
        moved.sort_by(|x, y| y.2.abs().partial_cmp(&x.2.abs()).unwrap());
        moved.truncate(top);
        if moved.is_empty() {
            println!("{policy}: no per-job JCT changes\n");
            continue;
        }
        let mut jt = Table::new(
            &format!("{policy}: top JCT moves"),
            &["job", "JCT a (s)", "dJCT (s)"],
        );
        for (id, ja, d) in moved {
            jt.row(vec![id.to_string(), format!("{ja:.0}"), format!("{d:+.0}")]);
        }
        println!("{}", jt.render());
    }
    ExitCode::SUCCESS
}

/// One bench entry pulled out of a `BENCH_sim.json` file.
struct BenchLine {
    iters: u64,
    mean_s: f64,
    peak_rss_bytes: Option<f64>,
}

/// Parses a `BENCH_sim.json` file tolerantly: `git_rev` / `policies`
/// stamps and the `smoke` flag are all optional.
fn load_bench(path: &Path) -> Result<(bool, BTreeMap<String, BenchLine>), String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let v: serde::Value =
        serde_json::from_str(&body).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let smoke = matches!(v.get("smoke"), Some(serde::Value::Bool(true)));
    let benches = v
        .get("benches")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| format!("{}: no `benches` array", path.display()))?;
    let mut out = BTreeMap::new();
    for b in benches {
        let name = match b.get("name") {
            Some(serde::Value::Str(s)) => s.clone(),
            _ => return Err(format!("{}: bench entry without a name", path.display())),
        };
        let num = |field: &str| -> Option<f64> {
            match b.get(field) {
                Some(serde::Value::F64(x)) => Some(*x),
                Some(serde::Value::U64(x)) => Some(*x as f64),
                Some(serde::Value::I64(x)) => Some(*x as f64),
                _ => None,
            }
        };
        let mean_s = num("mean_s").ok_or_else(|| format!("{name}: missing mean_s"))?;
        let iters = num("iters").map_or(1, |x| x as u64);
        let peak_rss_bytes = num("peak_rss_bytes");
        out.insert(
            name,
            BenchLine {
                iters,
                mean_s,
                peak_rss_bytes,
            },
        );
    }
    Ok((smoke, out))
}

/// One parsed exposition dump: declared metric families and every
/// sample series (full name with labels → value).
struct MetricsDump {
    /// family base name → `counter` | `gauge` | `histogram`.
    types: BTreeMap<String, String>,
    /// series (with labels) → value, insertion order preserved by name.
    series: BTreeMap<String, f64>,
}

/// Strict parse of a Prometheus-style exposition as produced by the
/// daemon's `query metrics`. Accepts either the raw text or the whole
/// JSONL response line (the `metrics` string is extracted). Rejects
/// malformed sample lines, samples without a declared family, and
/// dumps with no samples at all — this is CI's well-formedness gate.
fn parse_metrics_dump(path: &Path) -> Result<MetricsDump, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let text = if body.trim_start().starts_with('{') {
        // A captured response line: {"ok":true,...,"metrics":"..."}.
        let v: serde::Value = serde_json::from_str(body.trim())
            .map_err(|e| format!("{}: bad response JSON: {e}", path.display()))?;
        match v.get("metrics") {
            Some(serde::Value::Str(s)) => s.clone(),
            _ => {
                return Err(format!(
                    "{}: response has no `metrics` string",
                    path.display()
                ))
            }
        }
    } else {
        body
    };
    let mut types = BTreeMap::new();
    let mut series = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("{}:{}: {msg}", path.display(), lineno + 1);
        if let Some(rest) = line.strip_prefix('#') {
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name = words
                        .next()
                        .ok_or_else(|| at("# TYPE without a family name".to_string()))?;
                    let kind = words
                        .next()
                        .ok_or_else(|| at(format!("# TYPE {name} without a kind")))?;
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(at(format!("unknown family kind `{kind}`")));
                    }
                    if let Some(prev) = types.insert(name.to_string(), kind.to_string()) {
                        if prev != kind {
                            return Err(at(format!("family {name} re-typed {prev} -> {kind}")));
                        }
                    }
                }
                _ => {} // tolerate HELP and other comments
            }
            continue;
        }
        // Sample: `name value` or `name{labels} value`. Labels may
        // contain spaces only inside quotes — our emitter never does —
        // so the last whitespace split is the value.
        let Some(split) = line.rfind(|c: char| c.is_whitespace()) else {
            return Err(at(format!("sample line without a value: `{line}`")));
        };
        let (name, value) = (line[..split].trim(), line[split..].trim());
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| at(format!("unparseable sample value `{v}`")))?,
        };
        let base = name.split('{').next().unwrap_or(name);
        let family_known = types.contains_key(base)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                base.strip_suffix(suffix)
                    .is_some_and(|f| types.get(f).map(String::as_str) == Some("histogram"))
            });
        if !family_known {
            return Err(at(format!("sample `{name}` has no declared family")));
        }
        series.insert(name.to_string(), value);
    }
    if series.is_empty() {
        return Err(format!("{}: no samples in dump", path.display()));
    }
    Ok(MetricsDump { types, series })
}

/// Whether a series is a histogram bucket sample (elided from tables —
/// `_sum`/`_count` carry the summary).
fn is_bucket(name: &str) -> bool {
    name.split('{').next().unwrap_or(name).ends_with("_bucket")
}

fn metrics_summary(path: &Path, prefix: &str) -> ExitCode {
    let dump = match parse_metrics_dump(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("metrics: {e}");
            return ExitCode::from(2);
        }
    };
    let kind_of = |name: &str| -> String {
        let base = name.split('{').next().unwrap_or(name);
        if let Some(k) = dump.types.get(base) {
            return k.clone();
        }
        "histogram".to_string()
    };
    let mut t = Table::new(
        &format!(
            "Metrics: {} ({} families)",
            path.display(),
            dump.types.len()
        ),
        &["series", "kind", "value"],
    );
    let mut shown = 0;
    for (name, value) in &dump.series {
        if !name.starts_with(prefix) || is_bucket(name) {
            continue;
        }
        shown += 1;
        t.row(vec![name.clone(), kind_of(name), format!("{value}")]);
    }
    println!("{}", t.render());
    if shown == 0 {
        eprintln!("metrics: no series match prefix `{prefix}`");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn metrics_diff(path_a: &Path, path_b: &Path, prefix: &str) -> ExitCode {
    let (a, b) = match (parse_metrics_dump(path_a), parse_metrics_dump(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("metrics: {e}");
            return ExitCode::from(2);
        }
    };
    let mut t = Table::new(
        &format!("Metrics diff: {} -> {}", path_a.display(), path_b.display()),
        &["series", "a", "b", "delta"],
    );
    let names: std::collections::BTreeSet<&String> =
        a.series.keys().chain(b.series.keys()).collect();
    for name in names {
        if !name.starts_with(prefix) || is_bucket(name) {
            continue;
        }
        match (a.series.get(name), b.series.get(name)) {
            (Some(&va), Some(&vb)) => {
                if va != vb {
                    t.row(vec![
                        name.clone(),
                        format!("{va}"),
                        format!("{vb}"),
                        format!("{:+}", vb - va),
                    ]);
                }
            }
            (Some(&va), None) => {
                t.row(vec![
                    name.clone(),
                    format!("{va}"),
                    "-".into(),
                    "GONE".into(),
                ]);
            }
            (None, Some(&vb)) => {
                t.row(vec![
                    name.clone(),
                    "-".into(),
                    format!("{vb}"),
                    "NEW".into(),
                ]);
            }
            (None, None) => unreachable!(),
        }
    }
    println!("{}", t.render());
    ExitCode::SUCCESS
}

fn bench_check(old: &Path, new: &Path, threshold: f64, rss_threshold: Option<f64>) -> ExitCode {
    let ((old_smoke, old_b), (new_smoke, new_b)) = match (load_bench(old), load_bench(new)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-check: {e}");
            return ExitCode::from(2);
        }
    };
    if old_smoke || new_smoke {
        eprintln!(
            "bench-check: comparing smoke-mode timings (single iteration); \
             expect noise"
        );
    }
    let mut t = Table::new(
        &format!(
            "bench-check: {} -> {} (threshold +{:.0}%)",
            old.display(),
            new.display(),
            threshold * 100.0
        ),
        &["bench", "old mean s", "new mean s", "ratio", "verdict"],
    );
    let mut failures = 0;
    for (name, o) in &old_b {
        let Some(n) = new_b.get(name) else {
            t.row(vec![
                name.clone(),
                format!("{:.6}", o.mean_s),
                "-".into(),
                "-".into(),
                "MISSING".into(),
            ]);
            failures += 1;
            continue;
        };
        let ratio = if o.mean_s > 0.0 {
            n.mean_s / o.mean_s
        } else {
            f64::INFINITY
        };
        let regressed = ratio > 1.0 + threshold;
        if regressed {
            failures += 1;
        }
        // The RSS gate only engages when asked for and when both sides
        // recorded a watermark — absent entries are not a regression.
        let rss_regressed = match (rss_threshold, o.peak_rss_bytes, n.peak_rss_bytes) {
            (Some(frac), Some(old_rss), Some(new_rss)) if old_rss > 0.0 => {
                new_rss > old_rss * (1.0 + frac)
            }
            _ => false,
        };
        if rss_regressed {
            failures += 1;
        }
        t.row(vec![
            format!("{name} ({}x/{}x)", o.iters, n.iters),
            format!("{:.6}", o.mean_s),
            format!("{:.6}", n.mean_s),
            format!("{ratio:.3}"),
            match (regressed, rss_regressed) {
                (true, _) => "REGRESSED".to_string(),
                (false, true) => format!(
                    "RSS-REGRESSED ({:.0} -> {:.0} MiB)",
                    o.peak_rss_bytes.unwrap_or(0.0) / (1024.0 * 1024.0),
                    n.peak_rss_bytes.unwrap_or(0.0) / (1024.0 * 1024.0)
                ),
                (false, false) => "ok".to_string(),
            },
        ]);
    }
    println!("{}", t.render());
    if failures > 0 {
        eprintln!("bench-check: {failures} bench(es) regressed past the threshold");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
