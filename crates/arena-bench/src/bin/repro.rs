//! `repro` — regenerates every table and figure of the paper, and hosts
//! the resident scheduling daemon.
//!
//! ```text
//! repro [--quick] <experiment>...
//! repro all            # everything at full scale
//! repro --quick all    # everything at reduced scale (CI-sized)
//! repro fig14 fig12    # a subset
//!
//! repro serve --stdin                    # daemon over stdin/stdout
//! repro serve --addr 127.0.0.1:7700      # daemon over TCP
//! ```
//!
//! Each experiment prints its table(s) to stdout and writes the raw data
//! as JSON under `results/`. `repro serve` speaks the newline-delimited
//! JSON protocol documented in `arena_server::protocol`; see `--help`
//! via `repro serve --stdin` + `{"cmd":"query","what":"status"}` for a
//! smoke test, or `examples/server_session.rs` for a full session.

use std::time::Instant;

use arena::experiments::summary_table;
use arena::experiments::{
    ablations, clustersim, faults, generality, microbench, motivation, observability, tables,
};
use arena::server::{serve_lines, spawn_listener, Server, ServerConfig};
use arena::sim::SimConfig;
use arena_bench::{slug, write_json, write_text};

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig3",
    "fig4",
    "fig12",
    "fig13",
    "budget",
    "fig14",
    "fidelity",
    "fig15",
    "fig16",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "ablate_noise",
    "ablate_mechanisms",
    "ablate_checkpoint",
    "ablate_zero",
    "ablate_faults",
    "solver",
    "trace",
    "timeline",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve(&args[1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(ToString::to_string).collect();
    }
    for name in &wanted {
        let t0 = Instant::now();
        run(name, quick);
        eprintln!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}

/// `repro serve`: runs the resident daemon until a `shutdown` command
/// arrives (or stdin reaches EOF in `--stdin` mode), then prints a
/// one-line summary to stderr.
///
/// Flags: `--stdin` | `--addr H:P` (default `127.0.0.1:7700`),
/// `--policy NAME` (default `arena`), `--cluster table1|testbed|tiny`,
/// `--shards N`, `--workers N`, `--seed N`, `--horizon-s F`,
/// `--event-log P`, `--decision-log P`, `--resume P`,
/// `--flight-log P` (auto-dump the telemetry flight recorder on faults
/// and shutdown), `--flight-cap N` (recorder capacity, default 256).
fn serve(args: &[String]) {
    let mut stdin_mode = false;
    let mut addr = "127.0.0.1:7700".to_string();
    let mut cfg_policy = "arena".to_string();
    let mut cluster_name = "testbed".to_string();
    let mut shards: Option<usize> = None;
    let mut workers = 1usize;
    let mut seed = 17u64;
    let mut horizon_s = 2_592_000.0f64; // 30 days
    let mut event_log = None;
    let mut decision_log = None;
    let mut resume = None;
    let mut flight_log = None;
    let mut flight_cap = 256usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {a} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--stdin" => stdin_mode = true,
            "--addr" => addr = val(),
            "--policy" => cfg_policy = val(),
            "--cluster" => cluster_name = val(),
            "--shards" => shards = Some(val().parse().expect("--shards N")),
            "--workers" => workers = val().parse().expect("--workers N"),
            "--seed" => seed = val().parse().expect("--seed N"),
            "--horizon-s" => horizon_s = val().parse().expect("--horizon-s F"),
            "--event-log" => event_log = Some(val().into()),
            "--decision-log" => decision_log = Some(val().into()),
            "--resume" => resume = Some(val().into()),
            "--flight-log" => flight_log = Some(val().into()),
            "--flight-cap" => flight_cap = val().parse().expect("--flight-cap N"),
            other => panic!("unknown serve flag '{other}'"),
        }
    }
    let cluster = match cluster_name.as_str() {
        "table1" => arena::cluster::presets::table1_simulated(),
        "testbed" => arena::cluster::presets::physical_testbed(),
        "tiny" => arena::cluster::presets::tiny_a100(2, 4),
        other => panic!("unknown cluster preset '{other}'"),
    };
    let mut cfg = ServerConfig::new(&cfg_policy, cluster, SimConfig::new(horizon_s));
    cfg.shards = shards;
    cfg.worker_threads = workers;
    cfg.seed = seed;
    cfg.event_log = event_log;
    cfg.decision_log = decision_log;
    cfg.resume = resume;
    cfg.flight_log = flight_log;
    cfg.flight_capacity = flight_cap;
    let server = Server::start(cfg).expect("server start");
    let handle = server.handle();
    if stdin_mode {
        let stdin = std::io::stdin();
        serve_lines(&handle, stdin.lock(), std::io::stdout()).expect("serve stdin");
    } else {
        let (local, acceptor) = spawn_listener(&handle, &addr).expect("bind");
        eprintln!("[arena-server listening on {local}]");
        while !handle.is_shutdown() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let _ = acceptor.join();
    }
    let outcome = server.join();
    eprintln!(
        "[arena-server stopped: drained={} finished={} dropped={} decisions={} events={}]",
        outcome.state.drained,
        outcome.state.finished,
        outcome.state.dropped,
        outcome.decisions_jsonl.lines().count(),
        outcome.event_log.len(),
    );
}

#[allow(clippy::too_many_lines)]
fn run(name: &str, quick: bool) {
    match name {
        "table1" => {
            let rows = tables::table1();
            println!("{}", tables::table1_table(&rows).render());
            write_json("table1", &rows).expect("write");
        }
        "table2" => {
            let rows = tables::table2();
            println!("{}", tables::table2_table(&rows).render());
            write_json("table2", &rows).expect("write");
        }
        "fig1" => {
            let schemes = motivation::fig1();
            println!(
                "{}",
                motivation::schemes_table("Fig 1: scheduling cases A/B", &schemes).render()
            );
            write_json("fig1", &schemes).expect("write");
        }
        "fig3" => {
            let schemes = motivation::fig3();
            println!(
                "{}",
                motivation::schemes_table("Fig 3: scheduling opportunities", &schemes).render()
            );
            write_json("fig3", &schemes).expect("write");
        }
        "fig4" => {
            let rows = motivation::fig4();
            println!("{}", motivation::fig4_table(&rows).render());
            write_json("fig4", &rows).expect("write");
        }
        "fig12" => {
            let rows = microbench::fig12();
            println!("{}", microbench::fig12_table(&rows).render());
            write_json("fig12", &rows).expect("write");
        }
        "fig13" => {
            let rows = microbench::fig13();
            println!("{}", microbench::fig13_table(&rows).render());
            write_json("fig13", &rows).expect("write");
        }
        "budget" => {
            let b = microbench::profiling_budget();
            println!("{}", microbench::budget_table(&b).render());
            write_json("budget", &b).expect("write");
        }
        "fig14" => {
            let exp = clustersim::fig14(quick);
            println!("{}", exp.table().render());
            write_json("fig14", &exp).expect("write");
        }
        "fidelity" => {
            let f = clustersim::fidelity();
            println!("{}", clustersim::fidelity_table(&f).render());
            write_json("fidelity", &f).expect("write");
        }
        "fig15" => {
            let rows = clustersim::fig15();
            println!("{}", clustersim::fig15_table(&rows).render());
            write_json("fig15", &rows).expect("write");
        }
        "fig16" => {
            let exp = clustersim::fig16_17(quick);
            println!("{}", exp.table().render());
            println!("{}", clustersim::timeline_table(&exp).render());
            write_json("fig16_17", &exp).expect("write");
        }
        "fig18" => {
            for exp in clustersim::fig18(quick) {
                println!("{}", exp.table().render());
                write_json(
                    &format!(
                        "fig18_{}",
                        if exp.name.contains("Helios") {
                            "helios"
                        } else {
                            "pai"
                        }
                    ),
                    &exp,
                )
                .expect("write");
            }
        }
        "fig19" => {
            let exp = generality::fig19(quick);
            println!("{}", generality::fig19_table(&exp).render());
            println!(
                "{}",
                summary_table("Fig 19 (full metrics)", &exp.summaries).render()
            );
            write_json("fig19", &exp).expect("write");
        }
        "fig20" => {
            let exp = generality::fig20(quick);
            println!("{}", generality::fig20_table(&exp).render());
            println!(
                "{}",
                summary_table("Fig 20 (full metrics)", &exp.summaries).render()
            );
            write_json("fig20", &exp).expect("write");
        }
        "fig21" => {
            let rows = generality::fig21(quick);
            println!("{}", generality::fig21_table(&rows).render());
            write_json("fig21", &rows).expect("write");
        }
        "ablate_noise" => {
            let rows = ablations::noise_sensitivity();
            println!("{}", ablations::noise_table(&rows).render());
            write_json("ablate_noise", &rows).expect("write");
        }
        "ablate_mechanisms" => {
            let rows = ablations::mechanism_ablation();
            println!("{}", ablations::mechanism_table(&rows).render());
            write_json("ablate_mechanisms", &rows).expect("write");
        }
        "ablate_checkpoint" => {
            let rows = ablations::checkpoint_sensitivity();
            println!("{}", ablations::checkpoint_table(&rows).render());
            write_json("ablate_checkpoint", &rows).expect("write");
        }
        "ablate_zero" => {
            let rows = ablations::zero1_ablation();
            println!("{}", ablations::zero1_table(&rows).render());
            write_json("ablate_zero", &rows).expect("write");
        }
        "ablate_faults" => {
            let rows = faults::fault_ablation(quick);
            println!("{}", faults::fault_table(&rows).render());
            write_json("ablate_faults", &rows).expect("write");
        }
        "solver" => {
            let rows = ablations::solver_extension();
            println!("{}", ablations::solver_table(&rows).render());
            write_json("solver", &rows).expect("write");
        }
        "trace" => {
            let runs = observability::conformance_workload(quick);
            println!("{}", observability::trace_table(&runs).render());
            let summaries: Vec<_> = runs.iter().map(|r| r.summary.clone()).collect();
            write_json("trace", &summaries).expect("write");
            for run in &runs {
                println!("{}", observability::reason_table(run).render());
                let file = format!("trace_decisions_{}.jsonl", slug(&run.summary.policy));
                write_text(&file, &run.jsonl).expect("write");
            }
        }
        "timeline" => {
            let runs = observability::timeline_workload(quick);
            let summaries: Vec<_> = runs.iter().map(|r| r.summary.clone()).collect();
            println!(
                "{}",
                observability::timeline_summary_table(&summaries).render()
            );
            for run in &runs {
                let s = slug(&run.summary.policy);
                write_json(&format!("timeline_{s}.summary"), &run.summary).expect("write");
                write_text(&format!("timeline_{s}.trace.json"), &run.perfetto_json).expect("write");
                write_text(&format!("timeline_{s}.util.jsonl"), &run.utilization_jsonl)
                    .expect("write");
            }
        }
        other => eprintln!("unknown experiment '{other}'; known: {ALL:?}"),
    }
}
