//! Pins the tentpole property of the data-oriented estimator: after
//! warmup, the `2^Ns` plan-assembly loop runs entirely out of the
//! thread-local scratch arena, so a full uncached estimate makes only
//! the handful of allocations that build its returned `CellEstimate`.
//!
//! Lives in its own test binary (not the lib's unit tests) because the
//! counting allocator's total is process-wide: here no sibling test can
//! allocate concurrently inside the measurement window. Run with
//! `cargo test -p arena-bench --features alloc-count`.

#![cfg(feature = "alloc-count")]

use arena::prelude::*;
use arena_bench::alloc_count;
use std::hint::black_box;

#[test]
fn steady_state_assembly_loop_is_allocation_free() {
    let cluster = arena::cluster::presets::physical_testbed();
    let hw = arena::perf::HwTarget::new(cluster.spec(GpuTypeId(0)));
    let est = CellEstimator::new(CostParams::default(), 51);
    let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    let cell = Cell::new(&g, 8, 4).expect("feasible cell");
    // Warm the profile/table caches and grow the thread-local scratch
    // arena to its steady-state capacity.
    for _ in 0..3 {
        black_box(est.estimate_bypassing_cache(&g, 256, &cell, &hw));
    }

    let iters = 64_u64;
    let before = alloc_count().expect("alloc-count feature active");
    for _ in 0..iters {
        black_box(est.estimate_bypassing_cache(&g, 256, &cell, &hw));
    }
    let after = alloc_count().expect("alloc-count feature active");
    let per_iter = (after - before) / iters;

    // Only the returned estimate allocates (its pipeline-plan stages and
    // per-stage favors vectors); the assembly loop itself — candidate
    // collection, chain DP, mode reconstruction — must reuse scratch.
    // Before the rewrite this path made hundreds of allocations per call.
    assert!(
        per_iter <= 4,
        "uncached estimate allocates {per_iter}x/iter in steady state; \
         the assembly loop is supposed to run out of the scratch arena"
    );
}
