//! Criterion: cost of the analytical performance model itself — plan
//! evaluation and stage determination (the substrate every experiment
//! leans on).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::parallelism::{determine_stages, PlanSpace};
use arena::perf::{CostParams, HwTarget, PerfModel};
use arena::prelude::{GpuSpec, NodeSpec};

fn bench_evaluate(c: &mut Criterion) {
    let model = PerfModel::new(CostParams::default());
    let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    let mut group = c.benchmark_group("perf_model/evaluate");
    for (name, fam, size, gpus, stages) in [
        ("bert1.3_4g_1s", ModelFamily::Bert, 1.3, 4, 1),
        ("bert2.6_8g_4s", ModelFamily::Bert, 2.6, 8, 4),
        ("moe10_16g_8s", ModelFamily::Moe, 10.0, 16, 8),
    ] {
        let graph = ModelConfig::new(fam, size, 256).build();
        let plan = PlanSpace::new(determine_stages(&graph, gpus, stages).unwrap())
            .iter()
            .next()
            .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.evaluate(&graph, 256, black_box(&plan), &hw)))
        });
    }
    group.finish();
}

fn bench_stage_determination(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_model/determine_stages");
    for (name, fam, size) in [
        ("wres2", ModelFamily::WideResNet, 2.0),
        ("bert6.7", ModelFamily::Bert, 6.7),
        ("moe27", ModelFamily::Moe, 27.0),
    ] {
        let graph = ModelConfig::new(fam, size, 256).build();
        group.bench_function(name, |b| {
            b.iter(|| black_box(determine_stages(black_box(&graph), 16, 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate, bench_stage_determination);
criterion_main!(benches);
