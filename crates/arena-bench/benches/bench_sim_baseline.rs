//! Custom-harness baseline bench: machine-readable timings for the hot
//! paths of the stack — Cell estimation (cold and warm cache), Arena
//! scheduling decisions under load (memoized vs sequential baseline, and
//! a 500-job round at worker-pool sizes 1/4/8), and a full 500-job
//! simulation — written to `BENCH_sim.json` at the workspace root for CI
//! trend tracking via `arena-analyze bench-check`.
//!
//! Run with `cargo bench -p arena-bench --bench bench_sim_baseline`.
//! `BENCH_SMOKE=1` drops every loop to a single iteration (the CI mode:
//! proves the paths run, not how fast).

use std::hint::black_box;
use std::time::Instant;

use arena::prelude::*;
use arena::sched::{JobView, Obs, PlacementView, SchedEvent, SchedView};
use arena::trace::TakeSource;
use arena_bench::{git_rev, time_loop, vm_hwm_bytes, write_bench_report, BenchEntry, BenchReport};

fn make_jobs(n: u64, base_gpus: usize, submit_gap_s: f64, num_pools: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => 1.3,
                ModelFamily::Moe => 1.3,
                ModelFamily::WideResNet => 1.0,
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: submit_gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 400 + 100 * (i % 4),
                requested_gpus: base_gpus,
                requested_pool: i as usize % num_pools,
                deadline_s: None,
            }
        })
        .collect()
}

fn queued_views(specs: &[JobSpec]) -> Vec<JobView> {
    specs
        .iter()
        .map(|s| JobView {
            spec: std::sync::Arc::new(s.clone()),
            remaining_iters: s.iterations as f64,
            placement: None,
        })
        .collect()
}

fn bench_estimate(smoke: bool) -> Vec<BenchEntry> {
    let cluster = arena::cluster::presets::physical_testbed();
    let hw = arena::perf::HwTarget::new(cluster.spec(GpuTypeId(0)));
    let est = CellEstimator::new(CostParams::default(), 51);
    let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    let cell = Cell::new(&g, 8, 4).expect("feasible cell");
    // Warm profile/table caches so the loop measures plan assembly.
    let _ = est.estimate(&g, 256, &cell, &hw);
    let iters = if smoke { 1 } else { 200 };
    vec![
        time_loop("estimator/estimate_uncached", iters, || {
            black_box(est.estimate_bypassing_cache(black_box(&g), 256, black_box(&cell), &hw));
        }),
        // The estimate cache's hit path: a prehashed struct-key lookup.
        time_loop("estimator/estimate_warm", iters, || {
            black_box(est.estimate(black_box(&g), 256, black_box(&cell), &hw));
        }),
    ]
}

/// The loaded-round fixture: 6 running jobs holding most of the testbed,
/// 8 queued.
struct LoadedRound {
    cluster: arena::cluster::Cluster,
    service: PlanService,
    running: Vec<JobView>,
    queued: Vec<JobView>,
}

impl LoadedRound {
    fn new() -> Self {
        let cluster = arena::cluster::presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 51);
        let specs = make_jobs(14, 8, 0.0, 2);
        let running: Vec<JobView> = specs[..6]
            .iter()
            .enumerate()
            .map(|(i, s)| JobView {
                spec: std::sync::Arc::new(s.clone()),
                remaining_iters: 300.0,
                placement: Some(PlacementView {
                    pool: GpuTypeId(i % 2),
                    gpus: 8,
                    throughput_sps: 100.0,
                    opportunistic: false,
                }),
            })
            .collect();
        let queued = queued_views(&specs[6..]);
        LoadedRound {
            cluster,
            service,
            running,
            queued,
        }
    }

    fn pools(&self) -> Vec<arena::cluster::PoolStats> {
        let mut pools = self.cluster.pool_stats();
        pools[0].free_gpus = 8;
        pools[1].free_gpus = 8;
        pools
    }

    fn view<'a>(&'a self, pools: &'a [arena::cluster::PoolStats]) -> SchedView<'a> {
        SchedView {
            now_s: 0.0,
            queued: &self.queued,
            running: &self.running,
            pools,
            service: &self.service,
            obs: Obs::disabled(),
        }
    }
}

/// The memoized decision loop (candidate memo on, the shipping default)
/// against the sequential re-enumeration baseline (`_seq`, memo off) —
/// the pair `bench-check` holds the ≥2× speedup claim against.
fn bench_arena_schedule(smoke: bool) -> Vec<BenchEntry> {
    let fixture = LoadedRound::new();
    let pools = fixture.pools();
    let iters = if smoke { 1 } else { 50 };

    let mut policy = ArenaPolicy::new();
    let _ = policy.schedule(SchedEvent::Round, &fixture.view(&pools)); // warm
    let loaded = time_loop("sched/arena_decision_loaded", iters, || {
        black_box(policy.schedule(SchedEvent::Round, &fixture.view(&pools)));
    });

    let mut seq = ArenaPolicy::new().without_candidate_memo();
    let _ = seq.schedule(SchedEvent::Round, &fixture.view(&pools)); // warm
    let loaded_seq = time_loop("sched/arena_decision_loaded_seq", iters, || {
        black_box(seq.schedule(SchedEvent::Round, &fixture.view(&pools)));
    });
    vec![loaded, loaded_seq]
}

/// One scheduling round over a 500-job queue on the 4-pool simulated
/// cluster, cold (fresh service + policy per iteration) at worker-pool
/// sizes 1/4/8, plus the warm-estimate variant.
fn bench_arena_500(smoke: bool) -> Vec<BenchEntry> {
    let cluster = arena::cluster::presets::table1_simulated();
    let n = if smoke { 40 } else { 500 };
    let queued = queued_views(&make_jobs(n, 8, 0.0, 4));
    let pools = cluster.pool_stats();
    let iters = if smoke { 1 } else { 5 };
    let mut entries = Vec::new();
    for workers in [1_usize, 4, 8] {
        entries.push(time_loop(
            &format!("sched/arena_decision_{n}_cold_w{workers}"),
            iters,
            || {
                let service = PlanService::new(&cluster, CostParams::default(), 51);
                let mut policy = ArenaPolicy::new().with_worker_threads(workers);
                let view = SchedView {
                    now_s: 0.0,
                    queued: &queued,
                    running: &[],
                    pools: &pools,
                    service: &service,
                    obs: Obs::disabled(),
                };
                black_box(policy.schedule(SchedEvent::Round, &view));
            },
        ));
    }
    // Warm: shared pre-warmed service, fresh policy per iteration — the
    // cost of a round when only the candidate memo is cold.
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let _ = ArenaPolicy::new().schedule(SchedEvent::Round, &round_view(&queued, &pools, &service));
    entries.push(time_loop(
        &format!("sched/arena_decision_{n}_warm"),
        iters,
        || {
            let mut policy = ArenaPolicy::new();
            black_box(policy.schedule(SchedEvent::Round, &round_view(&queued, &pools, &service)));
        },
    ));
    entries
}

fn round_view<'a>(
    queued: &'a [JobView],
    pools: &'a [arena::cluster::PoolStats],
    service: &'a PlanService,
) -> SchedView<'a> {
    SchedView {
        now_s: 0.0,
        queued,
        running: &[],
        pools,
        service,
        obs: Obs::disabled(),
    }
}

fn bench_simulate_500(smoke: bool) -> BenchEntry {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let n = if smoke { 60 } else { 500 };
    let jobs = make_jobs(n, 4, 120.0, 2);
    let cfg = SimConfig::new(14.0 * 24.0 * 3600.0);
    // Warm the plan caches once.
    let _ = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &cfg);
    let iters = if smoke { 1 } else { 5 };
    time_loop(&format!("sim/simulate_{n}_jobs_arena"), iters, || {
        let mut p = ArenaPolicy::new();
        black_box(simulate(&cluster, black_box(&jobs), &mut p, &service, &cfg));
    })
}

/// The loaded engine round: a 5000-job trace under a generated
/// node-failure schedule, replayed with FCFS so the event loop — not the
/// policy — dominates. This is the bench the CI speedup gate holds the
/// event-indexed core's ≥3x claim against (`BENCH_sim_pre_event_core.json`
/// records the pre-change engine on the same fixture).
fn bench_simulate_loaded(smoke: bool) -> Vec<BenchEntry> {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let n = if smoke { 200 } else { 5000 };
    let jobs = make_jobs(n, 4, 30.0, 2);
    let fault_span_s = n as f64 * 30.0 * 1.4;
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(60_000.0),
        &[16, 16],
        fault_span_s,
    );
    let cfg = SimConfig::new(30.0 * 24.0 * 3600.0);
    // Warm the plan caches once.
    let _ = simulate_with_faults(
        &cluster,
        &jobs,
        &mut FcfsPolicy::new(),
        &service,
        &cfg,
        &faults,
    );
    let iters = if smoke { 1 } else { 3 };
    let serial = time_loop(
        &format!("sim/simulate_{n}_jobs_faulted_fcfs"),
        iters,
        || {
            let mut p = FcfsPolicy::new();
            black_box(simulate_with_faults(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &cfg,
                &faults,
            ));
        },
    );
    // A one-shard plan must cost the same as the serial engine: the
    // sharded driver routes `shards == 1` straight through the serial
    // path (DESIGN.md §12), so the merge-round machinery can never tax
    // a degenerate plan. This entry pins that routing.
    let shard1 = ShardPlan::per_pool(&cluster).with_shards(1);
    let pinned = time_loop(
        &format!("sim/simulate_{n}_jobs_faulted_fcfs_shard1"),
        iters,
        || {
            let mut p = FcfsPolicy::new();
            black_box(simulate_sharded_with_faults(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &cfg,
                &faults,
                &shard1,
            ));
        },
    );
    if !smoke {
        assert!(
            pinned.mean_s <= serial.mean_s * 1.25,
            "one-shard sharded run must track the serial engine \
             (serial {:.3}s vs shard1 {:.3}s): the shards==1 routing broke",
            serial.mean_s,
            pinned.mean_s
        );
    }
    vec![serial, pinned]
}

/// The loaded engine round through the sharded incremental driver —
/// the decision loop the telemetry plane instruments — once with
/// `Obs::disabled()` and once with the live plane attached
/// (`Obs::metrics_only` + a `MetricsRegistry`): every burst timed,
/// per-shard gauges stored, event counters bumped, estimator ratios
/// refreshed, stage spans recorded into lock-free histograms. The pair
/// is the overhead gate — telemetry-on must stay within 5% of
/// telemetry-off, enforced in CI by `arena-analyze bench-check
/// BENCH_sim_telemetry_off.json <committed BENCH_sim.json> --threshold
/// 0.05` (the `_off` file freezes the off mean under the telemetry
/// entry's name; both entries land in `BENCH_sim.json` too).
fn bench_simulate_loaded_telemetry(smoke: bool) -> (Vec<BenchEntry>, BenchEntry) {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let n = if smoke { 200 } else { 5000 };
    let jobs = make_jobs(n, 4, 30.0, 2);
    let fault_span_s = n as f64 * 30.0 * 1.4;
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(60_000.0),
        &[16, 16],
        fault_span_s,
    );
    let cfg = SimConfig::new(30.0 * 24.0 * 3600.0);
    let plan = ShardPlan::per_pool(&cluster);
    // Warm the plan caches once.
    let _ = simulate_sharded_with_faults(
        &cluster,
        &jobs,
        &mut FcfsPolicy::new(),
        &service,
        &cfg,
        &faults,
        &plan,
    );
    // More iterations than the other loaded benches: the overhead gate
    // compares these two means at a 5% threshold, well inside this
    // host's run-to-run noise at 3 iterations.
    let iters = if smoke { 1 } else { 8 };
    let off = time_loop(
        &format!("sim/simulate_{n}_jobs_faulted_fcfs_sharded"),
        iters,
        || {
            let mut p = FcfsPolicy::new();
            black_box(simulate_sharded_with_faults(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &cfg,
                &faults,
                &plan,
            ));
        },
    );
    let registry = std::sync::Arc::new(MetricsRegistry::new(256));
    let obs = Obs::metrics_only(std::sync::Arc::clone(&registry));
    let name_on = format!("sim/simulate_{n}_jobs_faulted_fcfs_telemetry");
    let on = time_loop(&name_on, iters, || {
        let mut p = FcfsPolicy::new();
        black_box(simulate_sharded_with_faults_traced(
            &cluster,
            black_box(&jobs),
            &mut p,
            &service,
            &cfg,
            &faults,
            &obs,
            &plan,
        ));
    });
    // The run must actually have fed the plane, or the gate is a no-op.
    assert!(
        registry
            .counters_snapshot()
            .get("sim.event.arrival")
            .copied()
            >= Some(n),
        "telemetry bench ran without populating the registry"
    );
    // The off mean under the on entry's name: the frozen left-hand side
    // of the CI overhead gate.
    let mut gate = off.clone();
    gate.name = name_on;
    (vec![off, on], gate)
}

/// A class-diverse burst for the multi-pool sharded bench: families,
/// sizes and GPU requests all vary, so the queue spans many distinct
/// candidate classes, and arrivals compress into a burst so the queue
/// stays deep while the estimator is still cold.
fn multipool_burst(n: u64, num_pools: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            // Decouple the class axes (family, size, batch, GPUs) so the
            // burst spans hundreds of distinct candidate classes rather
            // than a dozen correlated ones.
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => [0.76, 1.3, 2.6][((i / 3) % 3) as usize],
                ModelFamily::Moe => [0.69, 1.3, 2.4][((i / 3) % 3) as usize],
                ModelFamily::WideResNet => [0.5, 1.0, 2.0][((i / 3) % 3) as usize],
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: 0.1 * i as f64,
                model: ModelConfig::new(fam, size, 128 << ((i / 9) % 3)),
                iterations: 20_000 + 500 * (i % 4),
                requested_gpus: [2, 4, 8][((i / 27) % 3) as usize],
                requested_pool: i as usize % num_pools,
                deadline_s: None,
            }
        })
        .collect()
}

/// The loaded multi-pool pair: a deep, class-diverse Arena-scheduled
/// burst over the 4-pool simulated cluster, cold (fresh `PlanService`
/// per iteration, like the cold decision-round benches), run through the
/// serial engine and through the sharded decision loop (one shard per
/// pool, workers sized to the machine). The sharded loop's
/// `prepare_shards` pre-pass batches each flush round's cold candidate
/// estimation into one fan-out instead of the serial loop's job-by-job
/// fills; with more than one hardware thread that fan-out is a real
/// wall-clock win, and on a single-core host the pool sizes itself to
/// one worker and the sharded loop must track the serial engine to
/// within its bookkeeping overhead. Output is byte-identical either
/// way. `BENCH_sim_unsharded.json` freezes the serial mean under the
/// sharded entry's name so CI can gate the committed ratio with
/// `bench-check`.
fn bench_simulate_multipool(smoke: bool) -> Vec<BenchEntry> {
    let cluster = arena::cluster::presets::table1_simulated();
    let n = if smoke { 60 } else { 600 };
    let jobs = multipool_burst(n, 4);
    // A few loaded rounds: the burst keeps the queue deep for the whole
    // horizon, so cold candidate estimation and per-round decision cost
    // dominate the run.
    let cfg = SimConfig::new(2.0 * 3600.0);
    let workers = WorkerPool::from_env_or(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4),
    );
    let threads = workers.threads();
    let plan = ShardPlan::per_pool(&cluster).with_workers(workers);
    // Pin byte-identity on this fixture before timing anything, at a
    // fixed worker count so the check exercises the concurrent path
    // even on single-core hosts.
    {
        let service = PlanService::new(&cluster, CostParams::default(), 51);
        let serial = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &cfg);
        let service = PlanService::new(&cluster, CostParams::default(), 51);
        let check = ShardPlan::per_pool(&cluster).with_workers(WorkerPool::new(4));
        let sharded = simulate_sharded(
            &cluster,
            &jobs,
            &mut ArenaPolicy::new().with_worker_threads(4),
            &service,
            &cfg,
            &check,
        );
        assert_eq!(
            serial.timeline, sharded.timeline,
            "sharded bench fixture diverged from the serial engine"
        );
    }
    let iters = if smoke { 1 } else { 5 };
    vec![
        time_loop("sim/simulate_multipool_arena_serial", iters, || {
            let service = PlanService::new(&cluster, CostParams::default(), 51);
            let mut p = ArenaPolicy::new();
            black_box(simulate(&cluster, black_box(&jobs), &mut p, &service, &cfg));
        }),
        time_loop("sim/simulate_multipool_arena_sharded", iters, || {
            let service = PlanService::new(&cluster, CostParams::default(), 51);
            let mut p = ArenaPolicy::new().with_worker_threads(threads);
            black_box(simulate_sharded(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &cfg,
                &plan,
            ));
        }),
    ]
}

/// The fleet-scale streaming pair: an open-ended synthetic PAI-load
/// trace on a 2,048-GPU cluster pumped straight from the generator into
/// the record-folding engine — no materialised trace, no per-job record
/// vector, terminal jobs reclaimed as they drain. Two consecutive runs
/// in this process, 100k jobs then 1M (50k/100k in smoke mode), each
/// entry stamped with the process peak RSS (`VmHWM`). The watermark is
/// monotone over the process lifetime, so the big run's peak staying
/// within 1.2x the small run's pins the memory model: resident state
/// follows the *live* job count, not the trace length. Must run before
/// every other bench so the watermark reflects the streaming runs and
/// not an earlier fixture's transient. `ARENA_MEM_BUDGET_BYTES`, when
/// set, additionally caps the plan/estimator caches (the CI fleet-scale
/// job runs this bench under a budget).
fn bench_stream_fleet(smoke: bool) -> Vec<BenchEntry> {
    let cluster = arena::cluster::presets::tiny_a100(256, 8);
    // Open-ended trace: the duration never binds; TakeSource cuts the
    // arrival stream at an exact job count instead.
    let trace_cfg = TraceConfig::new(TraceKind::PaiLow, 4.0e9, cluster.total_gpus(), vec![40.0]);
    // The smoke sizes both sit past the allocator's warmup plateau
    // (~50k jobs on this fixture) so the flatness gate measures the
    // steady state, not malloc arena growth.
    let (small, big) = if smoke {
        (50_000_u64, 100_000_u64)
    } else {
        (100_000, 1_000_000)
    };
    let mut entries = Vec::new();
    let mut peaks = Vec::new();
    for n in [small, big] {
        let service = PlanService::new(&cluster, CostParams::default(), 51);
        if let Some(budget) = service.apply_env_budget() {
            println!("stream_fleet: cache budget {budget} bytes (ARENA_MEM_BUDGET_BYTES)");
        }
        let plan = ShardPlan::per_pool(&cluster);
        let cfg = SimConfig::new(4.1e9);
        let mut policy = FcfsPolicy::new();
        let mut source = TakeSource::new(GenSource::new(&trace_cfg), n);
        let t0 = Instant::now();
        let summary = simulate_stream(&cluster, &mut policy, &service, &mut source, &cfg, &plan)
            .expect("generator-backed source cannot fail");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(summary.jobs.jobs, n, "generator ran dry before the cap");
        let peak = vm_hwm_bytes();
        println!(
            "sim/stream_fleet_{n}: {n} jobs in {wall:.2}s ({:.0} jobs/s), \
             peak RSS {} MiB, peak live jobs {}, fingerprint {:016x}",
            n as f64 / wall,
            peak.unwrap_or(0) >> 20,
            summary.peak_live_jobs,
            summary.fingerprint,
        );
        entries.push(BenchEntry {
            name: format!("sim/stream_fleet_{n}_fcfs"),
            iters: 1,
            mean_s: wall,
            min_s: wall,
            max_s: wall,
            peak_rss_bytes: peak,
            allocs_per_iter: None,
        });
        peaks.push(peak);
        black_box(summary);
    }
    // The flatness gate itself: the larger trace may not move the
    // high-water mark by more than 20%.
    if let [Some(first), Some(second)] = peaks[..] {
        assert!(
            second as f64 <= 1.2 * first as f64,
            "streaming peak RSS grew with trace length: {small} jobs -> {first} B, \
             {big} jobs -> {second} B"
        );
    }
    entries
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let mut benches = Vec::new();
    // First, before any other fixture touches the high-water mark.
    benches.extend(bench_stream_fleet(smoke));
    benches.extend(bench_estimate(smoke));
    benches.extend(bench_arena_schedule(smoke));
    benches.extend(bench_arena_500(smoke));
    benches.push(bench_simulate_500(smoke));
    benches.extend(bench_simulate_loaded(smoke));
    let (telemetry, telemetry_gate) = bench_simulate_loaded_telemetry(smoke);
    benches.extend(telemetry);
    benches.extend(bench_simulate_multipool(smoke));

    if !smoke {
        let mean = |name: &str| {
            benches
                .iter()
                .find(|b| b.name == name)
                .map(|b| b.mean_s)
                .unwrap_or(f64::NAN)
        };
        let fast = mean("sched/arena_decision_loaded");
        let seq = mean("sched/arena_decision_loaded_seq");
        assert!(
            fast * 2.0 <= seq,
            "memoized decision loop must be ≥2× the sequential baseline \
             (got {fast:.6}s vs {seq:.6}s)"
        );
    }

    let report = BenchReport {
        smoke,
        git_rev: git_rev(),
        policies: vec!["Arena".to_string()],
        benches,
    };
    write_bench_report("BENCH_sim.json", &report).expect("write BENCH_sim.json");
    // The telemetry-off reference for the CI overhead gate. Smoke runs
    // must not clobber the committed full-scale numbers.
    if !smoke {
        let gate = BenchReport {
            smoke,
            git_rev: git_rev(),
            policies: vec!["Arena".to_string()],
            benches: vec![telemetry_gate],
        };
        write_bench_report("BENCH_sim_telemetry_off.json", &gate)
            .expect("write BENCH_sim_telemetry_off.json");
        // The serial-engine reference for the sharded decision-loop
        // gate, refreshed from this same run so both sides of the
        // comparison come off the same machine under the same load —
        // a stale frozen number drifts with host speed and fails the
        // gate spuriously. The serial entry is renamed to the sharded
        // entry's name, which is how bench-check pairs them.
        let serial = report
            .benches
            .iter()
            .find(|b| b.name == "sim/simulate_multipool_arena_serial")
            .expect("serial multipool entry present in full runs");
        let unsharded = BenchReport {
            smoke,
            git_rev: git_rev(),
            policies: vec!["Arena".to_string()],
            benches: vec![BenchEntry {
                name: "sim/simulate_multipool_arena_sharded".to_string(),
                ..serial.clone()
            }],
        };
        write_bench_report("BENCH_sim_unsharded.json", &unsharded)
            .expect("write BENCH_sim_unsharded.json");
        // The one-worker reference for the fan-out-granularity gate:
        // the cold 500-job decision round at w4/w8 must not be slower
        // than at w1 (chunked fan-out makes extra workers at worst
        // free). Same same-machine refresh pattern as the unsharded
        // gate; bench-check pairs entries by name, so the w1 entry is
        // renamed to the w4 and w8 entry names.
        let w1 = report
            .benches
            .iter()
            .find(|b| b.name == "sched/arena_decision_500_cold_w1")
            .expect("w1 cold decision entry present in full runs");
        let w1_gate = BenchReport {
            smoke,
            git_rev: git_rev(),
            policies: vec!["Arena".to_string()],
            benches: vec![
                BenchEntry {
                    name: "sched/arena_decision_500_cold_w4".to_string(),
                    ..w1.clone()
                },
                BenchEntry {
                    name: "sched/arena_decision_500_cold_w8".to_string(),
                    ..w1.clone()
                },
            ],
        };
        write_bench_report("BENCH_sim_w1.json", &w1_gate).expect("write BENCH_sim_w1.json");
    }
}
