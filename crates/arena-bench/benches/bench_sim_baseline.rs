//! Custom-harness baseline bench: machine-readable timings for the three
//! hot paths of the stack — one Cell estimate, one Arena scheduling
//! decision under load, and a full 500-job simulation — written to
//! `BENCH_sim.json` at the workspace root for CI trend tracking.
//!
//! Run with `cargo bench -p arena-bench --bench bench_sim_baseline`.
//! `BENCH_SMOKE=1` drops every loop to a single iteration (the CI mode:
//! proves the paths run, not how fast).

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use arena::prelude::*;
use arena::sched::{JobView, Obs, PlacementView, SchedEvent, SchedView};
use serde::Serialize;

#[derive(Serialize)]
struct BenchEntry {
    name: String,
    iters: usize,
    mean_s: f64,
    min_s: f64,
    max_s: f64,
}

#[derive(Serialize)]
struct BenchReport {
    smoke: bool,
    /// `git rev-parse --short HEAD` at bench time ("unknown" outside a
    /// checkout).
    git_rev: String,
    /// Policies the bench suite exercises.
    policies: Vec<String>,
    benches: Vec<BenchEntry>,
}

/// The current git revision, if the bench runs inside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn time_loop<F: FnMut()>(name: &str, iters: usize, mut f: F) -> BenchEntry {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let sum: f64 = samples.iter().sum();
    let entry = BenchEntry {
        name: name.to_string(),
        iters,
        mean_s: sum / iters as f64,
        min_s: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max_s: samples.iter().copied().fold(0.0, f64::max),
    };
    println!(
        "{name}: {iters} iters, mean {:.6}s, min {:.6}s",
        entry.mean_s, entry.min_s
    );
    entry
}

fn make_jobs(n: u64, base_gpus: usize, submit_gap_s: f64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => 1.3,
                ModelFamily::Moe => 1.3,
                ModelFamily::WideResNet => 1.0,
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: submit_gap_s * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 400 + 100 * (i % 4),
                requested_gpus: base_gpus,
                requested_pool: (i % 2) as usize,
                deadline_s: None,
            }
        })
        .collect()
}

fn bench_estimate(smoke: bool) -> BenchEntry {
    let cluster = arena::cluster::presets::physical_testbed();
    let hw = arena::perf::HwTarget::new(cluster.spec(GpuTypeId(0)));
    let est = CellEstimator::new(CostParams::default(), 51);
    let g = ModelConfig::new(ModelFamily::Bert, 1.3, 256).build();
    let cell = Cell::new(&g, 8, 4).expect("feasible cell");
    // Warm profile/table caches so the loop measures plan assembly.
    let _ = est.estimate(&g, 256, &cell, &hw);
    let iters = if smoke { 1 } else { 200 };
    time_loop("estimator/estimate_uncached", iters, || {
        black_box(est.estimate_bypassing_cache(black_box(&g), 256, black_box(&cell), &hw));
    })
}

fn bench_arena_schedule(smoke: bool) -> BenchEntry {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let specs = make_jobs(14, 8, 0.0);
    let mut running: Vec<JobView> = specs[..6]
        .iter()
        .map(|s| JobView {
            spec: s.clone(),
            remaining_iters: 300.0,
            placement: Some(PlacementView {
                pool: GpuTypeId(s.id as usize % 2),
                gpus: 8,
                throughput_sps: 100.0,
                opportunistic: false,
            }),
        })
        .collect();
    for (i, j) in running.iter_mut().enumerate() {
        j.placement.as_mut().expect("placed").pool = GpuTypeId(i % 2);
    }
    let queued: Vec<JobView> = specs[6..]
        .iter()
        .map(|s| JobView {
            spec: s.clone(),
            remaining_iters: s.iterations as f64,
            placement: None,
        })
        .collect();
    let mut pools = cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 8;
    let mut policy = ArenaPolicy::new();
    let view = SchedView {
        now_s: 0.0,
        queued: &queued,
        running: &running,
        pools: &pools,
        service: &service,
        obs: Obs::disabled(),
    };
    // Warm the plan caches once.
    let _ = policy.schedule(SchedEvent::Round, &view);
    let iters = if smoke { 1 } else { 50 };
    time_loop("sched/arena_decision_loaded", iters, || {
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &running,
            pools: &pools,
            service: &service,
            obs: Obs::disabled(),
        };
        black_box(policy.schedule(SchedEvent::Round, &view));
    })
}

fn bench_simulate_500(smoke: bool) -> BenchEntry {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let n = if smoke { 60 } else { 500 };
    let jobs = make_jobs(n, 4, 120.0);
    let cfg = SimConfig::new(14.0 * 24.0 * 3600.0);
    // Warm the plan caches once.
    let _ = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &cfg);
    let iters = if smoke { 1 } else { 5 };
    time_loop(&format!("sim/simulate_{n}_jobs_arena"), iters, || {
        let mut p = ArenaPolicy::new();
        black_box(simulate(&cluster, black_box(&jobs), &mut p, &service, &cfg));
    })
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let report = BenchReport {
        smoke,
        git_rev: git_rev(),
        policies: vec!["Arena".to_string()],
        benches: vec![
            bench_estimate(smoke),
            bench_arena_schedule(smoke),
            bench_simulate_500(smoke),
        ],
    };
    let root: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let path = root.join("BENCH_sim.json");
    let body = serde_json::to_string_pretty(&report).expect("serialise");
    std::fs::write(&path, body).expect("write BENCH_sim.json");
    println!("wrote {}", path.display());
}
