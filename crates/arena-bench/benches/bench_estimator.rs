//! Criterion: the agile Cell estimator (Fig. 12's machinery) — cold
//! estimation (profiles + tables + assembly) versus warm (cached)
//! estimation, and offline table construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arena::estimator::{Cell, CellEstimator, CommTables};
use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::perf::noise::NoiseModel;
use arena::perf::{CostParams, HwTarget};
use arena::prelude::{GpuSpec, NodeSpec};

fn bench_estimate_cold(c: &mut Criterion) {
    let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    let mut group = c.benchmark_group("estimator/estimate_cold");
    group.sample_size(30);
    for (name, fam, size, gpus, stages) in [
        ("bert1.3_8g_4s", ModelFamily::Bert, 1.3, 8, 4),
        ("moe2.4_16g_8s", ModelFamily::Moe, 2.4, 16, 8),
        ("wres2_8g_2s", ModelFamily::WideResNet, 2.0, 8, 2),
    ] {
        let model = ModelConfig::new(fam, size, 256);
        let graph = model.build();
        let cell = Cell::new(&graph, gpus, stages).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                // Fresh estimator: pays profiling, table build and assembly.
                let est = CellEstimator::new(CostParams::default(), 3);
                black_box(est.estimate(&graph, 256, black_box(&cell), &hw))
            })
        });
    }
    group.finish();
}

fn bench_estimate_warm(c: &mut Criterion) {
    let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    let model = ModelConfig::new(ModelFamily::Bert, 2.6, 256);
    let graph = model.build();
    let cell = Cell::new(&graph, 8, 4).unwrap();
    let est = CellEstimator::new(CostParams::default(), 3);
    let _ = est.estimate(&graph, 256, &cell, &hw);
    c.bench_function("estimator/estimate_warm_cached", |b| {
        b.iter(|| black_box(est.estimate(&graph, 256, black_box(&cell), &hw)))
    });
}

fn bench_table_build(c: &mut Criterion) {
    let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    let noise = NoiseModel::new(0.02, 1);
    c.bench_function("estimator/comm_tables_build_64", |b| {
        b.iter(|| black_box(CommTables::build(&hw, 64, &noise)))
    });
}

criterion_group!(
    benches,
    bench_estimate_cold,
    bench_estimate_warm,
    bench_table_build
);
criterion_main!(benches);
