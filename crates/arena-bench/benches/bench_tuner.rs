//! Criterion: Cell-guided pruned tuning versus unpruned full search
//! (Fig. 13's machinery) — the computational cost of the searches
//! themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arena::estimator::{Cell, CellEstimator};
use arena::model::zoo::{ModelConfig, ModelFamily};
use arena::perf::{CostParams, GroundTruth, HwTarget};
use arena::prelude::{GpuSpec, NodeSpec};
use arena::tuner::{tune_full, tune_pruned};

fn bench_tuning(c: &mut Criterion) {
    let hw = HwTarget::new(NodeSpec::with_default_links(GpuSpec::A100, 4));
    let model = ModelConfig::new(ModelFamily::Bert, 2.6, 512);
    let graph = model.build();
    let cell = Cell::new(&graph, 16, 4).unwrap();
    let est = CellEstimator::new(CostParams::default(), 9);
    let estimate = est
        .estimate(&graph, 512, &cell, &hw)
        .expect("cell estimates");

    let mut group = c.benchmark_group("tuner");
    group.sample_size(20);
    group.bench_function("full_16g_4s", |b| {
        b.iter(|| {
            let gt = GroundTruth::new(CostParams::default(), 9);
            black_box(tune_full(&gt, &graph, 512, black_box(&cell), &hw))
        })
    });
    group.bench_function("pruned_16g_4s", |b| {
        b.iter(|| {
            let gt = GroundTruth::new(CostParams::default(), 9);
            black_box(tune_pruned(
                &gt,
                &graph,
                512,
                black_box(&cell),
                &estimate,
                &hw,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tuning);
criterion_main!(benches);
