//! Criterion: end-to-end simulator throughput — one full testbed trace
//! replay per iteration, per policy (the engine behind Figs. 14–21).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arena::prelude::*;

fn bench_replay(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let cfg = TraceConfig::new(TraceKind::PhillyHeavy, 2.0 * 3600.0, 64, vec![48.0, 24.0]);
    let jobs = generate(&cfg);
    let service = PlanService::new(&cluster, CostParams::default(), 77);
    let sim_cfg = SimConfig::new(24.0 * 3600.0);

    // Warm the plan caches once; the bench then measures the event loop
    // and policy logic, as in a long-running scheduler process.
    let _ = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &sim_cfg);

    let mut group = c.benchmark_group("simulator/replay_2h_trace");
    group.sample_size(10);
    group.bench_function("fcfs", |b| {
        b.iter(|| {
            let mut p = FcfsPolicy::new();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.bench_function("elasticflow_ls", |b| {
        b.iter(|| {
            let mut p = ElasticFlowPolicy::loosened();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.bench_function("arena", |b| {
        b.iter(|| {
            let mut p = ArenaPolicy::new();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.bench_function("arena_solver", |b| {
        b.iter(|| {
            let mut p = ArenaSolverPolicy::new();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
