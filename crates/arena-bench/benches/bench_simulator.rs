//! Criterion: end-to-end simulator throughput — one full testbed trace
//! replay per iteration, per policy (the engine behind Figs. 14–21).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arena::prelude::*;

fn bench_replay(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let cfg = TraceConfig::new(TraceKind::PhillyHeavy, 2.0 * 3600.0, 64, vec![48.0, 24.0]);
    let jobs = generate(&cfg);
    let service = PlanService::new(&cluster, CostParams::default(), 77);
    let sim_cfg = SimConfig::new(24.0 * 3600.0);

    // Warm the plan caches once; the bench then measures the event loop
    // and policy logic, as in a long-running scheduler process.
    let _ = simulate(&cluster, &jobs, &mut ArenaPolicy::new(), &service, &sim_cfg);

    let mut group = c.benchmark_group("simulator/replay_2h_trace");
    group.sample_size(10);
    group.bench_function("fcfs", |b| {
        b.iter(|| {
            let mut p = FcfsPolicy::new();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.bench_function("elasticflow_ls", |b| {
        b.iter(|| {
            let mut p = ElasticFlowPolicy::loosened();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.bench_function("arena", |b| {
        b.iter(|| {
            let mut p = ArenaPolicy::new();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.bench_function("arena_solver", |b| {
        b.iter(|| {
            let mut p = ArenaSolverPolicy::new();
            black_box(simulate(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
            ))
        })
    });
    group.finish();
}

/// The loaded engine round: 5000 jobs arriving every 30 s under a
/// generated node-failure schedule, replayed with FCFS so the event
/// loop — not the policy — dominates the measurement. Mirrors the
/// `sim/simulate_5000_jobs_faulted_fcfs` entry of `bench_sim_baseline`.
fn bench_loaded_faulted(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 51);
    let n = 5000_u64;
    let jobs: Vec<JobSpec> = (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = if fam == ModelFamily::WideResNet {
                1.0
            } else {
                1.3
            };
            JobSpec {
                id: i,
                name: format!("j{i}"),
                submit_s: 30.0 * i as f64,
                model: ModelConfig::new(fam, size, 256),
                iterations: 400 + 100 * (i % 4),
                requested_gpus: 4,
                requested_pool: i as usize % 2,
                deadline_s: None,
            }
        })
        .collect();
    let faults = arena::trace::generate_faults(
        &arena::trace::FaultConfig::with_mtbf(60_000.0),
        &[16, 16],
        n as f64 * 30.0 * 1.4,
    );
    let sim_cfg = SimConfig::new(30.0 * 24.0 * 3600.0);
    let _ = simulate_with_faults(
        &cluster,
        &jobs,
        &mut FcfsPolicy::new(),
        &service,
        &sim_cfg,
        &faults,
    );

    let mut group = c.benchmark_group("simulator/loaded_5k_faulted");
    group.sample_size(10);
    group.bench_function("fcfs", |b| {
        b.iter(|| {
            let mut p = FcfsPolicy::new();
            black_box(simulate_with_faults(
                &cluster,
                black_box(&jobs),
                &mut p,
                &service,
                &sim_cfg,
                &faults,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_loaded_faulted);
criterion_main!(benches);
