//! Criterion: one Arena scheduling decision under load, across search
//! depths — the Fig. 21(a) axis measured on this implementation — plus a
//! loaded 500-job round on the 4-pool simulated cluster with a
//! warm-vs-cold estimator-cache pair. The loaded-round timings are also
//! exported in the machine-readable `BENCH` schema to
//! `results/BENCH_sched.json` (`BENCH_SMOKE=1` collapses the export
//! loops to one iteration).

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use arena::prelude::*;
use arena::sched::{JobView, Obs, PlacementView, SchedEvent, SchedView};
use arena_bench::{git_rev, time_loop, BenchReport};

fn make_jobs(n: u64, base_gpus: usize, num_pools: usize) -> Vec<JobView> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => 1.3,
                ModelFamily::Moe => 1.3,
                ModelFamily::WideResNet => 1.0,
            };
            JobView {
                spec: std::sync::Arc::new(JobSpec {
                    id: i,
                    name: format!("j{i}"),
                    submit_s: 0.0,
                    model: ModelConfig::new(fam, size, 256),
                    iterations: 5000,
                    requested_gpus: base_gpus,
                    requested_pool: i as usize % num_pools,
                    deadline_s: None,
                }),
                remaining_iters: 4000.0,
                placement: None,
            }
        })
        .collect()
}

fn bench_decision_by_depth(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 21);

    // A loaded cluster: 6 running jobs holding most GPUs, 8 queued.
    let mut running = make_jobs(6, 8, 2);
    for (i, j) in running.iter_mut().enumerate() {
        j.placement = Some(PlacementView {
            pool: GpuTypeId(i % 2),
            gpus: 8,
            throughput_sps: 100.0,
            opportunistic: false,
        });
    }
    let queued = make_jobs(8, 8, 2);
    let mut pools = cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 8;

    // Warm the service caches once so the bench measures decision logic,
    // not first-touch exploration (as in a long-running scheduler).
    {
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &running,
            pools: &pools,
            service: &service,
            obs: Obs::disabled(),
        };
        let mut p = ArenaPolicy::new().with_search_depth(5);
        let _ = p.schedule(SchedEvent::Round, &view);
    }

    let mut group = c.benchmark_group("scheduling/arena_decision");
    for depth in 1..=5_usize {
        group.bench_function(format!("depth_{depth}"), |b| {
            let mut policy = ArenaPolicy::new().with_search_depth(depth);
            b.iter(|| {
                let view = SchedView {
                    now_s: 0.0,
                    queued: &queued,
                    running: &running,
                    pools: &pools,
                    service: &service,
                    obs: Obs::disabled(),
                };
                black_box(policy.schedule(SchedEvent::Round, &view))
            })
        });
    }
    group.finish();
}

fn bench_baseline_decisions(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 22);
    let queued = make_jobs(8, 8, 2);
    let running: Vec<JobView> = Vec::new();
    let pools = cluster.pool_stats();

    let mut group = c.benchmark_group("scheduling/baseline_decision");
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FcfsPolicy::new()),
        Box::new(GavelPolicy::new()),
        Box::new(ElasticFlowPolicy::loosened()),
    ];
    for policy in &mut policies {
        // Warm caches.
        {
            let view = SchedView {
                now_s: 0.0,
                queued: &queued,
                running: &running,
                pools: &pools,
                service: &service,
                obs: Obs::disabled(),
            };
            let _ = policy.schedule(SchedEvent::Round, &view);
        }
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let view = SchedView {
                    now_s: 0.0,
                    queued: &queued,
                    running: &running,
                    pools: &pools,
                    service: &service,
                    obs: Obs::disabled(),
                };
                black_box(policy.schedule(SchedEvent::Round, &view))
            })
        });
    }
    group.finish();
}

fn round_view<'a>(
    queued: &'a [JobView],
    pools: &'a [arena::cluster::PoolStats],
    service: &'a PlanService,
) -> SchedView<'a> {
    SchedView {
        now_s: 0.0,
        queued,
        running: &[],
        pools,
        service,
        obs: Obs::disabled(),
    }
}

/// A loaded 500-job round on the 4-pool simulated cluster, cold vs warm
/// estimator cache, exported in the `BENCH` schema for trend tracking.
fn bench_loaded_cluster_export() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let cluster = arena::cluster::presets::table1_simulated();
    let n = if smoke { 40 } else { 500 };
    let queued = make_jobs(n, 8, 4);
    let pools = cluster.pool_stats();
    let iters = if smoke { 1 } else { 5 };

    // Cold: a fresh service each iteration, so every Cell estimate is a
    // first touch.
    let cold = time_loop(&format!("sched/loaded_round_{n}_cold"), iters, || {
        let service = PlanService::new(&cluster, CostParams::default(), 21);
        let mut policy = ArenaPolicy::new();
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &[],
            pools: &pools,
            service: &service,
            obs: Obs::disabled(),
        };
        black_box(policy.schedule(SchedEvent::Round, &view));
    });

    // Warm: one shared pre-warmed service; every estimate is a cache hit.
    let service = PlanService::new(&cluster, CostParams::default(), 21);
    let _ = ArenaPolicy::new().schedule(SchedEvent::Round, &round_view(&queued, &pools, &service));
    let warm = time_loop(&format!("sched/loaded_round_{n}_warm"), iters, || {
        let mut policy = ArenaPolicy::new();
        black_box(policy.schedule(SchedEvent::Round, &round_view(&queued, &pools, &service)));
    });

    let report = BenchReport {
        smoke,
        git_rev: git_rev(),
        policies: vec!["Arena".to_string()],
        benches: vec![cold, warm],
    };
    let body = serde_json::to_string_pretty(&report).expect("serialise");
    arena_bench::write_text("BENCH_sched.json", &body).expect("write results/BENCH_sched.json");
}

criterion_group!(benches, bench_decision_by_depth, bench_baseline_decisions);

fn main() {
    benches();
    bench_loaded_cluster_export();
}
