//! Criterion: one Arena scheduling decision under load, across search
//! depths — the Fig. 21(a) axis measured on this implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arena::prelude::*;
use arena::sched::{JobView, Obs, PlacementView, SchedEvent, SchedView};

fn make_jobs(n: u64, base_gpus: usize) -> Vec<JobView> {
    (0..n)
        .map(|i| {
            let fam =
                [ModelFamily::Bert, ModelFamily::Moe, ModelFamily::WideResNet][(i % 3) as usize];
            let size = match fam {
                ModelFamily::Bert => 1.3,
                ModelFamily::Moe => 1.3,
                ModelFamily::WideResNet => 1.0,
            };
            JobView {
                spec: JobSpec {
                    id: i,
                    name: format!("j{i}"),
                    submit_s: 0.0,
                    model: ModelConfig::new(fam, size, 256),
                    iterations: 5000,
                    requested_gpus: base_gpus,
                    requested_pool: (i % 2) as usize,
                    deadline_s: None,
                },
                remaining_iters: 4000.0,
                placement: None,
            }
        })
        .collect()
}

fn bench_decision_by_depth(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 21);

    // A loaded cluster: 6 running jobs holding most GPUs, 8 queued.
    let mut running = make_jobs(6, 8);
    for (i, j) in running.iter_mut().enumerate() {
        j.placement = Some(PlacementView {
            pool: GpuTypeId(i % 2),
            gpus: 8,
            throughput_sps: 100.0,
            opportunistic: false,
        });
    }
    let queued = make_jobs(8, 8);
    let mut pools = cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 8;

    // Warm the service caches once so the bench measures decision logic,
    // not first-touch exploration (as in a long-running scheduler).
    {
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &running,
            pools: &pools,
            service: &service,
            obs: Obs::disabled(),
        };
        let mut p = ArenaPolicy::new().with_search_depth(5);
        let _ = p.schedule(SchedEvent::Round, &view);
    }

    let mut group = c.benchmark_group("scheduling/arena_decision");
    for depth in 1..=5_usize {
        group.bench_function(format!("depth_{depth}"), |b| {
            let mut policy = ArenaPolicy::new().with_search_depth(depth);
            b.iter(|| {
                let view = SchedView {
                    now_s: 0.0,
                    queued: &queued,
                    running: &running,
                    pools: &pools,
                    service: &service,
                    obs: Obs::disabled(),
                };
                black_box(policy.schedule(SchedEvent::Round, &view))
            })
        });
    }
    group.finish();
}

fn bench_baseline_decisions(c: &mut Criterion) {
    let cluster = arena::cluster::presets::physical_testbed();
    let service = PlanService::new(&cluster, CostParams::default(), 22);
    let queued = make_jobs(8, 8);
    let running: Vec<JobView> = Vec::new();
    let pools = cluster.pool_stats();

    let mut group = c.benchmark_group("scheduling/baseline_decision");
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FcfsPolicy::new()),
        Box::new(GavelPolicy::new()),
        Box::new(ElasticFlowPolicy::loosened()),
    ];
    for policy in &mut policies {
        // Warm caches.
        {
            let view = SchedView {
                now_s: 0.0,
                queued: &queued,
                running: &running,
                pools: &pools,
                service: &service,
                obs: Obs::disabled(),
            };
            let _ = policy.schedule(SchedEvent::Round, &view);
        }
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let view = SchedView {
                    now_s: 0.0,
                    queued: &queued,
                    running: &running,
                    pools: &pools,
                    service: &service,
                    obs: Obs::disabled(),
                };
                black_box(policy.schedule(SchedEvent::Round, &view))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision_by_depth, bench_baseline_decisions);
criterion_main!(benches);
