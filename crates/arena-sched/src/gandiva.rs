//! Gandiva-style introspective baseline.

use arena_cluster::GpuTypeId;
use arena_obs::Decision;

use crate::policy::{Action, PlanMode, Policy, SchedEvent, SchedView};

/// Gandiva: introspective scheduling with backfilling and migration, but
/// *blind to GPU heterogeneity* — any pool with free capacity is as good
/// as any other. Jobs keep their requested GPU count (no scaling).
///
/// Compared to FCFS it (a) backfills: a job behind a blocked head may run
/// if it fits anywhere, and (b) migrates: each round, a queued job that
/// fits nowhere may displace a running job to another pool with room.
#[derive(Debug, Default)]
pub struct GandivaPolicy;

impl GandivaPolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        GandivaPolicy
    }

    /// Picks the pool with the most free GPUs that can hold `need`
    /// (heterogeneity-blind: capacity is the only criterion).
    fn blind_pick(free: &[usize], need: usize) -> Option<usize> {
        (0..free.len())
            .filter(|&p| free[p] >= need)
            .max_by_key(|&p| free[p])
    }
}

impl Policy for GandivaPolicy {
    fn name(&self) -> &'static str {
        "Gandiva"
    }

    fn plan_mode(&self) -> PlanMode {
        PlanMode::Adaptive
    }

    fn schedule(&mut self, event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut free: Vec<usize> = view.pools.iter().map(|p| p.free_gpus).collect();

        for job in view.queued {
            let need = job.spec.requested_gpus;
            if let Some(p) = Self::blind_pick(&free, need) {
                let pool = GpuTypeId(p);
                if view
                    .service
                    .adaptive_run(&job.spec.model, need, pool)
                    .is_none()
                {
                    // Infeasible here; blind retry on other pools, else drop
                    // if it cannot run anywhere at its fixed size.
                    let alt = (0..free.len())
                        .filter(|&q| q != p && free[q] >= need)
                        .find(|&q| {
                            view.service
                                .adaptive_run(&job.spec.model, need, GpuTypeId(q))
                                .is_some()
                        });
                    match alt {
                        Some(q) => {
                            free[q] -= need;
                            view.obs.decision(
                                Decision::place(job.id(), q, need)
                                    .on_shard(job.home_shard())
                                    .why("blind-retry"),
                            );
                            actions.push(Action::Place {
                                job: job.id(),
                                pool: GpuTypeId(q),
                                gpus: need,
                                opportunistic: false,
                            });
                        }
                        None => {
                            let feasible_somewhere = (0..free.len()).any(|q| {
                                view.service
                                    .adaptive_run(&job.spec.model, need, GpuTypeId(q))
                                    .is_some()
                            });
                            if !feasible_somewhere {
                                view.obs.decision(
                                    Decision::drop(job.id())
                                        .on_shard(job.home_shard())
                                        .why("infeasible-at-fixed-size"),
                                );
                                actions.push(Action::Drop { job: job.id() });
                            }
                        }
                    }
                    continue;
                }
                free[p] -= need;
                view.obs.decision(
                    Decision::place(job.id(), p, need)
                        .on_shard(job.home_shard())
                        .why("blind-pick"),
                );
                actions.push(Action::Place {
                    job: job.id(),
                    pool,
                    gpus: need,
                    opportunistic: false,
                });
            }
        }

        // Introspective migration (rounds only): if the oldest still-queued
        // job fits nowhere, move one running job of at least its size to
        // another pool with room, freeing its slot.
        if event == SchedEvent::Round {
            if let Some(stuck) = view.queued.iter().find(|j| {
                !actions
                    .iter()
                    .any(|a| matches!(a, Action::Place { job, .. } if *job == j.id()))
            }) {
                let need = stuck.spec.requested_gpus;
                'outer: for running in view.running {
                    let Some(pl) = running.placement else {
                        continue;
                    };
                    if pl.gpus < need {
                        continue;
                    }
                    for (q, &free_q) in free.iter().enumerate() {
                        if q != pl.pool.0
                            && free_q >= pl.gpus
                            && view
                                .service
                                .adaptive_run(&running.spec.model, pl.gpus, GpuTypeId(q))
                                .is_some()
                            && view
                                .service
                                .adaptive_run(&stuck.spec.model, need, pl.pool)
                                .is_some()
                        {
                            // Move the running job, then admit the stuck one.
                            view.obs.decision(
                                Decision::place(running.id(), q, pl.gpus)
                                    .moving_from(pl.pool.0, pl.gpus)
                                    .on_shard(running.home_shard())
                                    .why("introspective-migrate"),
                            );
                            actions.push(Action::Place {
                                job: running.id(),
                                pool: GpuTypeId(q),
                                gpus: pl.gpus,
                                opportunistic: false,
                            });
                            view.obs.decision(
                                Decision::place(stuck.id(), pl.pool.0, need)
                                    .on_shard(stuck.home_shard())
                                    .why("admit-after-migration"),
                            );
                            actions.push(Action::Place {
                                job: stuck.id(),
                                pool: pl.pool,
                                gpus: need,
                                opportunistic: false,
                            });
                            break 'outer;
                        }
                    }
                }
            }
        }

        actions
    }
}
