//! Gavel-style heterogeneity-aware baseline.

use arena_cluster::GpuTypeId;
use arena_obs::Decision;

use crate::policy::{Action, PlanMode, Policy, SchedEvent, SchedView};

/// Gavel: heterogeneity-aware throughput maximisation over a job×GPU-type
/// throughput matrix built from *data-parallel profiles* (§8.1), with a
/// fixed GPU count per job (no scaling).
///
/// Queued jobs are admitted onto the feasible pool with the highest
/// normalised throughput; each round, running jobs may migrate to a pool
/// offering a significantly better rate if capacity allows.
#[derive(Debug)]
pub struct GavelPolicy {
    /// Minimum relative gain before a migration is worth its restart.
    migration_gain: f64,
    /// Maximum migrations per round.
    migrations_per_round: usize,
}

impl Default for GavelPolicy {
    fn default() -> Self {
        GavelPolicy {
            migration_gain: 1.25,
            migrations_per_round: 2,
        }
    }
}

impl GavelPolicy {
    /// Creates the policy with default migration thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// DP-profiled throughput of `job` at its fixed size on `pool`.
    fn rate(view: &SchedView<'_>, job: &crate::policy::JobView, pool: usize) -> Option<f64> {
        view.service
            .dp_profile(&job.spec.model, job.spec.requested_gpus, GpuTypeId(pool))
    }
}

impl Policy for GavelPolicy {
    fn name(&self) -> &'static str {
        "Gavel"
    }

    fn plan_mode(&self) -> PlanMode {
        PlanMode::Adaptive
    }

    fn schedule(&mut self, event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut free: Vec<usize> = view.pools.iter().map(|p| p.free_gpus).collect();

        // Admit queued jobs onto their best feasible pool by profiled rate.
        for job in view.queued {
            let need = job.spec.requested_gpus;
            let best = (0..free.len())
                .filter(|&p| free[p] >= need)
                .filter_map(|p| Self::rate(view, job, p).map(|r| (p, r)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((p, r)) = best {
                free[p] -= need;
                view.obs.decision(
                    Decision::place(job.id(), p, need)
                        .on_shard(job.home_shard())
                        .with_score(r)
                        .why("best-rate-pool"),
                );
                actions.push(Action::Place {
                    job: job.id(),
                    pool: GpuTypeId(p),
                    gpus: need,
                    opportunistic: false,
                });
            } else {
                // No pool is DP-feasible at the fixed size with capacity;
                // if none is DP-feasible at all, Gavel rejects the job.
                let feasible_anywhere = (0..free.len()).any(|p| Self::rate(view, job, p).is_some());
                if !feasible_anywhere {
                    view.obs.decision(
                        Decision::drop(job.id())
                            .on_shard(job.home_shard())
                            .why("dp-infeasible-everywhere"),
                    );
                    actions.push(Action::Drop { job: job.id() });
                }
            }
        }

        // Round: migrate running jobs to substantially better pools.
        if event == SchedEvent::Round {
            let mut moved = 0;
            for job in view.running {
                if moved >= self.migrations_per_round {
                    break;
                }
                let Some(pl) = job.placement else { continue };
                let Some(cur) = Self::rate(view, job, pl.pool.0) else {
                    continue;
                };
                let better = (0..free.len())
                    .filter(|&p| p != pl.pool.0 && free[p] >= pl.gpus)
                    .filter_map(|p| Self::rate(view, job, p).map(|r| (p, r)))
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((p, r)) = better {
                    if r > cur * self.migration_gain {
                        free[p] -= pl.gpus;
                        moved += 1;
                        view.obs.decision(
                            Decision::place(job.id(), p, pl.gpus)
                                .moving_from(pl.pool.0, pl.gpus)
                                .on_shard(job.home_shard())
                                .with_score(r)
                                .why("rate-migration"),
                        );
                        actions.push(Action::Place {
                            job: job.id(),
                            pool: GpuTypeId(p),
                            gpus: pl.gpus,
                            opportunistic: false,
                        });
                    }
                }
            }
        }

        actions
    }
}
