//! Solver-enhanced Arena: joint assignment by beam search.
//!
//! The paper notes that "techniques based on solvers could also be
//! applied to enhance Crius" (§6) — its greedy policy is a deliberate
//! simplification. This variant implements that extension: at every
//! scheduling event it re-solves the *joint* assignment of all queued and
//! running jobs to their Cell candidates, maximising total normalised
//! estimated throughput minus restart penalties, subject to pool
//! capacities. The underlying problem is a multiple-choice knapsack
//! (NP-hard); a beam search over jobs ordered by their best candidate
//! gives high-quality solutions in well under a millisecond at testbed
//! scale, and degenerates gracefully (beam width 1 ≈ greedy).
//!
//! Empirically (see the `solver` experiment), the joint objective buys a
//! few percent of *cluster throughput* over greedy Arena but loses on
//! *JCT*: a pure instantaneous-throughput objective has no notion of
//! arrival order, so it parks low-value jobs indefinitely, where the
//! greedy policy's queue walk gives an implicit FIFO guarantee. This is
//! exactly the orthogonality the paper claims for solver techniques — the
//! objective, not the search, is the binding design choice.

use arena_cluster::GpuTypeId;
use arena_obs::Decision;

use crate::policy::{Action, JobView, PlanMode, Policy, SchedEvent, SchedView};

/// Normalised-throughput surcharge for changing a running job's placement.
/// Higher than the greedy policy's move penalty because the solver
/// re-solves from scratch at every event: without a strong stickiness
/// term, equivalent-valued assignments flip between events and the
/// cluster thrashes.
const RESTART_PENALTY: f64 = 0.35;

/// Small bonus for keeping a running job exactly where it is, breaking
/// ties between equal-valued placements deterministically in favour of
/// stability.
const STAY_BONUS: f64 = 0.05;

/// Running jobs within this many seconds of completion are pinned.
const PIN_REMAINING_S: f64 = 900.0;

/// One placement option for one job in the joint problem.
#[derive(Debug, Clone, Copy)]
struct Choice {
    /// `None` encodes "leave idle / evict".
    placement: Option<(GpuTypeId, usize)>,
    /// Effective objective contribution (score minus penalties).
    value: f64,
}

/// One job's row in the joint problem.
struct Item {
    job: u64,
    /// Home shard (partition) stamped on this row's decisions.
    home: u32,
    current: Option<(GpuTypeId, usize)>,
    choices: Vec<Choice>,
}

/// A partial assignment in the beam.
#[derive(Clone)]
struct State {
    free: Vec<usize>,
    value: f64,
    picks: Vec<usize>,
}

/// The solver-enhanced Cell scheduler.
#[derive(Debug)]
pub struct ArenaSolverPolicy {
    /// Beam width of the joint search.
    pub beam_width: usize,
}

impl Default for ArenaSolverPolicy {
    fn default() -> Self {
        ArenaSolverPolicy { beam_width: 64 }
    }
}

impl ArenaSolverPolicy {
    /// Creates the policy with the default beam width.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the beam width (1 ≈ greedy).
    #[must_use]
    pub fn with_beam_width(mut self, width: usize) -> Self {
        self.beam_width = width.max(1);
        self
    }

    /// The `{N_G/2, N_G, 2N_G}` GPU menu.
    fn gpu_menu(requested: usize) -> Vec<usize> {
        let mut menu = Vec::new();
        if requested > 1 {
            menu.push(requested / 2);
        }
        menu.push(requested);
        if requested < 64 {
            menu.push(requested * 2);
        }
        menu
    }

    /// Builds a job's row: every feasible (pool, gpus) with its effective
    /// value, plus the idle option.
    fn item(view: &SchedView<'_>, job: &JobView) -> Item {
        let ideal = view.service.ideal_sps(&job.spec);
        let current = job.placement.map(|pl| (pl.pool, pl.gpus));

        // Pin jobs that are about to finish: a restart cannot pay off.
        let remaining_s = job.placement.map_or(f64::INFINITY, |pl| {
            if pl.throughput_sps > 0.0 {
                job.remaining_iters * job.spec.model.global_batch as f64 / pl.throughput_sps
            } else {
                f64::INFINITY
            }
        });
        if let Some(cur) = current {
            if remaining_s < PIN_REMAINING_S {
                return Item {
                    job: job.id(),
                    home: job.home_shard(),
                    current,
                    choices: vec![Choice {
                        placement: Some(cur),
                        value: 1.0,
                    }],
                };
            }
        }

        let mut choices = Vec::new();
        for pool in (0..view.pools.len()).map(GpuTypeId) {
            for gpus in Self::gpu_menu(job.spec.requested_gpus) {
                if let Some(c) = view.service.cell_choice(&job.spec.model, gpus, pool) {
                    let score = c.throughput_sps / ideal;
                    let adjust = match current {
                        Some(cur) if cur == (pool, gpus) => STAY_BONUS,
                        Some(_) => -RESTART_PENALTY,
                        None => 0.0,
                    };
                    choices.push(Choice {
                        placement: Some((pool, gpus)),
                        value: score + adjust,
                    });
                }
            }
        }
        // Idle: free for queued jobs, heavily discouraged for running ones.
        choices.push(Choice {
            placement: None,
            value: if current.is_some() {
                -2.0 * RESTART_PENALTY
            } else {
                0.0
            },
        });
        choices.sort_by(|a, b| b.value.total_cmp(&a.value));
        Item {
            job: job.id(),
            home: job.home_shard(),
            current,
            choices,
        }
    }

    /// Beam search over the joint assignment. Returns one choice index
    /// per item.
    fn solve(&self, items: &[Item], free: Vec<usize>) -> Vec<usize> {
        let mut beam = vec![State {
            free,
            value: 0.0,
            picks: Vec::with_capacity(items.len()),
        }];
        for item in items {
            let mut next: Vec<State> = Vec::with_capacity(beam.len() * item.choices.len());
            for state in &beam {
                for (ci, choice) in item.choices.iter().enumerate() {
                    let fits = match choice.placement {
                        Some((pool, gpus)) => state.free[pool.0] >= gpus,
                        None => true,
                    };
                    if !fits {
                        continue;
                    }
                    let mut s = state.clone();
                    if let Some((pool, gpus)) = choice.placement {
                        s.free[pool.0] -= gpus;
                    }
                    s.value += choice.value;
                    s.picks.push(ci);
                    next.push(s);
                }
            }
            next.sort_by(|a, b| b.value.total_cmp(&a.value));
            next.truncate(self.beam_width);
            beam = next;
        }
        beam.into_iter().next().map(|s| s.picks).unwrap_or_default()
    }
}

impl Policy for ArenaSolverPolicy {
    fn name(&self) -> &'static str {
        "Arena-Solver"
    }

    fn plan_mode(&self) -> PlanMode {
        PlanMode::Cell
    }

    fn schedule(&mut self, _event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        // All live jobs participate; the free pool excludes nothing since
        // running jobs' GPUs are re-offered through their own rows.
        let mut free: Vec<usize> = view.pools.iter().map(|p| p.free_gpus).collect();
        let mut actions = Vec::new();

        let mut items: Vec<Item> = Vec::new();
        for job in view.running.iter().chain(view.queued.iter()) {
            let item = Self::item(view, job);
            if item.choices.len() == 1 && item.current.is_none() {
                // Queued and infeasible everywhere: reject.
                view.obs.decision(
                    Decision::drop(item.job)
                        .on_shard(item.home)
                        .why("infeasible-everywhere"),
                );
                actions.push(Action::Drop { job: item.job });
                continue;
            }
            if let Some((pool, gpus)) = item.current {
                free[pool.0] += gpus;
            }
            items.push(item);
        }

        // Jobs with the most to contribute are assigned first, so the beam
        // fills capacity with high-value placements before low-value ones.
        items.sort_by(|a, b| b.choices[0].value.total_cmp(&a.choices[0].value));

        let picks = self.solve(&items, free);
        for (item, &pick) in items.iter().zip(&picks) {
            let choice = item.choices[pick];
            match (item.current, choice.placement) {
                (cur, Some((pool, gpus))) if cur != Some((pool, gpus)) => {
                    let mut d = Decision::place(item.job, pool.0, gpus)
                        .on_shard(item.home)
                        .with_score(choice.value)
                        .why("joint-assignment");
                    if let Some((p, g)) = cur {
                        d = d.moving_from(p.0, g);
                    }
                    view.obs.decision(d);
                    actions.push(Action::Place {
                        job: item.job,
                        pool,
                        gpus,
                        opportunistic: false,
                    });
                }
                (Some(_), None) => {
                    view.obs.decision(
                        Decision::evict(item.job)
                            .on_shard(item.home)
                            .with_score(choice.value)
                            .why("solver-park"),
                    );
                    actions.push(Action::Evict { job: item.job });
                }
                _ => {}
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PlacementView;
    use crate::service::PlanService;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_trace::JobSpec;

    fn job(id: u64, gpus: usize) -> JobView {
        JobView {
            spec: std::sync::Arc::new(JobSpec {
                id,
                name: format!("j{id}"),
                submit_s: 0.0,
                model: ModelConfig::new(ModelFamily::Bert, 1.3, 256),
                iterations: 1000,
                requested_gpus: gpus,
                requested_pool: 0,
                deadline_s: None,
            }),
            remaining_iters: 1000.0,
            placement: None,
        }
    }

    #[test]
    fn packs_two_jobs_where_greedy_would_pend_one() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 31);
        let queued = vec![job(1, 8), job(2, 8)];
        let mut pools = cluster.pool_stats();
        pools[0].free_gpus = 8; // Only 8 A40s free in total.
        pools[1].free_gpus = 0;
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &[],
            pools: &pools,
            service: &service,
            obs: arena_obs::Obs::disabled(),
        };
        let actions = ArenaSolverPolicy::new().schedule(SchedEvent::Round, &view);
        let placed: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Place { job, gpus: 4, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert_eq!(
            placed.len(),
            2,
            "solver did not halve both jobs: {actions:?}"
        );
    }

    #[test]
    fn keeps_running_jobs_in_place_absent_pressure() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 32);
        let mut running = vec![job(1, 8)];
        running[0].placement = Some(PlacementView {
            pool: GpuTypeId(0),
            gpus: 8,
            throughput_sps: 100.0,
            opportunistic: false,
        });
        let mut pools = cluster.pool_stats();
        pools[0].free_gpus -= 8;
        let view = SchedView {
            now_s: 0.0,
            queued: &[],
            running: &running,
            pools: &pools,
            service: &service,
            obs: arena_obs::Obs::disabled(),
        };
        let actions = ArenaSolverPolicy::new().schedule(SchedEvent::Round, &view);
        // The restart penalty makes marginal reshuffles unattractive; at
        // most an upscale onto genuinely idle capacity is allowed.
        for a in &actions {
            assert!(
                matches!(a, Action::Place { job: 1, gpus, .. } if *gpus >= 8),
                "unexpected churn: {actions:?}"
            );
        }
    }

    #[test]
    fn beam_width_one_is_still_feasible() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 33);
        let queued = vec![job(1, 4), job(2, 4), job(3, 4)];
        let pools = cluster.pool_stats();
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &[],
            pools: &pools,
            service: &service,
            obs: arena_obs::Obs::disabled(),
        };
        let actions = ArenaSolverPolicy::new()
            .with_beam_width(1)
            .schedule(SchedEvent::Round, &view);
        let places = actions
            .iter()
            .filter(|a| matches!(a, Action::Place { .. }))
            .count();
        assert_eq!(places, 3);
    }

    #[test]
    fn infeasible_job_dropped() {
        let cluster = presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 34);
        let mut j = job(1, 2);
        let spec = std::sync::Arc::make_mut(&mut j.spec);
        spec.model = ModelConfig::new(ModelFamily::Moe, 27.0, 256);
        spec.requested_gpus = 1; // menu {1, 2}: hopeless for MoE-27B
        let queued = vec![j];
        let pools = cluster.pool_stats();
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &[],
            pools: &pools,
            service: &service,
            obs: arena_obs::Obs::disabled(),
        };
        let actions = ArenaSolverPolicy::new().schedule(SchedEvent::Round, &view);
        assert_eq!(actions, vec![Action::Drop { job: 1 }]);
    }
}
