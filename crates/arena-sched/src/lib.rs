//! Cluster scheduling policies (§6) and the baselines of §8.1.
//!
//! * [`policy`] — the policy interface: a scheduler is a pure decision
//!   function over a [`policy::SchedView`], emitting placement/eviction
//!   actions that the simulator executes and prices.
//! * [`service`] — the [`service::PlanService`]: the single gateway to
//!   performance data. Baselines see only data-parallel profiles (per the
//!   paper's experimental setup); Arena sees Cell estimates; every job,
//!   regardless of scheduler, *runs* with adaptive parallelism.
//! * [`arena`] — the Cell-based scheduler of Algorithm 1, with resource
//!   scaling bounded by a search depth, opportunistic execution, the
//!   deadline-aware Arena-DDL variant, and the Arena-NA / Arena-NH
//!   ablations of §8.6.
//! * [`fcfs`], [`gandiva`], [`gavel`], [`elasticflow`] — the four
//!   baseline schedulers, re-implemented at policy level.
//! * [`solver`] — the solver-enhanced extension the paper sketches in §6:
//!   joint assignment of all jobs by beam search.

pub mod arena;
pub mod elasticflow;
pub mod fcfs;
pub mod gandiva;
pub mod gavel;
mod memo;
pub mod policy;
pub mod service;
pub mod solver;

#[cfg(test)]
mod baseline_tests;
#[cfg(test)]
pub(crate) mod test_fixtures;

pub use arena::{ArenaPolicy, ArenaVariant, CandidateMemoStats, QueueOrder};
pub use arena_obs::{Decision, DecisionKind, Obs, TraceReport};
pub use elasticflow::ElasticFlowPolicy;
pub use fcfs::FcfsPolicy;
pub use gandiva::GandivaPolicy;
pub use gavel::GavelPolicy;
pub use policy::{
    Action, JobView, PlacementView, PlanMode, Policy, SchedEvent, SchedView, ShardQueue,
};
pub use service::{PlanService, RunPlan};
pub use solver::ArenaSolverPolicy;

/// Names accepted by [`policy_by_name`], in the canonical comparison
/// order (the order `repro` experiments and the service suite use).
pub const POLICY_NAMES: [&str; 5] = ["fcfs", "gandiva", "gavel", "elasticflow", "arena"];

/// Policy selection at startup: maps a lowercase policy name to a boxed
/// instance, constructed exactly as the comparison experiments construct
/// it (notably `ElasticFlowPolicy::loosened()` for `elasticflow`).
/// Returns `None` for unknown names. `worker_threads` pins the Arena
/// policy's internal worker pool — pass 1 for deterministic services and
/// suites that must not read `ARENA_WORKER_THREADS` from the ambient
/// environment.
#[must_use]
pub fn policy_by_name(name: &str, worker_threads: usize) -> Option<Box<dyn Policy>> {
    match name {
        "fcfs" => Some(Box::new(FcfsPolicy::new())),
        "gandiva" => Some(Box::new(GandivaPolicy::new())),
        "gavel" => Some(Box::new(GavelPolicy::new())),
        "elasticflow" => Some(Box::new(ElasticFlowPolicy::loosened())),
        "arena" => Some(Box::new(
            ArenaPolicy::new().with_worker_threads(worker_threads),
        )),
        _ => None,
    }
}
