//! First-Come-First-Served (Kubernetes/YARN-style) baseline.

use arena_obs::Decision;

use crate::policy::{Action, PlanMode, Policy, SchedEvent, SchedView};

/// Strict FCFS: jobs run in arrival order on their requested pool at
/// their requested GPU count; the head of the queue blocks everyone
/// behind it. No scaling, no migration, no heterogeneity awareness.
#[derive(Debug, Default)]
pub struct FcfsPolicy;

impl FcfsPolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        FcfsPolicy
    }
}

impl Policy for FcfsPolicy {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn plan_mode(&self) -> PlanMode {
        PlanMode::Adaptive
    }

    fn schedule(&mut self, _event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut free: Vec<usize> = view.pools.iter().map(|p| p.free_gpus).collect();
        for job in view.queued {
            let pool = arena_cluster::GpuTypeId(job.spec.requested_pool);
            let need = job.spec.requested_gpus;
            // A job that can never run on its requested configuration is
            // rejected up front rather than blocking the queue forever.
            if view
                .service
                .adaptive_run(&job.spec.model, need, pool)
                .is_none()
            {
                view.obs.decision(
                    Decision::drop(job.id())
                        .on_shard(job.home_shard())
                        .why("infeasible-requested-config"),
                );
                actions.push(Action::Drop { job: job.id() });
                continue;
            }
            if free[pool.0] >= need {
                free[pool.0] -= need;
                view.obs.decision(
                    Decision::place(job.id(), pool.0, need)
                        .on_shard(job.home_shard())
                        .why("head-of-line"),
                );
                actions.push(Action::Place {
                    job: job.id(),
                    pool,
                    gpus: need,
                    opportunistic: false,
                });
            } else {
                // Head-of-line blocking: nothing behind this job runs.
                break;
            }
        }
        actions
    }
}
