//! The policy interface between schedulers and the simulator.

use std::sync::Arc;

use arena_cluster::{GpuTypeId, PoolStats};
use arena_obs::Obs;
use arena_trace::JobSpec;

use crate::service::PlanService;

/// How the simulator acquires a run plan for a policy's placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Full adaptive-parallelism exploration at (re)start — what the
    /// baselines' jobs do (§8.1).
    Adaptive,
    /// Cell estimation + Cell-guided pruned tuning — Arena's path.
    Cell,
}

/// What a running job currently holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementView {
    /// Pool the job runs in.
    pub pool: GpuTypeId,
    /// GPUs held.
    pub gpus: usize,
    /// Achieved throughput, samples/second.
    pub throughput_sps: f64,
    /// Whether the job was placed opportunistically (evictable first).
    pub opportunistic: bool,
}

/// A job as a policy sees it.
///
/// `spec` is shared, not owned: the simulator builds fresh view vectors
/// for every scheduling pass, and an `Arc` clone is a refcount bump
/// instead of a deep copy of the spec's strings and model config. Field
/// access is unchanged for policies (`job.spec.model` auto-derefs).
#[derive(Debug, Clone)]
pub struct JobView {
    /// The submitted job.
    pub spec: Arc<JobSpec>,
    /// Iterations still to run.
    pub remaining_iters: f64,
    /// Current placement, if running.
    pub placement: Option<PlacementView>,
}

impl JobView {
    /// Job id shorthand.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.spec.id
    }

    /// The scheduler shard that owns this job: its home partition under
    /// the canonical per-pool partition map, i.e. the requested pool.
    /// Decision provenance stamps this id — a semantic identifier that
    /// is byte-identical at every executor shard count.
    #[must_use]
    pub fn home_shard(&self) -> u32 {
        self.spec.requested_pool as u32
    }
}

/// The cluster as a policy sees it at a scheduling point.
pub struct SchedView<'a> {
    /// Current simulation time, seconds.
    pub now_s: f64,
    /// Jobs waiting to run, in arrival order.
    pub queued: &'a [JobView],
    /// Jobs currently running.
    pub running: &'a [JobView],
    /// Per-pool capacity and free GPUs.
    pub pools: &'a [PoolStats],
    /// Gateway to performance data.
    pub service: &'a PlanService,
    /// Observability sink for decision provenance. `Obs::disabled()`
    /// (the default) makes every recording call a no-op.
    pub obs: Obs,
}

impl SchedView<'_> {
    /// Free GPUs in a pool.
    #[must_use]
    pub fn free(&self, pool: GpuTypeId) -> usize {
        self.pools
            .iter()
            .find(|p| p.id == pool)
            .map_or(0, |p| p.free_gpus)
    }
}

/// What fires a scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// A new job arrived (its id).
    Arrival(u64),
    /// A job finished (its id).
    Departure(u64),
    /// The periodic scheduling round (every 5 minutes, §7).
    Round,
    /// A node crashed; its jobs are already back in the queue with
    /// progress rolled back to their last checkpoint.
    NodeFailure {
        /// Pool of the failed node.
        pool: GpuTypeId,
        /// Node index within the pool.
        node: usize,
    },
    /// A node returned to service; its capacity is free again.
    NodeRepair {
        /// Pool of the repaired node.
        pool: GpuTypeId,
        /// Node index within the pool.
        node: usize,
    },
}

impl SchedEvent {
    /// Stable label used as the `trigger` field of recorded decisions.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SchedEvent::Arrival(_) => "arrival",
            SchedEvent::Departure(_) => "departure",
            SchedEvent::Round => "round",
            SchedEvent::NodeFailure { .. } => "node-failure",
            SchedEvent::NodeRepair { .. } => "node-repair",
        }
    }
}

/// A scheduling decision. The simulator executes evictions/drops before
/// placements and ignores placements that exceed capacity or have no
/// feasible plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Run `job` on `gpus` devices of `pool` (re-placing if running).
    Place {
        /// Job id.
        job: u64,
        /// Target pool.
        pool: GpuTypeId,
        /// Target GPU count.
        gpus: usize,
        /// Mark the placement opportunistic (Arena's starvation valve).
        opportunistic: bool,
    },
    /// Stop `job` and return it to the queue.
    Evict {
        /// Job id.
        job: u64,
    },
    /// Permanently reject `job` (infeasible or deadline-hopeless).
    Drop {
        /// Job id.
        job: u64,
    },
}

/// One executor shard's slice of the queue, as handed to
/// [`Policy::prepare_shards`] by the sharded simulation engine before a
/// scheduling pass.
#[derive(Debug)]
pub struct ShardQueue<'a> {
    /// Executor shard index.
    pub shard: usize,
    /// Queued jobs owned by this shard, in arrival order. References
    /// into the engine's merged queue vector, so handing the queue out
    /// shard-by-shard costs no view clones.
    pub queued: Vec<&'a JobView>,
}

/// A cluster scheduling policy.
///
/// `Send` is a supertrait so boxed policies can move onto worker threads
/// (the `repro` driver fans whole policy runs out over a
/// [`arena_runtime::WorkerPool`]); every policy here is plain data.
pub trait Policy: Send {
    /// Display name used in experiment output.
    fn name(&self) -> &'static str;

    /// How run plans are acquired for this policy's placements.
    fn plan_mode(&self) -> PlanMode;

    /// Produces scheduling actions for an event.
    fn schedule(&mut self, event: SchedEvent, view: &SchedView<'_>) -> Vec<Action>;

    /// Per-shard pre-pass hook of the sharded engine, called once before
    /// [`Policy::schedule`] with the queue split by executor shard.
    ///
    /// Implementations may warm caches concurrently (candidate
    /// prefetching), but MUST NOT change any observable scheduling
    /// output: the subsequent `schedule` call has to return exactly what
    /// it would have returned without the pre-pass. The default is a
    /// no-op.
    fn prepare_shards(&mut self, _shards: &[ShardQueue<'_>], _view: &SchedView<'_>) {}
}
