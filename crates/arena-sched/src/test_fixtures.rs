//! Shared fixtures for policy unit tests.

use arena_cluster::{Cluster, PoolStats};
use arena_model::zoo::{ModelConfig, ModelFamily};
use arena_perf::CostParams;
use arena_trace::JobSpec;

use crate::policy::{JobView, SchedView};
use crate::service::PlanService;

/// A testbed cluster plus a service, bundled for policy tests.
pub struct Fixture {
    /// The 64-GPU physical testbed.
    pub cluster: Cluster,
    /// A plan service over it.
    pub service: PlanService,
}

impl Fixture {
    /// Creates the fixture with a fixed seed.
    pub fn new() -> Self {
        let cluster = arena_cluster::presets::physical_testbed();
        let service = PlanService::new(&cluster, CostParams::default(), 1234);
        Fixture { cluster, service }
    }

    /// Builds a view over explicit queues and pool states.
    pub fn view<'a>(
        &'a self,
        queued: &'a [JobView],
        running: &'a [JobView],
        pools: &'a [PoolStats],
    ) -> SchedView<'a> {
        SchedView {
            now_s: 0.0,
            queued,
            running,
            pools,
            service: &self.service,
            obs: arena_obs::Obs::disabled(),
        }
    }
}

/// A queued BERT job of the given size/GPU request on `pool`.
pub fn job(id: u64, params_b: f64, gpus: usize, pool: usize) -> JobView {
    JobView {
        spec: std::sync::Arc::new(JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: 0.0,
            model: ModelConfig::new(ModelFamily::Bert, params_b, 256),
            iterations: 1000,
            requested_gpus: gpus,
            requested_pool: pool,
            deadline_s: None,
        }),
        remaining_iters: 1000.0,
        placement: None,
    }
}
