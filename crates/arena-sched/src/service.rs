//! The plan-acquisition service: the single gateway to performance data.
//!
//! Every scheduler sees job performance exclusively through this service,
//! which enforces the paper's experimental setup (§8.1):
//!
//! * **Baselines schedule on data-parallel profiles** —
//!   [`PlanService::dp_profile`] measures the best plan whose every stage
//!   is data-parallel only (no tensor sharding), so their memory picture
//!   overestimates large jobs' minimum share.
//! * **Every job runs with adaptive parallelism** —
//!   [`PlanService::adaptive_run`] explores the full parallelism space at
//!   (re)start and returns the genuinely best plan, together with the
//!   exploration wall-clock the job pays before making progress.
//! * **Arena schedules on Cell estimates** —
//!   [`PlanService::cell_choice`] prices a job's Cells agilely;
//!   [`PlanService::arena_run`] then tunes the chosen Cell with the
//!   pruned search, paying far less wall-clock than full exploration.
//!
//! All results are memoised by `(model, batch, gpus, pool)`: identical
//! configurations are explored once, exactly as a real cluster caches
//! profiling databases. The memo maps are byte-accounted
//! [`BudgetedMap`]s: under a configured budget
//! ([`PlanService::set_mem_budget`]) the plan database sheds its
//! oldest entries and recomputes them on demand — every entry is a
//! pure function of its key, so eviction changes wall-clock and hit
//! rates, never a returned plan.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use arena_cluster::{Cluster, GpuTypeId, NodeSpec};
use arena_estimator::{best_estimate, Cell, CellEstimate, CellEstimator};
use arena_model::{ModelConfig, ModelGraph};
use arena_parallelism::{PipelinePlan, PlanSpace, StageAssignment, StagePlan};
use arena_perf::{CostParams, GroundTruth, HwTarget};
use arena_runtime::{BudgetedMap, MemSection, MemSize};
use arena_trace::JobSpec;
use arena_tuner::tune_in_space;

/// Wall-clock cap on one full adaptive exploration. Alpa reports ~40 min
/// per exploration (§2.1); its DP/ILP search visits far fewer candidates
/// than brute force, so exploration wall time is capped at that figure.
pub const EXPLORE_WALL_CAP_S: f64 = 2400.0;

/// Plans sampled per stage-count space during exploration.
const EXPLORE_SAMPLE_CAP: usize = 192;

/// A plan a job actually runs with.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Seconds per iteration (measured).
    pub iter_time_s: f64,
    /// Samples per second (measured).
    pub throughput_sps: f64,
    /// Wall-clock the job spends acquiring this plan before training
    /// (exploration or tuning), seconds.
    pub acquire_wall_s: f64,
    /// Compact plan label for logs.
    pub plan_label: String,
}

/// Arena's scheduling-time view of a job's best Cell on some resources.
#[derive(Debug, Clone)]
pub struct CellChoice {
    /// Stage count of the winning Cell.
    pub stages: usize,
    /// Estimated seconds per iteration.
    pub iter_time_s: f64,
    /// Estimated samples per second.
    pub throughput_sps: f64,
}

impl MemSize for RunPlan {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.plan_label.len()
    }
}

impl MemSize for CellChoice {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

type Key = (String, usize, usize, usize);

/// The plan-acquisition service.
pub struct PlanService {
    gt: GroundTruth,
    estimator: CellEstimator,
    specs: Vec<NodeSpec>,
    graphs: RwLock<HashMap<String, Arc<ModelGraph>>>,
    adaptive: RwLock<BudgetedMap<Key, Option<RunPlan>>>,
    dp: RwLock<BudgetedMap<Key, Option<f64>>>,
    pure_dp: RwLock<BudgetedMap<Key, Option<f64>>>,
    cells: RwLock<BudgetedMap<Key, Option<CellChoice>>>,
    arena_runs: RwLock<BudgetedMap<Key, Option<RunPlan>>>,
    ideal: RwLock<BudgetedMap<(String, usize, usize), f64>>,
}

impl std::fmt::Debug for PlanService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanService")
            .field("pools", &self.specs.len())
            .finish()
    }
}

impl PlanService {
    /// Creates a service for `cluster` with the given cost constants.
    ///
    /// Honours `ARENA_MEM_BUDGET_BYTES` at construction, so every entry
    /// point — `repro`, the daemon, the benches — runs budgeted under
    /// the same operator knob. A later [`Self::set_mem_budget`] call
    /// overrides it.
    #[must_use]
    pub fn new(cluster: &Cluster, params: CostParams, seed: u64) -> Self {
        let specs = cluster.pool_ids().map(|id| cluster.spec(id)).collect();
        let service = PlanService {
            gt: GroundTruth::new(params.clone(), seed),
            estimator: CellEstimator::new(params, seed),
            specs,
            graphs: RwLock::new(HashMap::new()),
            adaptive: RwLock::new(BudgetedMap::new(None)),
            dp: RwLock::new(BudgetedMap::new(None)),
            pure_dp: RwLock::new(BudgetedMap::new(None)),
            cells: RwLock::new(BudgetedMap::new(None)),
            arena_runs: RwLock::new(BudgetedMap::new(None)),
            ideal: RwLock::new(BudgetedMap::new(None)),
        };
        service.apply_env_budget();
        service
    }

    /// Applies a total byte budget to the plan database (split evenly
    /// across its six memo maps), sweeping oldest-first immediately;
    /// `None` lifts it. The operator-graph cache is exempt: it is
    /// bounded by the model zoo, not the trace. Evicted entries
    /// recompute deterministically on the next lookup, so scheduling
    /// output is unchanged — only wall-clock and hit rates move.
    pub fn set_mem_budget(&self, total: Option<usize>) {
        let share = total.map(|t| t / 6);
        self.adaptive.write().set_budget(share);
        self.dp.write().set_budget(share);
        self.pure_dp.write().set_budget(share);
        self.cells.write().set_budget(share);
        self.arena_runs.write().set_budget(share);
        self.ideal.write().set_budget(share);
    }

    /// Applies the `ARENA_MEM_BUDGET_BYTES` environment knob, when set:
    /// half the total goes to the plan database, half to the estimator's
    /// caches. Returns the budget read, for logging. With the variable
    /// unset this is a no-op (budgets keep their current values, so a
    /// programmatic budget set earlier survives).
    pub fn apply_env_budget(&self) -> Option<usize> {
        let total = arena_runtime::mem_budget_from_env()?;
        self.set_mem_budget(Some(total / 2));
        self.estimator.set_mem_budget(Some(total / 2));
        Some(total)
    }

    /// The plan database's memory ledger (plus the unbudgeted graph
    /// cache), one [`MemSection`] per map. The estimator's own ledger is
    /// separate — see [`arena_estimator::CellEstimator::mem_report`].
    #[must_use]
    pub fn mem_report(&self) -> Vec<MemSection> {
        let graphs = self.graphs.read();
        let graph_bytes: usize = graphs
            .values()
            .map(|g| {
                std::mem::size_of::<ModelGraph>()
                    + g.name.len()
                    + g.ops.len() * g.ops.first().map_or(0, std::mem::size_of_val)
            })
            .sum();
        let mut out = vec![MemSection::unbudgeted(
            "plans.graphs",
            graph_bytes,
            graphs.len(),
        )];
        drop(graphs);
        out.push(self.adaptive.read().section("plans.adaptive"));
        out.push(self.dp.read().section("plans.dp"));
        out.push(self.pure_dp.read().section("plans.pure_dp"));
        out.push(self.cells.read().section("plans.cells"));
        out.push(self.arena_runs.read().section("plans.arena_runs"));
        out.push(self.ideal.read().section("plans.ideal"));
        out
    }

    /// Accounted plan-database bytes (excludes the graph cache).
    #[must_use]
    pub fn mem_bytes_total(&self) -> usize {
        self.adaptive.read().bytes()
            + self.dp.read().bytes()
            + self.pure_dp.read().bytes()
            + self.cells.read().bytes()
            + self.arena_runs.read().bytes()
            + self.ideal.read().bytes()
    }

    /// The ground truth backing this service.
    #[must_use]
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.gt
    }

    /// The Cell estimator backing this service.
    #[must_use]
    pub fn estimator(&self) -> &CellEstimator {
        &self.estimator
    }

    /// A snapshot of the estimator's cache hit/miss counters.
    #[must_use]
    pub fn estimator_stats(&self) -> arena_estimator::CacheStatsSnapshot {
        self.estimator.stats().snapshot()
    }

    /// Drops every memoised Cell choice, forcing the next
    /// [`PlanService::cell_choice`] per key back through the estimator.
    /// The estimator's own caches are untouched, so this isolates *their*
    /// hit rate in tests without changing any returned value.
    pub fn clear_cell_choice_cache(&self) {
        self.cells.write().clear();
    }

    /// Number of pools the service knows.
    #[must_use]
    pub fn num_pools(&self) -> usize {
        self.specs.len()
    }

    /// The hardware target of a pool (assuming packed allocations).
    #[must_use]
    pub fn hw(&self, pool: GpuTypeId) -> HwTarget {
        HwTarget::new(self.specs[pool.0])
    }

    /// The (cached) operator graph of a model configuration.
    #[must_use]
    pub fn graph(&self, model: &ModelConfig) -> Arc<ModelGraph> {
        let key = model.name();
        if let Some(g) = self.graphs.read().get(&key) {
            return g.clone();
        }
        let built = Arc::new(model.build());
        self.graphs.write().insert(key, built.clone());
        built
    }

    fn key(model: &ModelConfig, gpus: usize, pool: GpuTypeId) -> Key {
        (model.name(), model.global_batch, gpus, pool.0)
    }

    /// Power-of-two stage counts worth trying for `gpus` GPUs.
    fn stage_counts(graph: &ModelGraph, gpus: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut s = 1;
        while s <= gpus && s <= graph.len() {
            out.push(s);
            s *= 2;
        }
        out
    }

    /// Full adaptive-parallelism exploration: the best plan over every
    /// stage count and `(dp, tp)` combination, plus the exploration
    /// wall-clock. This is what a baseline's job does at every (re)start.
    #[must_use]
    pub fn adaptive_run(
        &self,
        model: &ModelConfig,
        gpus: usize,
        pool: GpuTypeId,
    ) -> Option<RunPlan> {
        let key = Self::key(model, gpus, pool);
        if let Some(r) = self.adaptive.read().get(&key) {
            return r.clone();
        }
        let graph = self.graph(model);
        let hw = self.hw(pool);
        let p = self.gt.params();
        let mut wall = 0.0;
        let mut best: Option<(PipelinePlan, f64)> = None;
        for stages in Self::stage_counts(&graph, gpus) {
            let Some(cell) = Cell::new(&graph, gpus, stages) else {
                continue;
            };
            let space = PlanSpace::new(cell.partition);
            for plan in space.sample(EXPLORE_SAMPLE_CAP) {
                match self.gt.measure(&graph, model.global_batch, &plan, &hw) {
                    Ok(perf) => {
                        wall +=
                            p.direct_profile_setup_s + p.direct_profile_iters * perf.iter_time_s;
                        if best.as_ref().is_none_or(|&(_, t)| perf.iter_time_s < t) {
                            best = Some((plan, perf.iter_time_s));
                        }
                    }
                    Err(_) => wall += p.direct_profile_setup_s,
                }
            }
        }
        let result = best.map(|(plan, iter_time_s)| RunPlan {
            iter_time_s,
            throughput_sps: model.global_batch as f64 / iter_time_s,
            acquire_wall_s: wall.min(EXPLORE_WALL_CAP_S),
            plan_label: plan.short_label(),
        });
        self.adaptive.write().insert(key, result.clone());
        result
    }

    /// The best *data-parallel-only* throughput (samples/s) of a job on
    /// `gpus` GPUs of `pool` — the only number baselines may schedule on.
    ///
    /// Stages are allowed (DP+PP), tensor parallelism is not; memory
    /// requirements are therefore those of pure data parallelism.
    #[must_use]
    pub fn dp_profile(&self, model: &ModelConfig, gpus: usize, pool: GpuTypeId) -> Option<f64> {
        let key = Self::key(model, gpus, pool);
        if let Some(r) = self.dp.read().get(&key) {
            return *r;
        }
        let graph = self.graph(model);
        let hw = self.hw(pool);
        let mut best: Option<f64> = None;
        for stages in Self::stage_counts(&graph, gpus) {
            let Some(cell) = Cell::new(&graph, gpus, stages) else {
                continue;
            };
            let plan = PipelinePlan {
                stages: cell
                    .partition
                    .ranges
                    .iter()
                    .zip(&cell.partition.gpus)
                    .map(|(r, &g)| StageAssignment {
                        op_range: r.clone(),
                        plan: StagePlan::dp_only(g),
                    })
                    .collect(),
            };
            if let Ok(perf) = self.gt.measure(&graph, model.global_batch, &plan, &hw) {
                if best.is_none_or(|b| perf.throughput_sps > b) {
                    best = Some(perf.throughput_sps);
                }
            }
        }
        self.dp.write().insert(key, best);
        best
    }

    /// Throughput of the *pure* data-parallel plan (one stage, `gpus`
    /// replicas) — what a serverless-DP system like ElasticFlow profiles.
    /// Every replica holds the full optimizer state, so this is the most
    /// memory-hungry plan: large models are infeasible at any width, the
    /// paper's "overestimates the minimum required share" effect (§8.3).
    #[must_use]
    pub fn pure_dp_profile(
        &self,
        model: &ModelConfig,
        gpus: usize,
        pool: GpuTypeId,
    ) -> Option<f64> {
        let key = Self::key(model, gpus, pool);
        if let Some(r) = self.pure_dp.read().get(&key) {
            return *r;
        }
        let graph = self.graph(model);
        let hw = self.hw(pool);
        let plan = PipelinePlan {
            stages: vec![StageAssignment {
                op_range: 0..graph.len(),
                plan: StagePlan::dp_only(gpus),
            }],
        };
        // Plain DDP does not gradient-accumulate: profile at the default
        // micro-batch count only.
        let best = self
            .gt
            .measure_at(&graph, model.global_batch, &plan, &hw, plan.microbatches())
            .ok()
            .map(|perf| perf.throughput_sps);
        self.pure_dp.write().insert(key, best);
        best
    }

    /// Arena's scheduling-time estimate: the best Cell (over stage counts)
    /// for `gpus` GPUs of `pool`, priced by the agile estimator.
    ///
    /// The whole candidate ladder is priced in one [`estimate_batch`]
    /// call (shared comm tables, shared scratch arena), and the winner
    /// picked by [`best_estimate`] — same strict-`>` first-wins tie
    /// rule as the old per-cell loop, with NaN throughputs never
    /// selectable.
    #[must_use]
    pub fn cell_choice(
        &self,
        model: &ModelConfig,
        gpus: usize,
        pool: GpuTypeId,
    ) -> Option<CellChoice> {
        let key = Self::key(model, gpus, pool);
        if let Some(r) = self.cells.read().get(&key) {
            return r.clone();
        }
        let graph = self.graph(model);
        let hw = self.hw(pool);
        let cells = Cell::generate(&graph, gpus);
        let estimates = self
            .estimator
            .estimate_batch(&graph, model.global_batch, &cells, &hw);
        let best = best_estimate(&estimates).map(|i| {
            let e = estimates[i].as_ref().expect("winning index is Some");
            CellChoice {
                stages: cells[i].num_stages,
                iter_time_s: e.iter_time_s,
                throughput_sps: e.throughput_sps,
            }
        });
        self.cells.write().insert(key, best.clone());
        best
    }

    /// Cache-probe variant of [`PlanService::cell_choice`]: returns the
    /// memoised choice if present, without computing anything on a miss.
    /// The decision loop uses this to split a candidate grid into warm
    /// entries (read inline) and cold entries (fanned out in chunks).
    #[must_use]
    pub fn cell_choice_cached(
        &self,
        model: &ModelConfig,
        gpus: usize,
        pool: GpuTypeId,
    ) -> Option<Option<CellChoice>> {
        let key = Self::key(model, gpus, pool);
        self.cells.read().get(&key).cloned()
    }

    /// Arena's run path: take the chosen Cell, tune it with the pruned
    /// search, and return the measured plan plus the tuning wall-clock.
    #[must_use]
    pub fn arena_run(&self, model: &ModelConfig, gpus: usize, pool: GpuTypeId) -> Option<RunPlan> {
        let key = Self::key(model, gpus, pool);
        if let Some(r) = self.arena_runs.read().get(&key) {
            return r.clone();
        }
        let result = self.arena_run_uncached(model, gpus, pool);
        self.arena_runs.write().insert(key, result.clone());
        result
    }

    fn arena_run_uncached(
        &self,
        model: &ModelConfig,
        gpus: usize,
        pool: GpuTypeId,
    ) -> Option<RunPlan> {
        let choice = self.cell_choice(model, gpus, pool)?;
        let graph = self.graph(model);
        let hw = self.hw(pool);
        let cell = Cell::new(&graph, gpus, choice.stages)?;
        let estimate: CellEstimate =
            self.estimator
                .estimate(&graph, model.global_batch, &cell, &hw)?;
        let space = arena_tuner::pruned_space(&cell, &estimate.favors);
        let before_wall = self.gt.meter().wall_seconds();
        let tuned = tune_in_space(
            &self.gt,
            &graph,
            model.global_batch,
            &space,
            &hw,
            arena_tuner::DEFAULT_TUNE_CAP,
        )?;
        let tune_wall = self.gt.meter().wall_seconds() - before_wall;
        Some(RunPlan {
            iter_time_s: tuned.perf.iter_time_s,
            throughput_sps: tuned.perf.throughput_sps,
            acquire_wall_s: tune_wall.min(EXPLORE_WALL_CAP_S),
            plan_label: tuned.plan.short_label(),
        })
    }

    /// One-time profiling wall-clock Arena pays when a job arrives: two
    /// ~30 s single-GPU profiles per Cell, three GPU-count variants,
    /// `log N_G` stage counts, with per-GPU-type profiling in parallel
    /// (§6.1/§8.2). Bounded by the paper's 30-minute guarantee.
    #[must_use]
    pub fn arena_profile_wall(&self, requested_gpus: usize) -> f64 {
        let log_ng = (requested_gpus.max(2) as f64).log2().ceil();
        (3.0 * log_ng * 60.0).min(1800.0)
    }

    /// A job's ideal throughput: the best adaptive throughput on its
    /// requested GPU count across all pools. Used to normalise cluster
    /// throughput across heterogeneous model families.
    #[must_use]
    pub fn ideal_sps(&self, spec: &JobSpec) -> f64 {
        let key = (
            spec.model.name(),
            spec.model.global_batch,
            spec.requested_gpus,
        );
        if let Some(&v) = self.ideal.read().get(&key) {
            return v;
        }
        let mut best = 0.0_f64;
        for pool in 0..self.specs.len() {
            for gpus in [spec.requested_gpus, spec.requested_gpus * 2] {
                if let Some(r) = self.adaptive_run(&spec.model, gpus, GpuTypeId(pool)) {
                    best = best.max(r.throughput_sps);
                }
            }
        }
        let v = if best > 0.0 { best } else { 1.0 };
        self.ideal.write().insert(key, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::presets;
    use arena_model::zoo::ModelFamily;

    /// The parallel candidate fan-out shares one `&PlanService` across
    /// worker threads.
    #[test]
    fn plan_service_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<PlanService>();
    }

    fn service() -> PlanService {
        PlanService::new(&presets::physical_testbed(), CostParams::default(), 7)
    }

    fn bert13() -> ModelConfig {
        ModelConfig::new(ModelFamily::Bert, 1.3, 256)
    }

    #[test]
    fn adaptive_beats_dp_profile() {
        let s = service();
        let m = bert13();
        // On PCIe/IB A40 nodes the adaptive plan should beat DP-only.
        let adaptive = s.adaptive_run(&m, 8, GpuTypeId(0)).unwrap();
        let dp = s.dp_profile(&m, 8, GpuTypeId(0)).unwrap();
        assert!(adaptive.throughput_sps >= dp * 0.999);
        assert!(adaptive.acquire_wall_s > 0.0);
    }

    #[test]
    fn exploration_wall_is_capped() {
        let s = service();
        let m = ModelConfig::new(ModelFamily::Moe, 2.4, 512);
        let r = s.adaptive_run(&m, 16, GpuTypeId(0)).unwrap();
        assert!(r.acquire_wall_s <= EXPLORE_WALL_CAP_S);
    }

    #[test]
    fn arena_tuning_is_cheaper_than_exploration() {
        let s = service();
        let m = bert13();
        let adaptive = s.adaptive_run(&m, 8, GpuTypeId(0)).unwrap();
        let arena = s.arena_run(&m, 8, GpuTypeId(0)).unwrap();
        assert!(
            arena.acquire_wall_s < adaptive.acquire_wall_s,
            "arena {} >= adaptive {}",
            arena.acquire_wall_s,
            adaptive.acquire_wall_s
        );
        // And the tuned plan is close to the adaptive optimum.
        let ratio = arena.throughput_sps / adaptive.throughput_sps;
        assert!(ratio > 0.85, "tuned plan only {ratio} of optimal");
    }

    #[test]
    fn dp_profile_overestimates_memory_needs() {
        // BERT-6.7B on 4 x A10 (24 GiB): feasible with TP via adaptive
        // plans, infeasible under DP-only profiling.
        let s = service();
        let m = ModelConfig::new(ModelFamily::Bert, 6.7, 128);
        let pool_a10 = GpuTypeId(1);
        assert!(s.dp_profile(&m, 4, pool_a10).is_none());
        assert!(s.adaptive_run(&m, 8, pool_a10).is_some());
    }

    #[test]
    fn cell_choice_close_to_adaptive_optimum() {
        let s = service();
        let m = bert13();
        let choice = s.cell_choice(&m, 8, GpuTypeId(0)).unwrap();
        let adaptive = s.adaptive_run(&m, 8, GpuTypeId(0)).unwrap();
        let ratio = choice.throughput_sps / adaptive.throughput_sps;
        assert!(ratio > 0.7 && ratio < 1.3, "estimate off by {ratio}");
    }

    #[test]
    fn results_are_cached() {
        let s = service();
        let m = bert13();
        let a = s.adaptive_run(&m, 4, GpuTypeId(0)).unwrap();
        let b = s.adaptive_run(&m, 4, GpuTypeId(0)).unwrap();
        assert_eq!(a.iter_time_s, b.iter_time_s);
        assert_eq!(a.plan_label, b.plan_label);
    }

    #[test]
    fn ideal_sps_positive_and_pool_aware() {
        let s = service();
        let spec = arena_trace::JobSpec {
            id: 0,
            name: "t".into(),
            submit_s: 0.0,
            model: bert13(),
            iterations: 10,
            requested_gpus: 4,
            requested_pool: 1,
            deadline_s: None,
        };
        assert!(s.ideal_sps(&spec) > 0.0);
    }

    #[test]
    fn profile_wall_bounded_by_paper_guarantee() {
        let s = service();
        for ng in [1, 2, 8, 64] {
            let w = s.arena_profile_wall(ng);
            assert!(w > 0.0 && w <= 1800.0, "wall {w} for NG={ng}");
        }
    }
}
