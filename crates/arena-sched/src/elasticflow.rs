//! ElasticFlow-style elastic baseline.

use arena_cluster::GpuTypeId;
use arena_obs::Decision;

use crate::policy::{Action, JobView, PlanMode, Policy, SchedEvent, SchedView};

/// Max-heap entry for the marginal-gain distribution loop.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    gain: f64,
    idx: usize,
    at_k: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.idx == other.idx && self.at_k == other.at_k
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.idx.cmp(&other.idx))
            .then(self.at_k.cmp(&other.at_k))
    }
}

/// ElasticFlow: elastic power-of-two GPU-count scaling driven by
/// data-parallel profiles, designed for a homogeneous cluster (jobs stay
/// on their requested pool).
///
/// * The primary (deadline) mode admits a job only at the smallest GPU
///   count that still meets its deadline, and rejects hopeless jobs.
/// * The **-LS** mode (loosened deadlines, §8.3) is throughput-oriented:
///   every job is admitted at its DP-feasible minimum share and spare
///   GPUs are dealt out by marginal throughput gain.
///
/// Because minimum shares come from DP-only profiles — which replicate
/// the full optimizer state on every GPU — ElasticFlow systematically
/// *overestimates* large jobs' minimum requirements (§8.3).
#[derive(Debug)]
pub struct ElasticFlowPolicy {
    /// Loosened-deadline (throughput) mode: the ElasticFlow-LS baseline.
    loosened: bool,
}

impl ElasticFlowPolicy {
    /// The primary deadline-aware policy.
    #[must_use]
    pub fn deadline() -> Self {
        ElasticFlowPolicy { loosened: false }
    }

    /// The ElasticFlow-LS throughput-oriented variant.
    #[must_use]
    pub fn loosened() -> Self {
        ElasticFlowPolicy { loosened: true }
    }

    /// The throughput profile ElasticFlow schedules on: pure DP when it
    /// fits, otherwise the DP+PP profile (the job's runtime will use
    /// adaptive parallelism anyway, §8.1).
    fn profile(view: &SchedView<'_>, job: &JobView, k: usize, pool: GpuTypeId) -> Option<f64> {
        view.service
            .pure_dp_profile(&job.spec.model, k, pool)
            .or_else(|| view.service.dp_profile(&job.spec.model, k, pool))
    }

    /// Smallest power-of-two GPU count that is DP-feasible on `pool`.
    ///
    /// When no pure-DP width fits (optimizer state replicated on every
    /// GPU), ElasticFlow falls back to twice the pipeline-assisted
    /// minimum — the systematic overestimation of large jobs' minimum
    /// share the paper calls out (§8.3).
    fn min_share(view: &SchedView<'_>, job: &JobView, pool: GpuTypeId) -> Option<usize> {
        let mut k = 1;
        while k <= 64 {
            if view
                .service
                .pure_dp_profile(&job.spec.model, k, pool)
                .is_some()
            {
                return Some(k);
            }
            k *= 2;
        }
        let mut k = 1;
        while k <= 64 {
            if view.service.dp_profile(&job.spec.model, k, pool).is_some() {
                // The DP memory picture doubles the pipeline-assisted
                // minimum: every replica still holds far more state than a
                // tensor-sharded plan would (§8.3's overestimation).
                return Some((k * 2).min(64));
            }
            k *= 2;
        }
        None
    }

    /// Smallest power-of-two count meeting the job's deadline (deadline
    /// mode), given remaining iterations.
    fn min_deadline_share(
        view: &SchedView<'_>,
        job: &JobView,
        pool: GpuTypeId,
        now_s: f64,
    ) -> Option<usize> {
        let deadline = job.spec.deadline_s?;
        let mut k = Self::min_share(view, job, pool)?;
        while k <= 64 {
            if let Some(sps) = Self::profile(view, job, k, pool) {
                let finish = now_s + job.remaining_iters * job.spec.model.global_batch as f64 / sps;
                if finish <= deadline {
                    return Some(k);
                }
            }
            k *= 2;
        }
        None
    }
}

impl Policy for ElasticFlowPolicy {
    fn name(&self) -> &'static str {
        if self.loosened {
            "ElasticFlow-LS"
        } else {
            "ElasticFlow"
        }
    }

    fn plan_mode(&self) -> PlanMode {
        PlanMode::Adaptive
    }

    fn schedule(&mut self, _event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        // Rebuild the target allocation per pool from scratch: admitted
        // jobs at their minimum share, then spare GPUs by marginal gain.
        // `want[job] = (pool, gpus)`.
        let mut want: Vec<(u64, GpuTypeId, usize)> = Vec::new();
        let mut free: Vec<usize> = view.pools.iter().map(|p| p.total_gpus).collect();

        // Running jobs first (admitted already), then the queue in order.
        let all: Vec<&JobView> = view.running.iter().chain(view.queued.iter()).collect();
        for job in &all {
            let pool = GpuTypeId(job.spec.requested_pool);
            let min = if self.loosened || job.spec.deadline_s.is_none() {
                Self::min_share(view, job, pool)
            } else {
                Self::min_deadline_share(view, job, pool, view.now_s)
            };
            match min {
                Some(k) if free[pool.0] >= k => {
                    free[pool.0] -= k;
                    want.push((job.id(), pool, k));
                }
                Some(_) => {
                    // Not enough capacity now; deadline jobs that can no
                    // longer make it even at full cluster are rejected.
                    if !self.loosened {
                        if let Some(d) = job.spec.deadline_s {
                            let best = Self::profile(view, job, 64, pool);
                            let hopeless = match best {
                                Some(sps) => {
                                    view.now_s
                                        + job.remaining_iters * job.spec.model.global_batch as f64
                                            / sps
                                        > d
                                }
                                None => true,
                            };
                            if hopeless {
                                view.obs.decision(
                                    Decision::drop(job.id())
                                        .on_shard(job.home_shard())
                                        .why("deadline-hopeless"),
                                );
                                actions.push(Action::Drop { job: job.id() });
                            }
                        }
                    }
                }
                None => {
                    // DP-infeasible at any share on its pool: rejected.
                    view.obs.decision(
                        Decision::drop(job.id())
                            .on_shard(job.home_shard())
                            .why("dp-infeasible"),
                    );
                    actions.push(Action::Drop { job: job.id() });
                }
            }
        }

        // Deal out spare GPUs by marginal DP-throughput gain per GPU,
        // using a lazy max-heap: an entry is revalidated against the
        // job's current share when popped, so each doubling costs
        // O(log n) instead of a full rescan.
        let gain_of = |job: &JobView, pool: GpuTypeId, k: usize| -> Option<f64> {
            let cur = Self::profile(view, job, k, pool)?;
            let next = Self::profile(view, job, 2 * k, pool)?;
            let gain = (next - cur) / k as f64;
            (gain > 0.0).then_some(gain)
        };
        let mut heap: std::collections::BinaryHeap<HeapEntry> = want
            .iter()
            .enumerate()
            .filter_map(|(i, &(id, pool, k))| {
                let job = all.iter().find(|j| j.id() == id)?;
                gain_of(job, pool, k).map(|gain| HeapEntry {
                    gain,
                    idx: i,
                    at_k: k,
                })
            })
            .collect();
        while let Some(entry) = heap.pop() {
            let (id, pool, k_cur) = want[entry.idx];
            // Stale entry (the job grew since this was pushed).
            if entry.at_k != k_cur || k_cur >= 64 || free[pool.0] < k_cur {
                continue;
            }
            free[pool.0] -= k_cur;
            want[entry.idx].2 = 2 * k_cur;
            let job = all.iter().find(|j| j.id() == id).expect("job exists");
            if let Some(gain) = gain_of(job, pool, 2 * k_cur) {
                heap.push(HeapEntry {
                    gain,
                    idx: entry.idx,
                    at_k: 2 * k_cur,
                });
            }
        }

        // Emit the diff against current placements.
        for (id, pool, k) in want {
            let job = all.iter().find(|j| j.id() == id).expect("job exists");
            let unchanged = job
                .placement
                .is_some_and(|pl| pl.pool == pool && pl.gpus == k);
            if !unchanged {
                if view.obs.is_enabled() {
                    let mut d = Decision::place(id, pool.0, k)
                        .on_shard(job.home_shard())
                        .why("target-share");
                    if let Some(pl) = job.placement {
                        d = d.moving_from(pl.pool.0, pl.gpus);
                    }
                    if let Some(sps) = Self::profile(view, job, k, pool) {
                        d = d.with_score(sps);
                    }
                    view.obs.decision(d);
                }
                actions.push(Action::Place {
                    job: id,
                    pool,
                    gpus: k,
                    opportunistic: false,
                });
            }
        }
        actions
    }
}
