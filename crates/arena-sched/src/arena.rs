//! The Arena (Crius) Cell-based scheduler: Algorithm 1.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

use arena_cluster::{GpuTypeId, PoolStats};
use arena_obs::Decision;
use arena_runtime::WorkerPool;

pub use crate::memo::CandidateMemoStats;
use crate::memo::{CandidateMemo, JobClassKey};
use crate::policy::{Action, JobView, PlanMode, Policy, SchedEvent, SchedView, ShardQueue};

/// Which Arena variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaVariant {
    /// The full scheduler.
    Full,
    /// Ablation §8.6: no adaptivity scaling (GPU count fixed at `N_G`).
    NoAdaptivity,
    /// Ablation §8.6: no heterogeneity scaling (requested pool only).
    NoHeterogeneity,
    /// §8.5: deadline-aware Arena-DDL (strict guarantees, early drop).
    Deadline,
}

/// A candidate placement for one job, scored by estimated normalised
/// throughput.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pool: GpuTypeId,
    gpus: usize,
    /// Estimated throughput / the job's ideal throughput.
    score: f64,
    /// Estimated seconds per iteration (for deadline checks).
    iter_time_s: f64,
}

/// The Cell-based scheduler (Algorithm 1).
///
/// On every event it walks the queue in order; a job is placed on the
/// Cell with the best estimated normalised throughput that fits. When
/// nothing fits, up to `search_depth` *scaling moves* — downscaling a
/// running job within its `{N_G/2, N_G, 2N_G}` menu or moving it to
/// another pool — are applied greedily by least normalised-throughput
/// loss. Departures additionally trigger upscaling of running jobs onto
/// released resources, and opportunistic execution backfills idle GPUs
/// behind a pending large job.
/// How Arena orders its queue when picking the next job to place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOrder {
    /// Arrival order (Algorithm 1's `pend_jobs` iteration).
    Arrival,
    /// Shortest estimated remaining work first — an alternative
    /// scheduling objective (§6: "easy to adapt to other objectives").
    ShortestFirst,
}

#[derive(Debug)]
pub struct ArenaPolicy {
    variant: ArenaVariant,
    /// Maximum scaling moves per scheduling decision (§6.1, §8.7).
    pub search_depth: usize,
    /// Whether opportunistic execution backfills behind a pending job.
    pub opportunistic: bool,
    /// Queue discipline.
    pub queue_order: QueueOrder,
    /// Pool fanning Cell estimation out across the candidate grid.
    /// Results merge in grid order, so any pool size produces the same
    /// schedule; defaults to sequential unless `ARENA_WORKER_THREADS`
    /// asks for more.
    workers: WorkerPool,
    /// Ranked-candidate memo (see [`crate::memo`]); flushed whenever the
    /// per-pool free/failed/total signature moves.
    memo: RefCell<CandidateMemo>,
    use_memo: bool,
    /// Optional bound on each ranked candidate list (`None` = full grid).
    /// Lists are truncated to the top-`K` *after* ranking, so only the
    /// lowest-scored tail — the placements Arena would try last — is
    /// dropped; both the lazy path and the shard prefetch apply the same
    /// cut, so the two paths stay bitwise identical.
    candidate_cap: Option<usize>,
    /// How many candidate lists the cap actually truncated (provenance;
    /// stays 0 while the cap never binds).
    capped_lists: std::cell::Cell<u64>,
}

impl ArenaPolicy {
    /// The full scheduler with the paper's default search depth of 3.
    #[must_use]
    pub fn new() -> Self {
        Self::with_variant(ArenaVariant::Full)
    }

    /// A specific variant with the default search depth.
    #[must_use]
    pub fn with_variant(variant: ArenaVariant) -> Self {
        ArenaPolicy {
            variant,
            search_depth: 3,
            opportunistic: true,
            queue_order: QueueOrder::Arrival,
            workers: WorkerPool::from_env_or(1),
            memo: RefCell::new(CandidateMemo::default()),
            use_memo: true,
            candidate_cap: None,
            capped_lists: std::cell::Cell::new(0),
        }
    }

    /// Sets the worker-thread count for candidate estimation (1 =
    /// sequential). The schedule is byte-identical at any count.
    #[must_use]
    pub fn with_worker_threads(self, threads: usize) -> Self {
        self.with_worker_pool(WorkerPool::new(threads))
    }

    /// Supplies the worker pool for candidate estimation.
    #[must_use]
    pub fn with_worker_pool(mut self, pool: WorkerPool) -> Self {
        self.workers = pool;
        self
    }

    /// Disables the candidate memo (every list is re-enumerated) — the
    /// sequential baseline the incremental path is benchmarked against.
    #[must_use]
    pub fn without_candidate_memo(mut self) -> Self {
        self.use_memo = false;
        self
    }

    /// Hit/miss/invalidation counters of the candidate memo.
    #[must_use]
    pub fn candidate_memo_stats(&self) -> CandidateMemoStats {
        self.memo.borrow().stats()
    }

    /// Bounds every ranked candidate list to its top-`cap` entries. The
    /// cut happens after ranking, so only the worst-scored tail goes;
    /// with the default (unbounded) the schedule is exactly the full-grid
    /// one. Each truncation is counted (see [`Self::capped_lists`]) and,
    /// when observability is on, surfaced as the
    /// `sched.candidates.capped` counter.
    #[must_use]
    pub fn with_candidate_cap(mut self, cap: usize) -> Self {
        self.candidate_cap = Some(cap.max(1));
        self
    }

    /// Bounds the candidate memo to `entries` cached classes
    /// (oldest-inserted evicted first). Off by default.
    #[must_use]
    pub fn with_memo_capacity(self, entries: usize) -> Self {
        self.memo.borrow_mut().set_cap(Some(entries));
        self
    }

    /// Ages memo entries out after `passes` revalidations without a hit.
    /// Off by default.
    #[must_use]
    pub fn with_memo_max_age(self, passes: u64) -> Self {
        self.memo.borrow_mut().set_max_age(Some(passes));
        self
    }

    /// How many candidate lists the candidate cap actually truncated.
    #[must_use]
    pub fn capped_lists(&self) -> u64 {
        self.capped_lists.get()
    }

    /// Applies the candidate cap to one ranked list, counting the
    /// truncation (and emitting the provenance counter) only when the
    /// cap actually binds.
    fn apply_candidate_cap(&self, out: &mut Vec<Candidate>, obs: &arena_obs::Obs) {
        if let Some(cap) = self.candidate_cap {
            if out.len() > cap {
                out.truncate(cap);
                self.capped_lists.set(self.capped_lists.get() + 1);
                obs.incr("sched.candidates.capped", 1);
            }
        }
    }

    /// Overrides the search depth (Fig. 21).
    #[must_use]
    pub fn with_search_depth(mut self, depth: usize) -> Self {
        self.search_depth = depth;
        self
    }

    /// Disables opportunistic execution (ablation of the §6.1 mechanism).
    #[must_use]
    pub fn without_opportunistic(mut self) -> Self {
        self.opportunistic = false;
        self
    }

    /// Switches the queue discipline.
    #[must_use]
    pub fn with_queue_order(mut self, order: QueueOrder) -> Self {
        self.queue_order = order;
        self
    }

    /// The GPU-count menu for a job (§6.1): `{N_G/2, N_G, 2N_G}`.
    fn gpu_menu(&self, requested: usize) -> Vec<usize> {
        if self.variant == ArenaVariant::NoAdaptivity {
            return vec![requested];
        }
        let mut menu = Vec::new();
        if requested > 1 {
            menu.push(requested / 2);
        }
        menu.push(requested);
        if requested < 64 {
            menu.push(requested * 2);
        }
        menu
    }

    /// Pools a job may use.
    fn pool_menu(&self, view: &SchedView<'_>, job: &JobView) -> Vec<GpuTypeId> {
        if self.variant == ArenaVariant::NoHeterogeneity {
            vec![GpuTypeId(job.spec.requested_pool)]
        } else {
            (0..view.pools.len()).map(GpuTypeId).collect()
        }
    }

    /// All estimated candidates for a job, best score first.
    ///
    /// When part of the cluster is down, placement becomes
    /// failure-aware: a candidate's score is discounted by its pool's
    /// failed-capacity fraction (a degraded pool both has less headroom
    /// for the job's later upscales and signals correlated-failure risk),
    /// and exact ties prefer the pool with more spare healthy capacity.
    /// With zero failed capacity the ranking is exactly the fault-free
    /// one, so fault-free schedules are unchanged.
    fn candidates(&self, view: &SchedView<'_>, job: &JobView) -> Vec<Candidate> {
        let key = JobClassKey::of(&job.spec);
        if self.use_memo {
            self.memo.borrow_mut().begin_pass(view.pools);
            if let Some(cached) = self.memo.borrow_mut().get(&key) {
                return cached.to_vec();
            }
        }
        let grid = self.grid(view, job);
        let mut out = estimate_and_rank(&grid, &job.spec, view.pools, view.service, &self.workers);
        self.apply_candidate_cap(&mut out, &view.obs);
        if self.use_memo {
            self.memo.borrow_mut().put(key, Arc::new(out.clone()));
        }
        out
    }

    /// The estimation grid for a job: its pool menu crossed with its GPU
    /// menu, in enumeration order.
    fn grid(&self, view: &SchedView<'_>, job: &JobView) -> Vec<(GpuTypeId, usize)> {
        self.pool_menu(view, job)
            .into_iter()
            .flat_map(|pool| {
                self.gpu_menu(job.spec.requested_gpus)
                    .into_iter()
                    .map(move |gpus| (pool, gpus))
            })
            .collect()
    }

    /// Whether a candidate finishes the job before its deadline.
    fn meets_deadline(view: &SchedView<'_>, job: &JobView, cand: &Candidate) -> bool {
        match job.spec.deadline_s {
            None => true,
            Some(d) => view.now_s + job.remaining_iters * cand.iter_time_s <= d,
        }
    }
}

impl Default for ArenaPolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Remaining run time of a job at its current throughput, seconds.
fn remaining_s(job: &JobView) -> f64 {
    match job.placement {
        Some(pl) if pl.throughput_sps > 0.0 => {
            job.remaining_iters * job.spec.model.global_batch as f64 / pl.throughput_sps
        }
        _ => f64::INFINITY,
    }
}

/// Jobs closer to completion than this are never rescaled or migrated:
/// the restart would cost more than any gain amortises.
const MIN_REMAINING_FOR_MOVE_S: f64 = 900.0;

/// Flat normalised-throughput surcharge per scaling move, accounting for
/// the victim's restart dead time; deep move chains must buy real
/// throughput to fire.
const MOVE_PENALTY: f64 = 0.15;

/// Score discount per unit failed-capacity fraction of a pool; only
/// active while some capacity is actually down.
const FAILED_POOL_PENALTY: f64 = 0.25;

/// Minimum number of missing candidate classes before the shard
/// prefetch fans estimation out to the worker pool; smaller batches are
/// estimated inline, below the cost of spawning the workers.
const PREFETCH_SPAWN_CUTOFF: usize = 8;

/// Grid entries claimed per worker task when warming cold cell choices:
/// each entry is one `estimate_batch` over a few-cell ladder (~tens of
/// microseconds), so chunking amortises the spawn/queue/merge overhead
/// that made per-entry fan-out slower than the sequential loop.
const ESTIMATE_CHUNK: usize = 4;

/// Descending-sort key: NaN (an upstream estimation bug, not a valid
/// score) ranks *below* every real score instead of panicking the
/// comparator or floating to the top.
fn score_key(s: f64) -> f64 {
    if s.is_nan() {
        f64::NEG_INFINITY
    } else {
        s
    }
}

/// Estimates and ranks one precomputed candidate grid — the shared core
/// of the lazy lookup and the sharded prefetch. A pure function of the
/// grid, the job's class, the pool state, and the estimation service, so
/// both callers compute bitwise the same list. `workers` fans the
/// estimation grid out; the result vector keeps grid order, so ranking
/// sees the same input (and stable-sort tie order) at every pool size.
fn estimate_and_rank(
    grid: &[(GpuTypeId, usize)],
    spec: &arena_trace::JobSpec,
    pools: &[PoolStats],
    service: &crate::service::PlanService,
    workers: &WorkerPool,
) -> Vec<Candidate> {
    let ideal = service.ideal_sps(spec);
    let model = &spec.model;
    // Warm-then-read: fan out only the entries whose cell choice is not
    // yet memoised, in chunks, then read every entry inline in grid
    // order. Every cached value is a pure function of its key, so
    // warming in any thread order (or losing a warmed entry to
    // eviction and recomputing it) yields bitwise the same reads.
    let cold: Vec<(GpuTypeId, usize)> = grid
        .iter()
        .filter(|&&(pool, gpus)| service.cell_choice_cached(model, gpus, pool).is_none())
        .copied()
        .collect();
    if cold.len() > ESTIMATE_CHUNK {
        workers.map_chunked(&cold, ESTIMATE_CHUNK, |_, &(pool, gpus)| {
            let _ = service.cell_choice(model, gpus, pool);
        });
    }
    let mut out: Vec<Candidate> = grid
        .iter()
        .filter_map(|&(pool, gpus)| {
            service.cell_choice(model, gpus, pool).map(|c| Candidate {
                pool,
                gpus,
                score: c.throughput_sps / ideal,
                iter_time_s: c.iter_time_s,
            })
        })
        .collect();
    rank_candidates(&mut out, pools);
    out
}

/// Ranks candidates best-score-first against the given pool state.
///
/// When part of the cluster is down the ranking is failure-aware: a
/// candidate's score is discounted by its pool's failed-capacity
/// fraction, and exact ties prefer the pool with more spare healthy
/// capacity. With zero failed capacity the ranking is exactly the
/// fault-free one. The sort is stable, so equal-scored candidates keep
/// enumeration (grid) order.
fn rank_candidates(out: &mut [Candidate], pools: &[PoolStats]) {
    let pool_stat = |id: GpuTypeId| pools.iter().find(|p| p.id == id);
    let degraded = pools.iter().any(|p| p.failed_gpus > 0);
    if degraded {
        let adjusted = |c: &Candidate| {
            let frac = pool_stat(c.pool).map_or(0.0, |p| {
                p.failed_gpus as f64 / (p.total_gpus as f64).max(1.0)
            });
            c.score * (1.0 - FAILED_POOL_PENALTY * frac)
        };
        out.sort_by(|a, b| {
            score_key(adjusted(b))
                .total_cmp(&score_key(adjusted(a)))
                .then_with(|| {
                    let spare = |c: &Candidate| pool_stat(c.pool).map_or(0, |p| p.free_gpus);
                    spare(b).cmp(&spare(a))
                })
        });
    } else {
        out.sort_by(|a, b| score_key(b.score).total_cmp(&score_key(a.score)));
    }
}

/// An action staged during the transactional pass, with the provenance it
/// will be recorded under if the transaction commits.
type Staged = (Action, &'static str, Option<f64>);

/// Records the provenance of one emitted action. Placements of jobs that
/// were active when the pass started carry their old `(pool, gpus)` so
/// rescales and migrations read as moves in the decision log.
fn record(view: &SchedView<'_>, action: &Action, reason: &'static str, score: Option<f64>) {
    let obs = &view.obs;
    if !obs.is_enabled() {
        return;
    }
    let job_id = match *action {
        Action::Place { job, .. } | Action::Evict { job } | Action::Drop { job } => job,
    };
    let mut d = match *action {
        Action::Place {
            job,
            pool,
            gpus,
            opportunistic,
        } => {
            let mut d = Decision::place(job, pool.0, gpus);
            let prev = view
                .running
                .iter()
                .find(|j| j.id() == job)
                .and_then(|j| j.placement);
            if let Some(pl) = prev {
                d = d.moving_from(pl.pool.0, pl.gpus);
            }
            if opportunistic {
                d.opportunistic()
            } else {
                d
            }
        }
        Action::Evict { job } => Decision::evict(job),
        Action::Drop { job } => Decision::drop(job),
    };
    if let Some(home) = view
        .queued
        .iter()
        .chain(view.running.iter())
        .find(|j| j.id() == job_id)
        .map(JobView::home_shard)
    {
        d = d.on_shard(home);
    }
    d = d.why(reason);
    if let Some(s) = score {
        d = d.with_score(s);
    }
    obs.decision(d);
}

/// Mutable virtual cluster state during one scheduling pass.
#[derive(Clone)]
struct Virtual {
    free: Vec<usize>,
    /// `(job, pool, gpus, opportunistic)` of every virtually running job.
    placed: Vec<(u64, GpuTypeId, usize, bool)>,
}

impl Virtual {
    fn from_view(view: &SchedView<'_>) -> Self {
        Virtual {
            free: view.pools.iter().map(|p| p.free_gpus).collect(),
            placed: view
                .running
                .iter()
                .filter_map(|j| {
                    j.placement
                        .map(|pl| (j.id(), pl.pool, pl.gpus, pl.opportunistic))
                })
                .collect(),
        }
    }

    fn place(&mut self, job: u64, pool: GpuTypeId, gpus: usize, opportunistic: bool) {
        self.remove(job);
        self.free[pool.0] -= gpus;
        self.placed.push((job, pool, gpus, opportunistic));
    }

    fn remove(&mut self, job: u64) {
        if let Some(i) = self.placed.iter().position(|&(j, ..)| j == job) {
            let (_, pool, gpus, _) = self.placed.remove(i);
            self.free[pool.0] += gpus;
        }
    }
}

impl ArenaPolicy {
    /// Tries to place `job`, applying up to `search_depth` scaling moves.
    /// Returns true if placed. Appends emitted actions.
    #[allow(clippy::too_many_lines)]
    fn cell_based_sched(
        &self,
        view: &SchedView<'_>,
        job: &JobView,
        virt: &mut Virtual,
        actions: &mut Vec<Action>,
    ) -> bool {
        let mut cands = self.candidates(view, job);
        if self.variant == ArenaVariant::Deadline {
            cands.retain(|c| Self::meets_deadline(view, job, c));
        }
        if cands.is_empty() {
            return false;
        }

        // Moves are only worth their restarts while the displaced
        // throughput stays below what the incoming job contributes, and
        // they are *transactional*: victims are only really rescaled if
        // the incoming job ends up placed (the paper applies scheduling
        // choices virtually and commits at the end, Algorithm 1 line 19).
        let gain_budget = cands.first().map_or(0.0, |c| c.score) * 0.8;
        let mut loss_spent = 0.0;
        let mut trial = virt.clone();
        let mut staged: Vec<Staged> = Vec::new();
        for depth in 0..=self.search_depth {
            if let Some(c) = cands.iter().find(|c| trial.free[c.pool.0] >= c.gpus) {
                trial.place(job.id(), c.pool, c.gpus, false);
                staged.push((
                    Action::Place {
                        job: job.id(),
                        pool: c.pool,
                        gpus: c.gpus,
                        opportunistic: false,
                    },
                    "best-cell",
                    Some(c.score),
                ));
                *virt = trial;
                for (a, reason, score) in staged {
                    record(view, &a, reason, score);
                    actions.push(a);
                }
                return true;
            }
            if depth == self.search_depth {
                break;
            }
            match self.apply_best_scaling_move(
                view,
                &cands,
                &mut trial,
                &mut staged,
                gain_budget - loss_spent,
            ) {
                Some(loss) => loss_spent += loss + MOVE_PENALTY,
                None => break,
            }
        }
        false
    }

    /// Greedily applies the scaling move (downscale or pool-move of a
    /// running job) that frees capacity for one of `cands` at the least
    /// normalised-throughput loss, provided that loss fits in the
    /// remaining `loss_budget`. Returns the loss, or `None` if no
    /// worthwhile move exists.
    fn apply_best_scaling_move(
        &self,
        view: &SchedView<'_>,
        cands: &[Candidate],
        virt: &mut Virtual,
        staged: &mut Vec<Staged>,
        loss_budget: f64,
    ) -> Option<f64> {
        // Pools where extra capacity would let a candidate fit.
        let useful: Vec<usize> = cands
            .iter()
            .filter(|c| virt.free[c.pool.0] < c.gpus)
            .map(|c| c.pool.0)
            .collect();
        if useful.is_empty() {
            return None;
        }

        // Move options: (loss, action-parameters).
        struct Move {
            loss: f64,
            job: u64,
            pool: GpuTypeId,
            gpus: usize,
            evict: bool,
            reason: &'static str,
        }
        let mut best: Option<Move> = None;
        for &(id, pool, gpus, opportunistic) in &virt.placed {
            if !useful.contains(&pool.0) {
                continue;
            }
            let Some(jv) = view.running.iter().find(|j| j.id() == id) else {
                continue;
            };
            // Do not shuffle jobs that are about to finish.
            if !opportunistic && remaining_s(jv) < MIN_REMAINING_FOR_MOVE_S {
                continue;
            }
            let ideal = view.service.ideal_sps(&jv.spec);
            let cur = view
                .service
                .cell_choice(&jv.spec.model, gpus, pool)
                .map_or(0.0, |c| c.throughput_sps / ideal);

            // Opportunistic jobs are simply evicted (their loss is their
            // whole contribution, but they were running on borrowed time).
            if opportunistic {
                let m = Move {
                    loss: cur * 0.5, // Prefer reclaiming opportunistic GPUs.
                    job: id,
                    pool,
                    gpus: 0,
                    evict: true,
                    reason: "reclaim-opportunistic",
                };
                if best.as_ref().is_none_or(|b| m.loss < b.loss) {
                    best = Some(m);
                }
                continue;
            }

            // Downscale within the job's own menu.
            if self.variant != ArenaVariant::NoAdaptivity && gpus > 1 {
                let smaller = gpus / 2;
                if smaller * 2 >= jv.spec.requested_gpus {
                    if let Some(c) = view.service.cell_choice(&jv.spec.model, smaller, pool) {
                        let next = c.throughput_sps / ideal;
                        let ddl_ok = self.variant != ArenaVariant::Deadline
                            || jv.spec.deadline_s.is_none_or(|d| {
                                view.now_s + jv.remaining_iters * c.iter_time_s <= d
                            });
                        if ddl_ok {
                            let m = Move {
                                loss: (cur - next).max(0.0),
                                job: id,
                                pool,
                                gpus: smaller,
                                evict: false,
                                reason: "scaling-downscale",
                            };
                            if best.as_ref().is_none_or(|b| m.loss < b.loss) {
                                best = Some(m);
                            }
                        }
                    }
                }
            }

            // Move to another pool at the same size.
            if self.variant != ArenaVariant::NoHeterogeneity {
                for q in 0..virt.free.len() {
                    if q == pool.0 || virt.free[q] < gpus {
                        continue;
                    }
                    if let Some(c) = view.service.cell_choice(&jv.spec.model, gpus, GpuTypeId(q)) {
                        let next = c.throughput_sps / ideal;
                        let m = Move {
                            loss: (cur - next).max(0.0),
                            job: id,
                            pool: GpuTypeId(q),
                            gpus,
                            evict: false,
                            reason: "scaling-pool-move",
                        };
                        if best.as_ref().is_none_or(|b| m.loss < b.loss) {
                            best = Some(m);
                        }
                    }
                }
            }
        }

        match best {
            Some(m) if m.loss + MOVE_PENALTY <= loss_budget => {
                if m.evict {
                    virt.remove(m.job);
                    staged.push((Action::Evict { job: m.job }, m.reason, Some(m.loss)));
                } else {
                    virt.place(m.job, m.pool, m.gpus, false);
                    staged.push((
                        Action::Place {
                            job: m.job,
                            pool: m.pool,
                            gpus: m.gpus,
                            opportunistic: false,
                        },
                        m.reason,
                        Some(m.loss),
                    ));
                }
                Some(m.loss)
            }
            _ => None,
        }
    }

    /// Extra scheduling on departures (Algorithm 1 line 11-12): grow
    /// running jobs onto released resources by best marginal gain.
    fn upscale_running(&self, view: &SchedView<'_>, virt: &mut Virtual, actions: &mut Vec<Action>) {
        if self.variant == ArenaVariant::NoAdaptivity {
            return;
        }
        // One upscale per departure: growth is cheap to defer (the next
        // departure retries) and each upscale costs the job a restart.
        for _ in 0..1 {
            let mut best: Option<(u64, GpuTypeId, usize, f64)> = None;
            for &(id, pool, gpus, opportunistic) in &virt.placed {
                if opportunistic || gpus >= 64 || virt.free[pool.0] < gpus {
                    continue;
                }
                let Some(jv) = view.running.iter().find(|j| j.id() == id) else {
                    continue;
                };
                if gpus * 2 > jv.spec.requested_gpus * 2 {
                    continue; // Stay within the {N/2, N, 2N} menu.
                }
                // An upscale restart only pays off on long-remaining jobs.
                if remaining_s(jv) < 2.0 * MIN_REMAINING_FOR_MOVE_S {
                    continue;
                }
                let ideal = view.service.ideal_sps(&jv.spec);
                let cur = view
                    .service
                    .cell_choice(&jv.spec.model, gpus, pool)
                    .map_or(0.0, |c| c.throughput_sps / ideal);
                if let Some(c) = view.service.cell_choice(&jv.spec.model, gpus * 2, pool) {
                    let gain = c.throughput_sps / ideal - cur;
                    if gain > 0.1 && best.is_none_or(|(.., g)| gain > g) {
                        best = Some((id, pool, gpus * 2, gain));
                    }
                }
            }
            match best {
                Some((id, pool, gpus, gain)) => {
                    virt.place(id, pool, gpus, false);
                    let a = Action::Place {
                        job: id,
                        pool,
                        gpus,
                        opportunistic: false,
                    };
                    record(view, &a, "departure-upscale", Some(gain));
                    actions.push(a);
                }
                None => break,
            }
        }
    }
}

impl Policy for ArenaPolicy {
    fn name(&self) -> &'static str {
        match self.variant {
            ArenaVariant::Full => "Arena",
            ArenaVariant::NoAdaptivity => "Arena-NA",
            ArenaVariant::NoHeterogeneity => "Arena-NH",
            ArenaVariant::Deadline => "Arena-DDL",
        }
    }

    fn plan_mode(&self) -> PlanMode {
        PlanMode::Cell
    }

    fn schedule(&mut self, event: SchedEvent, view: &SchedView<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut virt = Virtual::from_view(view);

        // Queue discipline: arrival order, or shortest estimated
        // remaining work first.
        let mut queued: Vec<&JobView> = view.queued.iter().collect();
        if self.queue_order == QueueOrder::ShortestFirst {
            queued.sort_by(|a, b| {
                let work = |j: &JobView| {
                    j.remaining_iters * j.spec.model.global_batch as f64
                        / view.service.ideal_sps(&j.spec).max(1e-9)
                };
                work(a).total_cmp(&work(b))
            });
        }

        let mut pending_blocked = false;
        for job in queued {
            // Jobs with no feasible Cell anywhere are rejected up front;
            // deadline-hopeless jobs are dropped early (§8.5).
            let cands = self.candidates(view, job);
            if cands.is_empty() {
                view.obs.decision(
                    Decision::drop(job.id())
                        .on_shard(job.home_shard())
                        .why("no-feasible-cell"),
                );
                actions.push(Action::Drop { job: job.id() });
                continue;
            }
            if self.variant == ArenaVariant::Deadline
                && !cands.iter().any(|c| Self::meets_deadline(view, job, c))
            {
                view.obs.decision(
                    Decision::drop(job.id())
                        .on_shard(job.home_shard())
                        .why("deadline-hopeless"),
                );
                actions.push(Action::Drop { job: job.id() });
                continue;
            }

            if pending_blocked {
                if !self.opportunistic {
                    continue;
                }
                // Opportunistic execution: backfill idle GPUs behind the
                // pending job without scaling anyone.
                if let Some(c) = cands.iter().find(|c| virt.free[c.pool.0] >= c.gpus) {
                    virt.place(job.id(), c.pool, c.gpus, true);
                    let a = Action::Place {
                        job: job.id(),
                        pool: c.pool,
                        gpus: c.gpus,
                        opportunistic: true,
                    };
                    record(view, &a, "opportunistic-backfill", Some(c.score));
                    actions.push(a);
                }
                continue;
            }

            if !self.cell_based_sched(view, job, &mut virt, &mut actions) {
                pending_blocked = true;
            }
        }

        // Extra scheduling for released resources (departures only, so
        // steady rounds don't thrash running jobs).
        if matches!(event, SchedEvent::Departure(_)) && !pending_blocked {
            self.upscale_running(view, &mut virt, &mut actions);
        }

        actions
    }

    /// Per-shard candidate prefetch: warms the memo with every queued job
    /// class missing from it, computing the lists concurrently across
    /// classes on the worker pool. A candidate list is a pure function of
    /// (job class, pool state, service), so the subsequent scheduling
    /// pass reads bitwise the same lists it would have enumerated lazily —
    /// only the hit/miss split of the memo stats moves, and those are not
    /// part of any observable schedule output.
    fn prepare_shards(&mut self, shards: &[ShardQueue<'_>], view: &SchedView<'_>) {
        if !self.use_memo || self.workers.threads() <= 1 {
            return;
        }
        // Same signature revalidation the scheduling pass will perform,
        // so prefetched entries survive into it.
        let flushed = self.memo.borrow_mut().begin_pass(view.pools);
        if !flushed && !self.memo.borrow().is_empty() {
            // Quiet round: the memo survived revalidation, so only
            // classes that arrived since the last pass can be missing —
            // a handful at most, cheaper to fill lazily in the
            // scheduling pass than to rescan the whole queue here.
            return;
        }
        // Grids are enumerated serially (cheap); only the estimation is
        // fanned out. The task closure must not capture `self` — the
        // memo's `RefCell` keeps the policy `!Sync`.
        type MissingClass = (
            JobClassKey,
            Vec<(GpuTypeId, usize)>,
            Arc<arena_trace::JobSpec>,
        );
        let mut missing: Vec<MissingClass> = Vec::new();
        let mut seen: HashSet<JobClassKey> = HashSet::new();
        {
            let memo = self.memo.borrow();
            for sq in shards {
                for &job in &sq.queued {
                    let key = JobClassKey::of(&job.spec);
                    if memo.contains(&key) || !seen.insert(key) {
                        continue;
                    }
                    missing.push((key, self.grid(view, job), job.spec.clone()));
                }
            }
        }
        if missing.is_empty() {
            return;
        }
        // Parallelism is across classes here, so each class's grid is
        // estimated inline rather than nesting a second fan-out. A
        // handful of stragglers (quiet rounds where one new class
        // arrived) is cheaper to estimate in place than to spawn for;
        // either path fills the memo with bitwise the same lists.
        let inline = WorkerPool::sequential();
        let (pools, service) = (view.pools, view.service);
        let computed = if missing.len() < PREFETCH_SPAWN_CUTOFF {
            missing
                .iter()
                .map(|(_, grid, spec)| estimate_and_rank(grid, spec, pools, service, &inline))
                .collect()
        } else {
            self.workers.map(&missing, |_, (_, grid, spec)| {
                estimate_and_rank(grid, spec, pools, service, &inline)
            })
        };
        let mut memo = self.memo.borrow_mut();
        for ((key, ..), mut cands) in missing.into_iter().zip(computed) {
            // The prefetch caches exactly what the lazy path would have:
            // the cap is applied before the list enters the memo.
            self.apply_candidate_cap(&mut cands, &view.obs);
            memo.put(key, Arc::new(cands));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PlacementView;
    use crate::service::PlanService;
    use arena_cluster::presets;
    use arena_model::zoo::{ModelConfig, ModelFamily};
    use arena_perf::CostParams;
    use arena_trace::JobSpec;

    fn job(id: u64, size: f64, gpus: usize, pool: usize) -> JobView {
        let model = ModelConfig::new(ModelFamily::Bert, size, 256);
        JobView {
            remaining_iters: 1000.0,
            spec: std::sync::Arc::new(JobSpec {
                id,
                name: format!("j{id}"),
                submit_s: 0.0,
                model,
                iterations: 1000,
                requested_gpus: gpus,
                requested_pool: pool,
                deadline_s: None,
            }),
            placement: None,
        }
    }

    struct Fixture {
        cluster: arena_cluster::Cluster,
        service: PlanService,
    }

    impl Fixture {
        fn new() -> Self {
            let cluster = presets::physical_testbed();
            let service = PlanService::new(&cluster, CostParams::default(), 3);
            Fixture { cluster, service }
        }

        fn view<'a>(
            &'a self,
            queued: &'a [JobView],
            running: &'a [JobView],
            pools: &'a [arena_cluster::PoolStats],
        ) -> SchedView<'a> {
            SchedView {
                now_s: 0.0,
                queued,
                running,
                pools,
                service: &self.service,
                obs: arena_obs::Obs::disabled(),
            }
        }
    }

    #[test]
    fn places_new_job_on_best_pool() {
        let f = Fixture::new();
        let queued = vec![job(1, 1.3, 8, 1)];
        let pools = f.cluster.pool_stats();
        let mut policy = ArenaPolicy::new();
        let actions = policy.schedule(SchedEvent::Arrival(1), &f.view(&queued, &[], &pools));
        assert!(matches!(
            actions.as_slice(),
            [Action::Place { job: 1, gpus, .. }] if [4, 8, 16].contains(gpus)
        ));
    }

    #[test]
    fn na_variant_keeps_requested_size() {
        let f = Fixture::new();
        let queued = vec![job(1, 1.3, 8, 0)];
        let pools = f.cluster.pool_stats();
        let mut policy = ArenaPolicy::with_variant(ArenaVariant::NoAdaptivity);
        let actions = policy.schedule(SchedEvent::Arrival(1), &f.view(&queued, &[], &pools));
        assert!(matches!(
            actions.as_slice(),
            [Action::Place {
                job: 1,
                gpus: 8,
                ..
            }]
        ));
    }

    #[test]
    fn nh_variant_keeps_requested_pool() {
        let f = Fixture::new();
        let queued = vec![job(1, 1.3, 8, 1)];
        let pools = f.cluster.pool_stats();
        let mut policy = ArenaPolicy::with_variant(ArenaVariant::NoHeterogeneity);
        let actions = policy.schedule(SchedEvent::Arrival(1), &f.view(&queued, &[], &pools));
        match actions.as_slice() {
            [Action::Place { job: 1, pool, .. }] => assert_eq!(pool.0, 1),
            other => panic!("unexpected actions {other:?}"),
        }
    }

    #[test]
    fn downscales_running_job_under_pressure() {
        let f = Fixture::new();
        // Both pools nearly full: one running job holds 32 of 32 A40s...
        let mut running = vec![job(1, 1.3, 16, 0)];
        running[0].placement = Some(PlacementView {
            pool: GpuTypeId(0),
            gpus: 32,
            throughput_sps: 100.0,
            opportunistic: false,
        });
        let queued = vec![job(2, 0.76, 8, 0)];
        let mut pools = f.cluster.pool_stats();
        pools[0].free_gpus = 0; // A40 full
        pools[1].free_gpus = 0; // A10 full
        let mut policy = ArenaPolicy::new();
        let actions = policy.schedule(SchedEvent::Arrival(2), &f.view(&queued, &running, &pools));
        // The policy must emit a scaling move (downscale or pool move of
        // job 1 is impossible since pool 1 is full -> downscale) and then
        // place job 2.
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Place {
                    job: 1,
                    gpus: 16,
                    ..
                }
            )),
            "no downscale in {actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Place { job: 2, .. })),
            "queued job not placed in {actions:?}"
        );
    }

    #[test]
    fn hopeless_deadline_jobs_dropped_early() {
        let f = Fixture::new();
        let mut j = job(1, 2.6, 8, 0);
        std::sync::Arc::make_mut(&mut j.spec).deadline_s = Some(1.0); // Impossible deadline.
        let queued = vec![j];
        let pools = f.cluster.pool_stats();
        let mut policy = ArenaPolicy::with_variant(ArenaVariant::Deadline);
        let actions = policy.schedule(SchedEvent::Arrival(1), &f.view(&queued, &[], &pools));
        assert_eq!(actions, vec![Action::Drop { job: 1 }]);
    }

    #[test]
    fn opportunistic_backfill_behind_pending_job() {
        let f = Fixture::new();
        // Queue: a huge job that cannot fit, then a small one that can.
        let queued = vec![job(1, 6.7, 64, 0), job(2, 0.76, 2, 0)];
        let mut pools = f.cluster.pool_stats();
        pools[0].free_gpus = 8; // Not enough for job 1 even at 32.
        pools[1].free_gpus = 0;
        let mut policy = ArenaPolicy::new().with_search_depth(0);
        let actions = policy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Place {
                    job: 2,
                    opportunistic: true,
                    ..
                }
            )),
            "no opportunistic backfill in {actions:?}"
        );
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::Place { job: 1, .. })));
    }

    #[test]
    fn no_opportunistic_knob_suppresses_backfill() {
        let f = Fixture::new();
        let queued = vec![job(1, 6.7, 64, 0), job(2, 0.76, 2, 0)];
        let mut pools = f.cluster.pool_stats();
        pools[0].free_gpus = 8;
        pools[1].free_gpus = 0;
        let mut policy = ArenaPolicy::new()
            .with_search_depth(0)
            .without_opportunistic();
        let actions = policy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Place { .. })),
            "backfill happened despite the knob: {actions:?}"
        );
    }

    #[test]
    fn shortest_first_reorders_queue() {
        let f = Fixture::new();
        // Job 1 is long, job 2 short; only one can fit.
        let mut long = job(1, 1.3, 8, 0);
        long.remaining_iters = 100_000.0;
        let mut short = job(2, 1.3, 8, 0);
        short.remaining_iters = 10.0;
        let queued = vec![long, short];
        let mut pools = f.cluster.pool_stats();
        pools[0].free_gpus = 8;
        pools[1].free_gpus = 0;
        let mut policy = ArenaPolicy::new()
            .with_search_depth(0)
            .with_queue_order(QueueOrder::ShortestFirst)
            .without_opportunistic();
        let actions = policy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        let placed: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Place { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert!(
            placed.contains(&2),
            "short job not placed first: {actions:?}"
        );
        assert!(!placed.contains(&1));
    }

    #[test]
    fn failure_aware_placement_prefers_healthy_pool() {
        // Two *identical* pools: every candidate scores the same in both,
        // so the failure-aware ranking must decide.
        let spec = arena_cluster::NodeSpec::with_default_links(arena_cluster::GpuSpec::A40, 4);
        let cluster = arena_cluster::Cluster::new(&[(spec, 8), (spec, 8)]);
        let service = PlanService::new(&cluster, CostParams::default(), 3);
        let mut pools = cluster.pool_stats();
        // Pool 0 lost half its nodes; pool 1 is intact.
        pools[0].free_gpus = 16;
        pools[0].failed_gpus = 16;
        let queued = vec![job(1, 1.3, 8, 0)];
        let view = SchedView {
            now_s: 0.0,
            queued: &queued,
            running: &[],
            pools: &pools,
            service: &service,
            obs: arena_obs::Obs::disabled(),
        };
        let mut policy = ArenaPolicy::new();
        let actions = policy.schedule(SchedEvent::Round, &view);
        match actions.as_slice() {
            [Action::Place { job: 1, pool, .. }] => {
                assert_eq!(pool.0, 1, "placed into the degraded pool: {actions:?}");
            }
            other => panic!("unexpected actions {other:?}"),
        }
    }

    #[test]
    fn nan_scored_candidate_cannot_panic_ranking() {
        // A NaN score (an estimator bug upstream) must neither panic the
        // comparator nor float to the top of the ranking.
        let cand = |pool: usize, score: f64| Candidate {
            pool: GpuTypeId(pool),
            gpus: 8,
            score,
            iter_time_s: 1.0,
        };
        let f = Fixture::new();
        let mut pools = f.cluster.pool_stats();
        let mut cands = vec![cand(0, f64::NAN), cand(1, 0.9), cand(0, 1.1)];
        rank_candidates(&mut cands, &pools);
        assert_eq!(cands[0].score, 1.1);
        assert!(cands[2].score.is_nan(), "NaN must rank last: {cands:?}");
        // Same under the failure-aware (degraded) ranking.
        pools[0].failed_gpus = 8;
        let mut cands = vec![cand(0, f64::NAN), cand(1, 0.9), cand(1, f64::NAN)];
        rank_candidates(&mut cands, &pools);
        assert_eq!(cands[0].score, 0.9);
        assert!(cands[1].score.is_nan() && cands[2].score.is_nan());
    }

    #[test]
    fn nan_remaining_work_cannot_panic_scheduler() {
        // A NaN remaining-work estimate must not panic the
        // shortest-first queue sort; the poisoned job just sorts last.
        let f = Fixture::new();
        let mut poisoned = job(1, 1.3, 8, 0);
        poisoned.remaining_iters = f64::NAN;
        let queued = vec![poisoned, job(2, 1.3, 8, 0), job(3, 1.3, 8, 1)];
        let pools = f.cluster.pool_stats();
        let mut policy = ArenaPolicy::new().with_queue_order(QueueOrder::ShortestFirst);
        let actions = policy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        assert!(!actions.is_empty());
    }

    #[test]
    fn memo_and_pool_sizes_leave_schedule_unchanged() {
        let f = Fixture::new();
        let queued: Vec<JobView> = (0..6).map(|i| job(i, 1.3, 8, (i % 2) as usize)).collect();
        let pools = f.cluster.pool_stats();
        let reference = ArenaPolicy::new()
            .without_candidate_memo()
            .schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        for mut policy in [
            ArenaPolicy::new(),
            ArenaPolicy::new().with_worker_threads(4),
            ArenaPolicy::new()
                .with_worker_threads(8)
                .without_candidate_memo(),
        ] {
            let actions = policy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
            assert_eq!(actions, reference);
        }
    }

    #[test]
    fn memo_hits_on_quiet_rounds_and_flushes_on_capacity_change() {
        let f = Fixture::new();
        // Two same-class jobs: the second one's candidate list is a memo
        // hit even within the first pass.
        let queued = vec![job(1, 1.3, 8, 0), job(2, 1.3, 8, 0)];
        let mut pools = f.cluster.pool_stats();
        pools[0].free_gpus = 0;
        pools[1].free_gpus = 0; // Nothing places, so pool state stays put.
        let mut policy = ArenaPolicy::new();
        let view = f.view(&queued, &[], &pools);
        let _ = policy.schedule(SchedEvent::Round, &view);
        let s1 = policy.candidate_memo_stats();
        assert!(s1.hits > 0, "same-class job should hit the memo: {s1:?}");
        assert!(s1.misses > 0);
        // A quiet round re-enumerates nothing.
        let _ = policy.schedule(SchedEvent::Round, &view);
        let s2 = policy.candidate_memo_stats();
        assert_eq!(s2.misses, s1.misses, "quiet round re-enumerated: {s2:?}");
        assert_eq!(s2.invalidations, 0);
        // Capacity moved (e.g. an allocation elsewhere): memo flushes.
        pools[0].free_gpus = 8;
        let _ = policy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        let s3 = policy.candidate_memo_stats();
        assert_eq!(s3.invalidations, 1);
        assert!(s3.misses > s2.misses);
    }

    #[test]
    fn candidate_cap_only_trims_the_ranked_tail() {
        let f = Fixture::new();
        let queued: Vec<JobView> = (0..4).map(|i| job(i, 1.3, 8, (i % 2) as usize)).collect();
        let pools = f.cluster.pool_stats();
        let reference = ArenaPolicy::new()
            .without_candidate_memo()
            .schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));

        // A cap wider than any grid never binds: no truncations, no
        // provenance counter, identical schedule.
        let mut roomy = ArenaPolicy::new().with_candidate_cap(64);
        assert_eq!(
            roomy.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools)),
            reference
        );
        assert_eq!(roomy.capped_lists(), 0);

        // cap = 1 keeps only each list's best-ranked candidate. The head
        // of the ranking is untouched, so the first job still lands on
        // the same cell; later jobs lose their fallback candidates (the
        // cap genuinely binds — that is its point) and the provenance
        // counter fires.
        let mut tight = ArenaPolicy::new().with_candidate_cap(1);
        let actions = tight.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        assert!(tight.capped_lists() > 0, "cap of 1 never bound");
        assert_eq!(
            actions.first(),
            reference.first(),
            "top-ranked placement must survive the cap"
        );
    }

    #[test]
    fn memo_limits_leave_schedule_unchanged() {
        let f = Fixture::new();
        let queued: Vec<JobView> = (0..6).map(|i| job(i, 1.3, 8, (i % 2) as usize)).collect();
        let pools = f.cluster.pool_stats();
        let reference = ArenaPolicy::new()
            .without_candidate_memo()
            .schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        // An adversarially tiny memo (one entry, one-pass age) evicts on
        // nearly every lookup yet must reproduce the reference schedule:
        // eviction only moves the hit/miss split.
        let mut tiny = ArenaPolicy::new()
            .with_memo_capacity(1)
            .with_memo_max_age(1);
        let actions = tiny.schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
        assert_eq!(actions, reference);
        let s = tiny.candidate_memo_stats();
        assert!(s.evictions > 0, "one-entry memo never evicted: {s:?}");
    }

    #[test]
    fn upscales_on_departure() {
        let f = Fixture::new();
        let mut running = vec![job(1, 1.3, 8, 0)];
        running[0].placement = Some(PlacementView {
            pool: GpuTypeId(0),
            gpus: 8,
            throughput_sps: 100.0,
            opportunistic: false,
        });
        let pools = f.cluster.pool_stats(); // All free besides job 1.
        let mut policy = ArenaPolicy::new();
        let actions = policy.schedule(SchedEvent::Departure(9), &f.view(&[], &running, &pools));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Place {
                    job: 1,
                    gpus: 16,
                    ..
                }
            )),
            "no upscale in {actions:?}"
        );
    }
}
