//! Unit tests for the four baseline policies.

use arena_cluster::GpuTypeId;
use arena_model::zoo::{ModelConfig, ModelFamily};

use crate::policy::{Action, PlacementView, Policy, SchedEvent};
use crate::test_fixtures::{job, Fixture};
use crate::{ElasticFlowPolicy, FcfsPolicy, GandivaPolicy, GavelPolicy};

#[test]
fn fcfs_respects_arrival_order_and_blocks() {
    let f = Fixture::new();
    // Head job wants 32 GPUs; only 8 free; the small job behind must NOT run.
    let queued = vec![job(1, 1.3, 32, 0), job(2, 0.76, 2, 0)];
    let mut pools = f.cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 0;
    let actions = FcfsPolicy::new().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    assert!(
        actions.is_empty(),
        "FCFS must head-of-line block: {actions:?}"
    );
}

#[test]
fn fcfs_places_in_order_when_capacity_allows() {
    let f = Fixture::new();
    let queued = vec![job(1, 1.3, 8, 0), job(2, 0.76, 4, 0)];
    let pools = f.cluster.pool_stats();
    let actions = FcfsPolicy::new().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    let ids: Vec<u64> = actions
        .iter()
        .filter_map(|a| match a {
            Action::Place { job, .. } => Some(*job),
            _ => None,
        })
        .collect();
    assert_eq!(ids, vec![1, 2]);
}

#[test]
fn gandiva_backfills_behind_blocked_head() {
    let f = Fixture::new();
    let queued = vec![job(1, 1.3, 32, 0), job(2, 0.76, 2, 0)];
    let mut pools = f.cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 0;
    let actions = GandivaPolicy::new().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, Action::Place { job: 2, .. })),
        "Gandiva should backfill job 2: {actions:?}"
    );
}

#[test]
fn gandiva_is_heterogeneity_blind() {
    let f = Fixture::new();
    // A10 pool (slower) has more free GPUs: blind placement goes there.
    let queued = vec![job(1, 0.76, 4, 0)];
    let mut pools = f.cluster.pool_stats();
    pools[0].free_gpus = 4; // A40 (faster)
    pools[1].free_gpus = 32; // A10 (slower, emptier)
    let actions = GandivaPolicy::new().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    match actions.as_slice() {
        [Action::Place { pool, .. }] => assert_eq!(pool.0, 1, "expected the emptier pool"),
        other => panic!("unexpected actions {other:?}"),
    }
}

#[test]
fn gavel_prefers_the_faster_pool() {
    let f = Fixture::new();
    // Same free capacity on both pools: Gavel must pick by throughput.
    let queued = vec![job(1, 0.76, 4, 1)];
    let mut pools = f.cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 8;
    let actions = GavelPolicy::new().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    match actions.as_slice() {
        [Action::Place { pool, .. }] => {
            assert_eq!(pool.0, 0, "A40 outruns A10 for BERT-0.76B");
        }
        other => panic!("unexpected actions {other:?}"),
    }
}

#[test]
fn gavel_migrates_only_for_significant_gains() {
    let f = Fixture::new();
    // A job already on the faster pool must not migrate to the slower one.
    let mut running = vec![job(1, 0.76, 4, 0)];
    running[0].placement = Some(PlacementView {
        pool: GpuTypeId(0),
        gpus: 4,
        throughput_sps: 100.0,
        opportunistic: false,
    });
    let mut pools = f.cluster.pool_stats();
    pools[0].free_gpus -= 4;
    let actions = GavelPolicy::new().schedule(SchedEvent::Round, &f.view(&[], &running, &pools));
    assert!(actions.is_empty(), "needless migration: {actions:?}");
}

#[test]
fn elasticflow_admits_everyone_at_min_share_under_pressure() {
    let f = Fixture::new();
    // Three jobs requesting 8 GPUs each, only 8 free on their pool: the
    // elastic policy shrinks shares so all of them run.
    let queued = vec![job(1, 0.76, 8, 0), job(2, 0.76, 8, 0), job(3, 0.76, 8, 0)];
    let mut pools = f.cluster.pool_stats();
    pools[0].free_gpus = 8;
    pools[1].free_gpus = 0;
    let actions =
        ElasticFlowPolicy::loosened().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    let placed = actions
        .iter()
        .filter(|a| matches!(a, Action::Place { .. }))
        .count();
    assert_eq!(placed, 3, "EF-LS should admit all three: {actions:?}");
}

#[test]
fn elasticflow_grows_shares_with_spare_capacity() {
    let f = Fixture::new();
    // One small job alone on an idle pool gets more than its minimum.
    let queued = vec![job(1, 0.76, 8, 0)];
    let pools = f.cluster.pool_stats();
    let actions =
        ElasticFlowPolicy::loosened().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    match actions.as_slice() {
        [Action::Place { gpus, .. }] => assert!(*gpus >= 8, "no growth: {gpus}"),
        other => panic!("unexpected actions {other:?}"),
    }
}

#[test]
fn elasticflow_deadline_mode_drops_hopeless_jobs() {
    let f = Fixture::new();
    let mut j = job(1, 1.3, 8, 0);
    std::sync::Arc::make_mut(&mut j.spec).deadline_s = Some(1.0);
    let queued = vec![j];
    let pools = f.cluster.pool_stats();
    let actions =
        ElasticFlowPolicy::deadline().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    assert!(
        actions.contains(&Action::Drop { job: 1 }),
        "hopeless job kept: {actions:?}"
    );
}

#[test]
fn elasticflow_overestimates_big_job_shares() {
    let f = Fixture::new();
    // BERT-2.6B cannot run pure-DP at any width (42.7 GiB of state per
    // replica), so EF's minimum share comes from the inflated fallback.
    let mut j = job(1, 2.6, 4, 0);
    std::sync::Arc::make_mut(&mut j.spec).model = ModelConfig::new(ModelFamily::Bert, 2.6, 256);
    let queued = vec![j];
    let mut pools = f.cluster.pool_stats();
    pools[1].free_gpus = 0;
    let actions =
        ElasticFlowPolicy::loosened().schedule(SchedEvent::Round, &f.view(&queued, &[], &pools));
    match actions.iter().find(|a| matches!(a, Action::Place { .. })) {
        Some(Action::Place { gpus, .. }) => {
            assert!(*gpus >= 4, "EF share {gpus} not overestimated");
        }
        other => panic!("job not placed: {other:?}"),
    }
}
