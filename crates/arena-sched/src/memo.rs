//! Candidate-list memoization with dirty-set invalidation.
//!
//! Arena re-enumerates every queued job's candidate list on every
//! scheduling event — and twice per job per pass (feasibility screen +
//! placement). The ranked list is a pure function of the job's class
//! (model, batch, requested size/pool) and the per-pool
//! free/failed/total GPU counts, so [`CandidateMemo`] caches it keyed by
//! job class and guarded by a *pool signature* hashed over those counts.
//! Any allocation, release or fault event changes some pool's counts,
//! changes the signature, and flushes the memo; quiet rounds (and
//! repeated same-class jobs inside one pass) skip re-enumeration
//! entirely.

use std::collections::HashMap;
use std::sync::Arc;

use arena_cluster::PoolStats;
use arena_model::ModelConfig;
use arena_trace::JobSpec;

use crate::arena::Candidate;

/// Everything a job's candidate list depends on besides pool state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct JobClassKey {
    family: arena_model::zoo::ModelFamily,
    params_mb: u64,
    global_batch: usize,
    requested_gpus: usize,
    requested_pool: usize,
}

impl JobClassKey {
    pub(crate) fn of(spec: &JobSpec) -> Self {
        let ModelConfig {
            family,
            params_b,
            global_batch,
        } = spec.model;
        JobClassKey {
            family,
            params_mb: params_b.to_bits(),
            global_batch,
            requested_gpus: spec.requested_gpus,
            requested_pool: spec.requested_pool,
        }
    }
}

/// Order-sensitive hash of every pool's capacity counts — the memo's
/// dirty bit. Placements, departures, evictions, node failures and
/// repairs all move `free_gpus`/`failed_gpus`, so any of them produces a
/// fresh signature.
pub(crate) fn pool_signature(pools: &[PoolStats]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    for p in pools {
        mix(p.id.0 as u64);
        mix(p.total_gpus as u64);
        mix(p.free_gpus as u64);
        mix(p.failed_gpus as u64);
    }
    h
}

/// Hit/miss/invalidation counters, readable for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateMemoStats {
    /// Candidate lists served from the memo.
    pub hits: u64,
    /// Candidate lists enumerated fresh.
    pub misses: u64,
    /// Whole-memo flushes triggered by a pool-signature change.
    pub invalidations: u64,
}

/// Per-policy memo of ranked candidate lists. Not shared across threads:
/// each policy owns one behind a `RefCell`.
#[derive(Debug, Default)]
pub(crate) struct CandidateMemo {
    pool_sig: Option<u64>,
    entries: HashMap<JobClassKey, Arc<Vec<Candidate>>>,
    stats: CandidateMemoStats,
}

impl CandidateMemo {
    /// Revalidates the memo against the pool state a scheduling pass
    /// sees, flushing every entry when the signature moved. Returns
    /// whether the pass started cold (first pass or flush) — callers use
    /// it to decide whether a prefetch sweep is worth the scan.
    pub(crate) fn begin_pass(&mut self, pools: &[PoolStats]) -> bool {
        let sig = pool_signature(pools);
        if self.pool_sig != Some(sig) {
            if self.pool_sig.is_some() && !self.entries.is_empty() {
                self.stats.invalidations += 1;
            }
            self.entries.clear();
            self.pool_sig = Some(sig);
            return true;
        }
        false
    }

    /// Whether the memo holds no candidate lists.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn get(&mut self, key: &JobClassKey) -> Option<Arc<Vec<Candidate>>> {
        match self.entries.get(key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is cached, without touching the hit/miss counters —
    /// for the prefetch pre-pass, which must leave the stats to the real
    /// scheduling lookups.
    pub(crate) fn contains(&self, key: &JobClassKey) -> bool {
        self.entries.contains_key(key)
    }

    pub(crate) fn put(&mut self, key: JobClassKey, value: Arc<Vec<Candidate>>) {
        self.entries.insert(key, value);
    }

    pub(crate) fn stats(&self) -> CandidateMemoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, GpuTypeId, NodeSpec};
    use arena_model::zoo::ModelFamily;

    fn pools() -> Vec<PoolStats> {
        let spec = NodeSpec::with_default_links(GpuSpec::A40, 4);
        vec![
            PoolStats {
                id: GpuTypeId(0),
                spec,
                total_gpus: 32,
                free_gpus: 16,
                failed_gpus: 0,
            },
            PoolStats {
                id: GpuTypeId(1),
                spec,
                total_gpus: 32,
                free_gpus: 32,
                failed_gpus: 0,
            },
        ]
    }

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: 0.0,
            model: ModelConfig::new(ModelFamily::Bert, 1.3, 256),
            iterations: 100,
            requested_gpus: 8,
            requested_pool: 0,
            deadline_s: None,
        }
    }

    #[test]
    fn same_class_jobs_share_a_key() {
        // Different ids and names, same scheduling class.
        assert_eq!(JobClassKey::of(&spec(1)), JobClassKey::of(&spec(2)));
        let mut other = spec(3);
        other.requested_gpus = 4;
        assert_ne!(JobClassKey::of(&spec(1)), JobClassKey::of(&other));
    }

    #[test]
    fn signature_moves_on_any_capacity_change() {
        let base = pool_signature(&pools());
        for change in [
            |p: &mut Vec<PoolStats>| p[0].free_gpus -= 8,
            |p: &mut Vec<PoolStats>| p[1].free_gpus += 1,
            |p: &mut Vec<PoolStats>| p[0].failed_gpus = 4,
            |p: &mut Vec<PoolStats>| p[1].total_gpus -= 4,
        ] {
            let mut p = pools();
            change(&mut p);
            assert_ne!(pool_signature(&p), base);
        }
        assert_eq!(pool_signature(&pools()), base);
    }

    #[test]
    fn memo_hits_within_signature_and_flushes_across() {
        let mut memo = CandidateMemo::default();
        let p = pools();
        memo.begin_pass(&p);
        let key = JobClassKey::of(&spec(1));
        assert!(memo.get(&key).is_none());
        memo.put(key, Arc::new(Vec::new()));
        assert!(memo.get(&key).is_some());
        // Same signature on the next pass: still cached.
        memo.begin_pass(&p);
        assert!(memo.get(&key).is_some());
        // An allocation elsewhere flushes the memo.
        let mut moved = pools();
        moved[0].free_gpus -= 8;
        memo.begin_pass(&moved);
        assert!(memo.get(&key).is_none());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (2, 2, 1));
    }
}
