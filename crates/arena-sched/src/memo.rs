//! Candidate-list memoization with dirty-set invalidation.
//!
//! Arena re-enumerates every queued job's candidate list on every
//! scheduling event — and twice per job per pass (feasibility screen +
//! placement). The ranked list is a pure function of the job's class
//! (model, batch, requested size/pool) and the per-pool
//! free/failed/total GPU counts, so [`CandidateMemo`] caches it keyed by
//! job class and guarded by a *pool signature* hashed over those counts.
//! Any allocation, release or fault event changes some pool's counts,
//! changes the signature, and flushes the memo; quiet rounds (and
//! repeated same-class jobs inside one pass) skip re-enumeration
//! entirely.
//!
//! At fleet scale the quiet-round case is the dangerous one: a memo that
//! only ever flushes on capacity changes grows with the number of
//! distinct job classes seen, which an adversarial trace can make
//! unbounded. The memo therefore supports an optional *entry cap*
//! (oldest-inserted entry evicted first — an insertion-order clock, never
//! hash order, so eviction is deterministic) and an optional *age-out*
//! (entries not touched for `max_age_passes` revalidations are dropped at
//! the start of a pass). Both default to off; eviction moves only the
//! hit/miss split, never which list a lookup ultimately sees.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use arena_cluster::PoolStats;
use arena_model::ModelConfig;
use arena_trace::JobSpec;

use crate::arena::Candidate;

/// Everything a job's candidate list depends on besides pool state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct JobClassKey {
    family: arena_model::zoo::ModelFamily,
    params_mb: u64,
    global_batch: usize,
    requested_gpus: usize,
    requested_pool: usize,
}

impl JobClassKey {
    pub(crate) fn of(spec: &JobSpec) -> Self {
        let ModelConfig {
            family,
            params_b,
            global_batch,
        } = spec.model;
        JobClassKey {
            family,
            params_mb: params_b.to_bits(),
            global_batch,
            requested_gpus: spec.requested_gpus,
            requested_pool: spec.requested_pool,
        }
    }
}

/// Order-sensitive hash of every pool's capacity counts — the memo's
/// dirty bit. Placements, departures, evictions, node failures and
/// repairs all move `free_gpus`/`failed_gpus`, so any of them produces a
/// fresh signature.
pub(crate) fn pool_signature(pools: &[PoolStats]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    for p in pools {
        mix(p.id.0 as u64);
        mix(p.total_gpus as u64);
        mix(p.free_gpus as u64);
        mix(p.failed_gpus as u64);
    }
    h
}

/// Hit/miss/invalidation counters, readable for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateMemoStats {
    /// Candidate lists served from the memo.
    pub hits: u64,
    /// Candidate lists enumerated fresh.
    pub misses: u64,
    /// Whole-memo flushes triggered by a pool-signature change.
    pub invalidations: u64,
    /// Entries evicted to stay under the entry cap (oldest first).
    pub evictions: u64,
    /// Entries dropped by the age-out sweep (untouched too long).
    pub aged_out: u64,
}

/// Per-policy memo of ranked candidate lists. Not shared across threads:
/// each policy owns one behind a `RefCell`.
#[derive(Debug, Default)]
pub(crate) struct CandidateMemo {
    pool_sig: Option<u64>,
    /// Values carry the pass number of their last hit (for age-out).
    entries: HashMap<JobClassKey, (Arc<Vec<Candidate>>, u64)>,
    /// Insertion-order clock: the deterministic eviction order. Re-puts
    /// of a live key keep its clock position.
    order: VecDeque<JobClassKey>,
    /// Revalidation counter; advances once per `begin_pass`.
    pass: u64,
    /// Maximum live entries (`None` = unbounded, the default).
    cap: Option<usize>,
    /// Maximum passes an entry may go without a hit (`None` = forever).
    max_age_passes: Option<u64>,
    stats: CandidateMemoStats,
}

impl CandidateMemo {
    /// Bounds the memo to `cap` entries; the oldest-inserted entry is
    /// evicted first when a put would exceed it.
    pub(crate) fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce_cap(None);
    }

    /// Drops entries that go `passes` revalidations without a hit.
    pub(crate) fn set_max_age(&mut self, passes: Option<u64>) {
        self.max_age_passes = passes;
    }

    /// Revalidates the memo against the pool state a scheduling pass
    /// sees, flushing every entry when the signature moved. Returns
    /// whether the pass started cold (first pass or flush) — callers use
    /// it to decide whether a prefetch sweep is worth the scan.
    pub(crate) fn begin_pass(&mut self, pools: &[PoolStats]) -> bool {
        let sig = pool_signature(pools);
        if self.pool_sig != Some(sig) {
            if self.pool_sig.is_some() && !self.entries.is_empty() {
                self.stats.invalidations += 1;
            }
            self.entries.clear();
            self.order.clear();
            self.pool_sig = Some(sig);
            self.pass += 1;
            return true;
        }
        self.pass += 1;
        if let Some(max_age) = self.max_age_passes {
            let (entries, pass) = (&mut self.entries, self.pass);
            let before = entries.len();
            // Sweeping the insertion-order clock (not the hash map) keeps
            // the survivor order — and therefore later evictions —
            // deterministic.
            self.order.retain(|k| {
                let stale = entries
                    .get(k)
                    .is_some_and(|(_, last)| pass.saturating_sub(*last) > max_age);
                if stale {
                    entries.remove(k);
                }
                !stale
            });
            self.stats.aged_out += (before - entries.len()) as u64;
        }
        false
    }

    /// Whether the memo holds no candidate lists.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn get(&mut self, key: &JobClassKey) -> Option<Arc<Vec<Candidate>>> {
        match self.entries.get_mut(key) {
            Some((v, last)) => {
                *last = self.pass;
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is cached, without touching the hit/miss counters —
    /// for the prefetch pre-pass, which must leave the stats to the real
    /// scheduling lookups.
    pub(crate) fn contains(&self, key: &JobClassKey) -> bool {
        self.entries.contains_key(key)
    }

    pub(crate) fn put(&mut self, key: JobClassKey, value: Arc<Vec<Candidate>>) {
        if self.entries.insert(key, (value, self.pass)).is_none() {
            self.order.push_back(key);
        }
        self.enforce_cap(Some(&key));
    }

    /// Evicts oldest-inserted entries until the cap holds. The key just
    /// inserted (if any) is exempt from its own sweep, so even a put that
    /// alone exceeds the cap still caches once.
    fn enforce_cap(&mut self, just_inserted: Option<&JobClassKey>) {
        let Some(cap) = self.cap else { return };
        while self.entries.len() > cap.max(1) {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if Some(&oldest) == just_inserted {
                self.order.push_back(oldest);
                continue;
            }
            if self.entries.remove(&oldest).is_some() {
                self.stats.evictions += 1;
            }
        }
    }

    pub(crate) fn stats(&self) -> CandidateMemoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_cluster::{GpuSpec, GpuTypeId, NodeSpec};
    use arena_model::zoo::ModelFamily;

    fn pools() -> Vec<PoolStats> {
        let spec = NodeSpec::with_default_links(GpuSpec::A40, 4);
        vec![
            PoolStats {
                id: GpuTypeId(0),
                spec,
                total_gpus: 32,
                free_gpus: 16,
                failed_gpus: 0,
            },
            PoolStats {
                id: GpuTypeId(1),
                spec,
                total_gpus: 32,
                free_gpus: 32,
                failed_gpus: 0,
            },
        ]
    }

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            name: format!("j{id}"),
            submit_s: 0.0,
            model: ModelConfig::new(ModelFamily::Bert, 1.3, 256),
            iterations: 100,
            requested_gpus: 8,
            requested_pool: 0,
            deadline_s: None,
        }
    }

    #[test]
    fn same_class_jobs_share_a_key() {
        // Different ids and names, same scheduling class.
        assert_eq!(JobClassKey::of(&spec(1)), JobClassKey::of(&spec(2)));
        let mut other = spec(3);
        other.requested_gpus = 4;
        assert_ne!(JobClassKey::of(&spec(1)), JobClassKey::of(&other));
    }

    #[test]
    fn signature_moves_on_any_capacity_change() {
        let base = pool_signature(&pools());
        for change in [
            |p: &mut Vec<PoolStats>| p[0].free_gpus -= 8,
            |p: &mut Vec<PoolStats>| p[1].free_gpus += 1,
            |p: &mut Vec<PoolStats>| p[0].failed_gpus = 4,
            |p: &mut Vec<PoolStats>| p[1].total_gpus -= 4,
        ] {
            let mut p = pools();
            change(&mut p);
            assert_ne!(pool_signature(&p), base);
        }
        assert_eq!(pool_signature(&pools()), base);
    }

    #[test]
    fn memo_hits_within_signature_and_flushes_across() {
        let mut memo = CandidateMemo::default();
        let p = pools();
        memo.begin_pass(&p);
        let key = JobClassKey::of(&spec(1));
        assert!(memo.get(&key).is_none());
        memo.put(key, Arc::new(Vec::new()));
        assert!(memo.get(&key).is_some());
        // Same signature on the next pass: still cached.
        memo.begin_pass(&p);
        assert!(memo.get(&key).is_some());
        // An allocation elsewhere flushes the memo.
        let mut moved = pools();
        moved[0].free_gpus -= 8;
        memo.begin_pass(&moved);
        assert!(memo.get(&key).is_none());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (2, 2, 1));
        assert_eq!((s.evictions, s.aged_out), (0, 0));
    }

    fn class(gpus: usize) -> JobClassKey {
        let mut sp = spec(gpus as u64);
        sp.requested_gpus = gpus;
        JobClassKey::of(&sp)
    }

    #[test]
    fn entry_cap_evicts_oldest_inserted_first() {
        let mut memo = CandidateMemo::default();
        memo.set_cap(Some(2));
        memo.begin_pass(&pools());
        for g in [1, 2, 4] {
            memo.put(class(g), Arc::new(Vec::new()));
        }
        // Oldest (gpus=1) evicted; the two newest survive.
        assert!(!memo.contains(&class(1)));
        assert!(memo.contains(&class(2)) && memo.contains(&class(4)));
        assert_eq!(memo.stats().evictions, 1);
        // Re-putting a live key keeps its clock position: 2 is still the
        // oldest and goes next.
        memo.put(class(2), Arc::new(Vec::new()));
        memo.put(class(8), Arc::new(Vec::new()));
        assert!(!memo.contains(&class(2)));
        assert!(memo.contains(&class(4)) && memo.contains(&class(8)));
        assert_eq!(memo.stats().evictions, 2);
    }

    #[test]
    fn age_out_drops_untouched_entries_on_quiet_passes() {
        let mut memo = CandidateMemo::default();
        memo.set_max_age(Some(2));
        let p = pools();
        memo.begin_pass(&p);
        memo.put(class(1), Arc::new(Vec::new()));
        memo.put(class(2), Arc::new(Vec::new()));
        // Keep class(1) warm across quiet passes; class(2) goes cold.
        for _ in 0..3 {
            memo.begin_pass(&p);
            assert!(memo.get(&class(1)).is_some());
        }
        assert!(memo.contains(&class(1)));
        assert!(!memo.contains(&class(2)));
        assert_eq!(memo.stats().aged_out, 1);
        // A signature change still flushes everything without counting
        // age-outs.
        let mut moved = pools();
        moved[0].free_gpus -= 1;
        memo.begin_pass(&moved);
        assert!(memo.is_empty());
        assert_eq!(memo.stats().aged_out, 1);
    }

    #[test]
    fn defaults_are_unbounded() {
        let mut memo = CandidateMemo::default();
        let p = pools();
        memo.begin_pass(&p);
        for g in 0..64 {
            memo.put(class(g + 1), Arc::new(Vec::new()));
        }
        for _ in 0..100 {
            memo.begin_pass(&p);
        }
        let s = memo.stats();
        assert_eq!(memo.entries.len(), 64);
        assert_eq!((s.evictions, s.aged_out), (0, 0));
    }
}
