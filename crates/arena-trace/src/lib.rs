//! Workload traces: job records and synthetic production-trace generators.
//!
//! The paper drives its evaluation with three production traces — a
//! two-week Microsoft Philly trace (heavy load), a Helios Venus day
//! (moderate) and an Alibaba PAI day (low) — with GPU counts and types
//! randomly regenerated for the heterogeneous setting, and iteration
//! counts derived from job durations. None of the raw traces ship here;
//! [`gen`] reproduces their published *shape*: arrival burstiness, a
//! log-normal duration mix, a small-job-dominated GPU-demand mix and the
//! Fig. 15 model-size distribution, all from a seeded RNG so every
//! experiment is exactly reproducible.

pub mod fault;
pub mod gen;
pub mod io;
pub mod job;
pub mod rng;
pub mod stream;

pub use fault::{generate_faults, FaultConfig, FaultEvent, FaultKind};
pub use gen::{generate, GenSource, TraceConfig, TraceKind};
pub use io::{load_json, save_json};
pub use job::JobSpec;
pub use stream::{save_jsonl, JsonlSource, JsonlWriter, TakeSource, TraceSource, VecSource};
