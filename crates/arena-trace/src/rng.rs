//! Small distribution helpers over a seeded RNG.
//!
//! Only `rand`'s uniform primitives are used; the named distributions are
//! derived here (Box–Muller, inverse CDF) to keep the dependency set flat.

use rand::{Rng, RngExt};

/// A standard normal draw (Box–Muller).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A log-normal draw with the given median and log-space sigma.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * normal(rng)).exp()
}

/// An exponential inter-arrival draw with the given rate (events/second).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    -rng.random::<f64>().max(1e-12).ln() / rate
}

/// Samples an index proportionally to `weights`.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_choice<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must be non-empty and positive");
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut draws: Vec<f64> = (0..10_001)
            .map(|_| lognormal(&mut rng, 50.0, 1.0))
            .collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[5000];
        assert!((median / 50.0 - 1.0).abs() < 0.15, "median {median}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0_usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "frac {frac2}");
    }

    #[test]
    #[should_panic(expected = "weights must be non-empty")]
    fn empty_weights_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = weighted_choice(&mut rng, &[]);
    }
}
