//! Synthetic production-trace generators.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use arena_model::zoo::{ModelConfig, ModelFamily};

use crate::job::JobSpec;
use crate::rng::{exponential, lognormal, weighted_choice};

/// Which production trace's shape to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Microsoft Philly: heavy, bursty load (§8.3/§8.4).
    PhillyHeavy,
    /// Helios Venus: moderate load (§8.4).
    HeliosModerate,
    /// Alibaba PAI: low load (§8.4).
    PaiLow,
}

impl TraceKind {
    /// Offered load as a fraction of cluster GPU capacity.
    #[must_use]
    pub fn load(self) -> f64 {
        match self {
            TraceKind::PhillyHeavy => 1.15,
            TraceKind::HeliosModerate => 0.7,
            TraceKind::PaiLow => 0.40,
        }
    }

    /// Median job duration in seconds and log-space sigma.
    #[must_use]
    pub fn duration_dist(self) -> (f64, f64) {
        match self {
            TraceKind::PhillyHeavy => (600.0, 1.15),
            TraceKind::HeliosModerate => (700.0, 1.2),
            TraceKind::PaiLow => (600.0, 1.4),
        }
    }
}

/// Configuration of one synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Trace shape to reproduce.
    pub kind: TraceKind,
    /// Trace length in seconds (submissions stop after this point).
    pub duration_s: f64,
    /// RNG seed; the same config always yields the same trace.
    pub seed: u64,
    /// Total GPUs of the target cluster (drives the arrival rate).
    pub cluster_gpus: usize,
    /// Device memory (GiB) of each pool of the target cluster, used to
    /// pick feasible initial GPU counts per model size.
    pub pool_mem_gib: Vec<f64>,
    /// Relative popularity of each pool (same length as `pool_mem_gib`).
    pub pool_weights: Vec<f64>,
    /// Fraction of jobs carrying a deadline (0 outside DDL experiments).
    pub deadline_fraction: f64,
    /// Extra multiplier on the arrival rate (1.0 = the kind's load).
    pub load_scale: f64,
    /// Multiplier on job durations; large-cluster experiments use longer
    /// (multi-hour) pre-training jobs than the testbed trace.
    pub duration_scale: f64,
}

impl TraceConfig {
    /// A config for `kind` on a cluster described by its pool memories and
    /// total GPU count.
    #[must_use]
    pub fn new(
        kind: TraceKind,
        duration_s: f64,
        cluster_gpus: usize,
        pool_mem_gib: Vec<f64>,
    ) -> Self {
        let pools = pool_mem_gib.len().max(1);
        TraceConfig {
            kind,
            duration_s,
            seed: 0xA0EA,
            cluster_gpus,
            pool_weights: vec![1.0; pools],
            pool_mem_gib,
            deadline_fraction: 0.0,
            load_scale: 1.0,
            duration_scale: 1.0,
        }
    }
}

/// GPU-count menu users pick from, before feasibility lifting.
const GPU_MENU: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Popularity of each menu entry (small jobs dominate production traces).
const GPU_WEIGHTS: [f64; 7] = [0.22, 0.20, 0.20, 0.16, 0.12, 0.07, 0.03];

/// Size-rank popularity inside a family (Fig. 15: small models dominate).
const SIZE_WEIGHTS: [f64; 5] = [0.34, 0.27, 0.19, 0.12, 0.08];
/// Family mix: WideResNet / BERT / MoE.
const FAMILY_WEIGHTS: [f64; 3] = [0.30, 0.40, 0.30];

/// Minimum power-of-two GPU count on which `params_b` billions of
/// parameters can hold their 16 B/param training state in `mem_gib`
/// devices, assuming ideal sharding and a memory head-room factor.
#[must_use]
pub fn min_feasible_gpus(params_b: f64, mem_gib: f64) -> usize {
    let state_gib = params_b * 16.0; // 16 bytes per parameter.
    let per_gpu = mem_gib * 0.70; // Head-room for activations.
    let need = (state_gib / per_gpu).ceil().max(1.0) as usize;
    need.next_power_of_two()
}

/// Effective-throughput proxy used to convert a target duration into an
/// iteration count (the simulator computes real durations later).
fn proxy_iter_time(model: &ModelConfig, flops_fwd: f64, gpus: usize) -> f64 {
    let effective_flops = gpus as f64 * 120e12 * 0.45;
    3.0 * flops_fwd * model.global_batch as f64 / effective_flops
}

/// Pull-based generator over a [`TraceConfig`]: yields the exact job
/// sequence [`generate`] would collect, one arrival at a time, without
/// ever materialising the trace. Fleet-scale drivers pump this straight
/// into the incremental engine so memory stays flat in trace length.
///
/// # Examples
///
/// ```
/// use arena_trace::{generate, GenSource, TraceConfig, TraceKind};
///
/// let cfg = TraceConfig::new(TraceKind::HeliosModerate, 3600.0, 64, vec![48.0, 24.0]);
/// let streamed: Vec<_> = GenSource::new(&cfg).collect();
/// assert_eq!(streamed.len(), generate(&cfg).len());
/// ```
#[derive(Debug)]
pub struct GenSource {
    cfg: TraceConfig,
    rng: StdRng,
    flops_cache: HashMap<String, f64>,
    base_rate: f64,
    dur_median: f64,
    dur_sigma: f64,
    t: f64,
    id: u64,
    done: bool,
}

impl GenSource {
    /// A generator positioned before the first arrival of `cfg`'s trace.
    ///
    /// # Panics
    ///
    /// Panics if the config carries no pools or mismatched pool weights.
    #[must_use]
    pub fn new(cfg: &TraceConfig) -> Self {
        assert!(!cfg.pool_mem_gib.is_empty(), "need at least one pool");
        assert_eq!(cfg.pool_mem_gib.len(), cfg.pool_weights.len());
        let rng = StdRng::seed_from_u64(cfg.seed);

        // Calibrate the base arrival rate so that offered GPU demand matches
        // the kind's load: rate = load x capacity / (E[duration] x E[gpus]).
        let (base_median, dur_sigma) = cfg.kind.duration_dist();
        let dur_median = base_median * cfg.duration_scale;
        let e_duration = dur_median * (dur_sigma * dur_sigma / 2.0).exp();
        let e_gpus: f64 = GPU_MENU
            .iter()
            .zip(&GPU_WEIGHTS)
            .map(|(&g, &w)| g as f64 * w)
            .sum::<f64>()
            / GPU_WEIGHTS.iter().sum::<f64>();
        let base_rate =
            cfg.kind.load() * cfg.load_scale * cfg.cluster_gpus as f64 / (e_duration * e_gpus);

        GenSource {
            cfg: cfg.clone(),
            rng,
            flops_cache: HashMap::new(),
            base_rate,
            dur_median,
            dur_sigma,
            t: 0.0,
            id: 0,
            done: false,
        }
    }

    /// Jobs yielded so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.id
    }
}

impl Iterator for GenSource {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.done {
            return None;
        }
        let cfg = &self.cfg;

        // Diurnal modulation of the Poisson rate.
        let diurnal = 1.0 + 0.6 * (2.0 * std::f64::consts::PI * self.t / 86_400.0).sin();
        let rate = (self.base_rate * diurnal).max(self.base_rate * 0.2);
        self.t += exponential(&mut self.rng, rate);
        if self.t > cfg.duration_s {
            self.done = true;
            return None;
        }
        let t = self.t;

        // Model: family, size rank (small-dominated), batch.
        let family = ModelFamily::all()[weighted_choice(&mut self.rng, &FAMILY_WEIGHTS)];
        let sizes = family.table2_sizes();
        let rank = weighted_choice(&mut self.rng, &SIZE_WEIGHTS[..sizes.len()]);
        let batches = family.table2_batches();
        let batch = batches[self.rng.random_range(0..batches.len())];
        let model = ModelConfig::new(family, sizes[rank], batch);

        // Pool and a feasible initial GPU count.
        let pool = weighted_choice(&mut self.rng, &cfg.pool_weights);
        let sampled = GPU_MENU[weighted_choice(&mut self.rng, &GPU_WEIGHTS)];
        let floor = min_feasible_gpus(model.params_b, cfg.pool_mem_gib[pool]);
        let requested_gpus = sampled.max(floor).min(64);

        // Duration target -> iterations via the throughput proxy.
        let duration =
            lognormal(&mut self.rng, self.dur_median, self.dur_sigma).clamp(60.0, 1_209_600.0);
        let flops = *self
            .flops_cache
            .entry(model.name())
            .or_insert_with(|| model.build().total_flops_fwd());
        let iters = (duration / proxy_iter_time(&model, flops, requested_gpus))
            .round()
            .max(20.0) as u64;

        let deadline_s = if self.rng.random::<f64>() < cfg.deadline_fraction {
            let slack = 1.5 + 2.5 * self.rng.random::<f64>();
            Some(t + duration * slack)
        } else {
            None
        };

        let id = self.id;
        self.id += 1;
        Some(JobSpec {
            id,
            name: format!("job{id}-{}", model.name()),
            submit_s: t,
            model,
            iterations: iters,
            requested_gpus,
            requested_pool: pool,
            deadline_s,
        })
    }
}

/// Generates a seeded synthetic trace.
///
/// # Examples
///
/// ```
/// use arena_trace::{generate, TraceConfig, TraceKind};
///
/// let cfg = TraceConfig::new(TraceKind::HeliosModerate, 3600.0, 64, vec![48.0, 24.0]);
/// let jobs = generate(&cfg);
/// assert!(!jobs.is_empty());
/// assert!(jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
/// // Determinism: the same config yields the same trace.
/// assert_eq!(generate(&cfg).len(), jobs.len());
/// ```
///
/// # Panics
///
/// Panics if the config carries no pools or non-positive weights.
#[must_use]
pub fn generate(cfg: &TraceConfig) -> Vec<JobSpec> {
    GenSource::new(cfg).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed_cfg(kind: TraceKind) -> TraceConfig {
        TraceConfig::new(kind, 6.0 * 3600.0, 64, vec![48.0, 24.0])
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = testbed_cfg(TraceKind::PhillyHeavy);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit_s, y.submit_s);
            assert_eq!(x.requested_gpus, y.requested_gpus);
            assert_eq!(x.model.name(), y.model.name());
        }
    }

    #[test]
    fn philly_testbed_scale_matches_paper() {
        // §8.3 uses a 6-hour trace of 244 jobs on 64 GPUs; ours should land
        // in the same regime (within 2x).
        let jobs = generate(&testbed_cfg(TraceKind::PhillyHeavy));
        assert!(
            jobs.len() > 100 && jobs.len() < 500,
            "6h/64-GPU Philly trace has {} jobs",
            jobs.len()
        );
    }

    #[test]
    fn submissions_are_ordered_and_bounded() {
        let cfg = testbed_cfg(TraceKind::HeliosModerate);
        let jobs = generate(&cfg);
        for w in jobs.windows(2) {
            assert!(w[0].submit_s <= w[1].submit_s);
        }
        assert!(jobs.iter().all(|j| j.submit_s <= cfg.duration_s));
        assert!(jobs.iter().all(|j| j.iterations >= 20));
        assert!(jobs.iter().all(|j| j.requested_gpus.is_power_of_two()));
    }

    #[test]
    fn load_ordering_across_kinds() {
        let heavy = generate(&testbed_cfg(TraceKind::PhillyHeavy)).len();
        let moderate = generate(&testbed_cfg(TraceKind::HeliosModerate)).len();
        let low = generate(&testbed_cfg(TraceKind::PaiLow)).len();
        assert!(heavy > moderate && moderate > low);
    }

    #[test]
    fn big_models_get_feasible_gpu_counts() {
        let jobs = generate(&testbed_cfg(TraceKind::PhillyHeavy));
        for j in &jobs {
            let mem = [48.0, 24.0][j.requested_pool];
            assert!(
                j.requested_gpus >= min_feasible_gpus(j.model.params_b, mem),
                "{} got only {} GPUs on {mem} GiB pool",
                j.name,
                j.requested_gpus
            );
        }
    }

    #[test]
    fn min_feasible_gpus_scales_with_size() {
        assert_eq!(min_feasible_gpus(0.5, 48.0), 1);
        assert!(min_feasible_gpus(6.7, 24.0) >= 8);
        assert!(min_feasible_gpus(27.0, 24.0) >= 32);
        assert!(min_feasible_gpus(27.0, 48.0) >= 16);
    }

    #[test]
    fn deadline_fraction_respected() {
        let mut cfg = testbed_cfg(TraceKind::PhillyHeavy);
        cfg.deadline_fraction = 1.0;
        let jobs = generate(&cfg);
        assert!(jobs.iter().all(|j| j.deadline_s.is_some()));
        for j in &jobs {
            assert!(j.deadline_s.unwrap() > j.submit_s);
        }
        cfg.deadline_fraction = 0.0;
        assert!(generate(&cfg).iter().all(|j| j.deadline_s.is_none()));
    }

    #[test]
    fn model_mix_covers_all_families() {
        let jobs = generate(&testbed_cfg(TraceKind::PhillyHeavy));
        for family in ModelFamily::all() {
            assert!(
                jobs.iter().any(|j| j.model.family == family),
                "{family} missing from trace"
            );
        }
    }
}
