//! Pull-based trace sources for fleet-scale streaming ingestion.
//!
//! Million-job traces do not fit comfortably in memory — and never need
//! to: the incremental engine consumes arrivals strictly in submission
//! order, so a trace can be *pulled* one job at a time from a generator
//! or a file. [`TraceSource`] is that seam. The three implementations —
//! [`crate::GenSource`] (synthetic, seeded), [`JsonlSource`] (one JSON
//! job per line, constant memory) and [`VecSource`] (in-memory adapter
//! for tests and small traces) — all yield the same `JobSpec` values
//! batch drivers see, so streaming is byte-invisible in simulated
//! output.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::gen::GenSource;
use crate::job::JobSpec;

/// A pull-based stream of jobs in nondecreasing `submit_s` order.
///
/// Sources are fallible (file-backed ones do I/O per pull); infallible
/// sources wrap their items in `Ok`. Exhaustion is `Ok(None)` and is
/// sticky: once a source returns `None` it keeps returning `None`.
pub trait TraceSource {
    /// Pulls the next job, or `Ok(None)` at end of trace.
    ///
    /// # Errors
    ///
    /// Returns an error when the underlying medium fails (unreadable
    /// file, malformed line, out-of-order submission).
    fn next_job(&mut self) -> std::io::Result<Option<JobSpec>>;
}

impl TraceSource for GenSource {
    fn next_job(&mut self) -> std::io::Result<Option<JobSpec>> {
        Ok(self.next())
    }
}

/// An in-memory trace adapted to the streaming interface. Used by tests
/// and by callers that already hold a `Vec<JobSpec>`.
#[derive(Debug)]
pub struct VecSource {
    jobs: std::vec::IntoIter<JobSpec>,
}

impl VecSource {
    /// Wraps an already-sorted trace.
    #[must_use]
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        VecSource {
            jobs: jobs.into_iter(),
        }
    }
}

impl TraceSource for VecSource {
    fn next_job(&mut self) -> std::io::Result<Option<JobSpec>> {
        Ok(self.jobs.next())
    }
}

/// Caps another source at an exact job count. Fleet-scale benches use
/// it to cut an open-ended generator ([`crate::GenSource`] with a huge
/// duration) down to "exactly N arrivals" without materialising them.
#[derive(Debug)]
pub struct TakeSource<S> {
    inner: S,
    left: u64,
}

impl<S: TraceSource> TakeSource<S> {
    /// A source yielding at most `n` jobs from `inner`.
    #[must_use]
    pub fn new(inner: S, n: u64) -> Self {
        TakeSource { inner, left: n }
    }
}

impl<S: TraceSource> TraceSource for TakeSource<S> {
    fn next_job(&mut self) -> std::io::Result<Option<JobSpec>> {
        if self.left == 0 {
            return Ok(None);
        }
        let job = self.inner.next_job()?;
        if job.is_some() {
            self.left -= 1;
        }
        Ok(job)
    }
}

/// A JSONL-backed trace source: one `JobSpec` JSON object per line,
/// read through a buffered reader so memory stays constant no matter
/// how long the trace file is. Submission order is validated on the
/// fly, mirroring [`crate::load_json`].
#[derive(Debug)]
pub struct JsonlSource<R: BufRead> {
    reader: R,
    line: String,
    lineno: u64,
    last_submit_s: f64,
    done: bool,
}

impl JsonlSource<BufReader<File>> {
    /// Opens a trace file written by [`save_jsonl`] or [`JsonlWriter`].
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be opened.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlSource::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> JsonlSource<R> {
    /// Wraps any buffered reader yielding one JSON job per line.
    #[must_use]
    pub fn new(reader: R) -> Self {
        JsonlSource {
            reader,
            line: String::new(),
            lineno: 0,
            last_submit_s: f64::NEG_INFINITY,
            done: false,
        }
    }
}

impl<R: BufRead> TraceSource for JsonlSource<R> {
    fn next_job(&mut self) -> std::io::Result<Option<JobSpec>> {
        loop {
            if self.done {
                return Ok(None);
            }
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                self.done = true;
                return Ok(None);
            }
            self.lineno += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue; // Blank lines are tolerated (trailing newline).
            }
            let job: JobSpec = serde_json::from_str(trimmed)
                .map_err(|e| std::io::Error::other(format!("trace line {}: {e:?}", self.lineno)))?;
            if job.submit_s < self.last_submit_s {
                self.done = true;
                return Err(std::io::Error::other(format!(
                    "trace line {}: submit_s {} regresses below {}",
                    self.lineno, job.submit_s, self.last_submit_s
                )));
            }
            self.last_submit_s = job.submit_s;
            return Ok(Some(job));
        }
    }
}

/// An incremental JSONL trace writer: streams jobs to disk one line at
/// a time, so a million-job trace can be exported without ever holding
/// it in memory.
#[derive(Debug)]
pub struct JsonlWriter {
    out: BufWriter<File>,
    written: u64,
}

impl JsonlWriter {
    /// Creates (truncates) the trace file.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(JsonlWriter {
            out: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Appends one job as a single JSON line.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialisation error.
    pub fn write_job(&mut self, job: &JobSpec) -> std::io::Result<()> {
        let line =
            serde_json::to_string(job).map_err(|e| std::io::Error::other(format!("{e:?}")))?;
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Jobs written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Saves a trace in the one-job-per-line JSONL format [`JsonlSource`]
/// reads.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn save_jsonl<P: AsRef<Path>>(path: P, jobs: &[JobSpec]) -> std::io::Result<()> {
    let mut w = JsonlWriter::create(path)?;
    for job in jobs {
        w.write_job(job)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TraceConfig, TraceKind};

    fn cfg() -> TraceConfig {
        TraceConfig::new(TraceKind::PaiLow, 2.0 * 3600.0, 64, vec![48.0, 24.0])
    }

    fn drain(src: &mut dyn TraceSource) -> Vec<JobSpec> {
        let mut out = Vec::new();
        while let Some(j) = src.next_job().unwrap() {
            out.push(j);
        }
        out
    }

    fn assert_same(a: &[JobSpec], b: &[JobSpec]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            assert_eq!(x.submit_s.to_bits(), y.submit_s.to_bits());
            assert_eq!(x.model.name(), y.model.name());
            assert_eq!(x.model.global_batch, y.model.global_batch);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.requested_gpus, y.requested_gpus);
            assert_eq!(x.requested_pool, y.requested_pool);
            assert_eq!(
                x.deadline_s.map(f64::to_bits),
                y.deadline_s.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn gen_source_streams_the_batch_trace_exactly() {
        let batch = generate(&cfg());
        let streamed = drain(&mut GenSource::new(&cfg()));
        assert_same(&batch, &streamed);
        // Exhaustion is sticky.
        let mut src = GenSource::new(&cfg());
        while src.next_job().unwrap().is_some() {}
        assert!(src.next_job().unwrap().is_none());
    }

    #[test]
    fn vec_source_round_trips() {
        let batch = generate(&cfg());
        let streamed = drain(&mut VecSource::new(batch.clone()));
        assert_same(&batch, &streamed);
    }

    #[test]
    fn jsonl_round_trips_bitwise() {
        let batch = generate(&cfg());
        let path =
            std::env::temp_dir().join(format!("arena-trace-jsonl-{}.jsonl", std::process::id()));
        save_jsonl(&path, &batch).unwrap();
        let loaded = drain(&mut JsonlSource::open(&path).unwrap());
        assert_same(&batch, &loaded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn jsonl_rejects_out_of_order_lines() {
        let mut jobs = generate(&cfg());
        assert!(jobs.len() >= 2);
        jobs.swap(0, 1);
        let path =
            std::env::temp_dir().join(format!("arena-trace-unsorted-{}.jsonl", std::process::id()));
        save_jsonl(&path, &jobs).unwrap();
        let mut src = JsonlSource::open(&path).unwrap();
        let mut err = None;
        loop {
            match src.next_job() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.is_some(), "out-of-order line must be rejected");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn take_source_caps_the_count_and_stays_exhausted() {
        let batch = generate(&cfg());
        assert!(batch.len() > 3, "fixture too small");
        let mut capped = TakeSource::new(VecSource::new(batch.clone()), 3);
        let got = drain(&mut capped);
        assert_same(&batch[..3], &got);
        assert!(capped.next_job().unwrap().is_none(), "exhaustion is sticky");
        // A cap beyond the trace length is the identity.
        let mut wide = TakeSource::new(VecSource::new(batch.clone()), u64::MAX);
        assert_same(&batch, &drain(&mut wide));
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let mut src = JsonlSource::new(std::io::Cursor::new(b"{not json}\n".to_vec()));
        assert!(src.next_job().is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let batch = generate(&cfg());
        let mut text = String::new();
        for j in &batch {
            text.push_str(&serde_json::to_string(j).unwrap());
            text.push_str("\n\n");
        }
        let loaded = drain(&mut JsonlSource::new(std::io::Cursor::new(
            text.into_bytes(),
        )));
        assert_same(&batch, &loaded);
    }
}
