//! Seeded node-failure traces.
//!
//! Production GPU clusters lose servers continuously — hardware faults,
//! ECC storms, NIC flaps — and large-model training amplifies every loss
//! because a job spans many nodes. This module generates deterministic
//! failure/repair schedules the cluster simulator injects alongside a job
//! trace: per-node exponential failures parameterised by an MTBF,
//! log-normal repair delays, and (optionally) correlated rack failures
//! that take down a contiguous group of nodes at once.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::rng::{exponential, lognormal};

/// What happens to a node at a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// The node crashes; jobs on it are evicted.
    Failure,
    /// The node returns to service.
    Repair,
}

/// One scheduled health transition of one node.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultEvent {
    /// Simulation time of the transition, seconds.
    pub time_s: f64,
    /// Pool (GPU type) index of the node.
    pub pool: usize,
    /// Node index within the pool.
    pub node: usize,
    /// Transition kind.
    pub kind: FaultKind,
}

/// Configuration of a synthetic fault trace.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Mean time between failures of a single node, seconds. `None`
    /// disables failures entirely (the zero-fault baseline).
    pub mtbf_s: Option<f64>,
    /// Median node repair time, seconds.
    pub repair_median_s: f64,
    /// Log-space sigma of the repair-time distribution.
    pub repair_sigma: f64,
    /// Probability that a failure is a rack-level event taking down the
    /// node's whole rack (`rack_size` adjacent nodes) at once.
    pub correlated_rack_prob: f64,
    /// Nodes per rack for correlated failures.
    pub rack_size: usize,
    /// RNG seed; the same config always yields the same fault trace.
    pub seed: u64,
}

impl FaultConfig {
    /// A config with a given per-node MTBF and defaults for the rest:
    /// half-hour median repairs, no correlated rack failures.
    #[must_use]
    pub fn with_mtbf(mtbf_s: f64) -> Self {
        FaultConfig {
            mtbf_s: Some(mtbf_s),
            repair_median_s: 1800.0,
            repair_sigma: 0.5,
            correlated_rack_prob: 0.0,
            rack_size: 4,
            seed: 0xFA17,
        }
    }

    /// The zero-fault baseline: no failures are ever generated.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            mtbf_s: None,
            repair_median_s: 1800.0,
            repair_sigma: 0.5,
            correlated_rack_prob: 0.0,
            rack_size: 4,
            seed: 0xFA17,
        }
    }
}

/// Generates a seeded fault schedule for a cluster described by the node
/// count of each pool, covering `[0, horizon_s)`.
///
/// Every generated `Failure` is paired with a later `Repair` of the same
/// node (repairs may land past the horizon so that no node stays dead
/// forever), events are sorted by time, and a node that is already down
/// draws no new failures until it is repaired.
///
/// # Panics
///
/// Panics if `mtbf_s` or the repair distribution is non-positive.
#[must_use]
pub fn generate_faults(cfg: &FaultConfig, pool_nodes: &[usize], horizon_s: f64) -> Vec<FaultEvent> {
    let Some(mtbf) = cfg.mtbf_s else {
        return Vec::new();
    };
    assert!(mtbf > 0.0, "MTBF must be positive");
    assert!(cfg.repair_median_s > 0.0, "repair median must be positive");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut events = Vec::new();

    for (pool, &nodes) in pool_nodes.iter().enumerate() {
        for node in 0..nodes {
            // Walk this node's alternating failure/repair timeline. Using
            // an independent per-node renewal process keeps the schedule
            // stable when other pools change size.
            let mut t = 0.0_f64;
            loop {
                t += exponential(&mut rng, 1.0 / mtbf);
                if t >= horizon_s {
                    break;
                }
                let down_for = lognormal(&mut rng, cfg.repair_median_s, cfg.repair_sigma);
                let rack_wide = cfg.correlated_rack_prob > 0.0
                    && rng.random::<f64>() < cfg.correlated_rack_prob;
                let victims: Vec<usize> = if rack_wide {
                    let rack = node / cfg.rack_size.max(1);
                    let start = rack * cfg.rack_size.max(1);
                    (start..(start + cfg.rack_size.max(1)).min(nodes)).collect()
                } else {
                    vec![node]
                };
                for victim in victims {
                    events.push(FaultEvent {
                        time_s: t,
                        pool,
                        node: victim,
                        kind: FaultKind::Failure,
                    });
                    events.push(FaultEvent {
                        time_s: t + down_for,
                        pool,
                        node: victim,
                        kind: FaultKind::Repair,
                    });
                }
                t += down_for;
            }
        }
    }

    // Deterministic order: time, then pool/node, with repairs after
    // failures at equal timestamps.
    events.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .unwrap()
            .then(a.pool.cmp(&b.pool))
            .then(a.node.cmp(&b.node))
            .then((a.kind == FaultKind::Repair).cmp(&(b.kind == FaultKind::Repair)))
    });

    // A rack-wide failure can overlap a victim node's own schedule; drop
    // transitions that repeat the node's current state so the simulator
    // sees a clean alternating sequence per node.
    let mut down: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    events.retain(|e| match e.kind {
        FaultKind::Failure => down.insert((e.pool, e.node)),
        FaultKind::Repair => down.remove(&(e.pool, e.node)),
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mtbf_means_no_faults() {
        assert!(generate_faults(&FaultConfig::none(), &[8, 8], 1e6).is_empty());
    }

    #[test]
    fn deterministic_and_sorted() {
        let cfg = FaultConfig::with_mtbf(20_000.0);
        let a = generate_faults(&cfg, &[16, 8], 86_400.0);
        let b = generate_faults(&cfg, &[16, 8], 86_400.0);
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "a day at 20k-s MTBF over 24 nodes must fault"
        );
        assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn failures_alternate_with_repairs_per_node() {
        let cfg = FaultConfig::with_mtbf(10_000.0);
        let events = generate_faults(&cfg, &[8], 86_400.0 * 3.0);
        let mut down = std::collections::HashSet::new();
        let mut failures = 0;
        for e in &events {
            match e.kind {
                FaultKind::Failure => {
                    assert!(down.insert((e.pool, e.node)), "double failure at {e:?}");
                    failures += 1;
                }
                FaultKind::Repair => {
                    assert!(down.remove(&(e.pool, e.node)), "repair of healthy {e:?}");
                }
            }
        }
        assert!(failures > 0);
        // Every failure has a matching repair (possibly past the horizon).
        assert!(down.is_empty());
    }

    #[test]
    fn lower_mtbf_means_more_failures() {
        let count = |mtbf: f64| {
            generate_faults(&FaultConfig::with_mtbf(mtbf), &[16], 86_400.0 * 7.0)
                .iter()
                .filter(|e| e.kind == FaultKind::Failure)
                .count()
        };
        assert!(count(5_000.0) > count(50_000.0));
    }

    #[test]
    fn correlated_failures_hit_whole_racks() {
        let mut cfg = FaultConfig::with_mtbf(30_000.0);
        cfg.correlated_rack_prob = 1.0;
        cfg.rack_size = 4;
        let events = generate_faults(&cfg, &[8], 86_400.0);
        // With every failure rack-wide, failures arrive in groups whose
        // node indices cover a full rack.
        let failures: Vec<&FaultEvent> = events
            .iter()
            .filter(|e| e.kind == FaultKind::Failure)
            .collect();
        assert!(!failures.is_empty());
        for f in &failures {
            let rack_start = (f.node / 4) * 4;
            let t = f.time_s;
            let group: Vec<usize> = failures
                .iter()
                .filter(|g| (g.time_s - t).abs() < 1e-9)
                .map(|g| g.node)
                .collect();
            // The co-failing group is contained in one rack.
            assert!(group
                .iter()
                .all(|&n| n / 4 == rack_start / 4 || n == f.node));
        }
    }

    #[test]
    fn faults_respect_pool_sizes() {
        let cfg = FaultConfig::with_mtbf(5_000.0);
        let events = generate_faults(&cfg, &[4, 2], 86_400.0 * 7.0);
        assert!(events.iter().all(|e| match e.pool {
            0 => e.node < 4,
            1 => e.node < 2,
            _ => false,
        }));
    }
}
