//! Job records.

use serde::{Deserialize, Serialize};

use arena_model::ModelConfig;

/// One training job as submitted to the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job id (dense, trace order).
    pub id: u64,
    /// Display name, e.g. `"job17-BERT-1.3B"`.
    pub name: String,
    /// Submission time, seconds from trace start.
    pub submit_s: f64,
    /// The model configuration to train.
    pub model: ModelConfig,
    /// Total training iterations.
    pub iterations: u64,
    /// The user-specified initial GPU count `N_G` (§6.1), a power of two.
    pub requested_gpus: usize,
    /// Index of the user's preferred GPU pool in the target cluster.
    pub requested_pool: usize,
    /// Optional completion deadline, seconds from trace start.
    pub deadline_s: Option<f64>,
}

impl JobSpec {
    /// Total samples the job must process.
    #[must_use]
    pub fn total_samples(&self) -> f64 {
        self.iterations as f64 * self.model.global_batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arena_model::zoo::ModelFamily;

    #[test]
    fn total_samples() {
        let j = JobSpec {
            id: 0,
            name: "t".into(),
            submit_s: 0.0,
            model: ModelConfig::new(ModelFamily::Bert, 1.3, 256),
            iterations: 100,
            requested_gpus: 8,
            requested_pool: 0,
            deadline_s: None,
        };
        assert_eq!(j.total_samples(), 25_600.0);
    }
}
