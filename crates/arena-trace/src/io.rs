//! Trace persistence: save and load job traces as JSON.
//!
//! Generated traces are deterministic, but persisting them lets external
//! tooling inspect workloads, lets experiments pin an exact trace file,
//! and provides the natural adapter seam for replaying *real* production
//! traces (convert Philly/Helios/PAI CSVs to this JSON schema).

use std::path::Path;

use crate::job::JobSpec;

/// Saves a trace as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn save_json<P: AsRef<Path>>(path: P, jobs: &[JobSpec]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(file, jobs).map_err(std::io::Error::other)
}

/// Loads a trace saved by [`save_json`], re-validating submission order.
///
/// # Errors
///
/// Returns an error when the file is unreadable, is not valid trace JSON,
/// or its jobs are not sorted by submission time.
pub fn load_json<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<JobSpec>> {
    let file = std::fs::File::open(path)?;
    let jobs: Vec<JobSpec> = serde_json::from_reader(file).map_err(std::io::Error::other)?;
    if !jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s) {
        return Err(std::io::Error::other("trace not sorted by submit_s"));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TraceConfig, TraceKind};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("arena-trace-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_trace() {
        let cfg = TraceConfig::new(TraceKind::PaiLow, 6.0 * 3600.0, 64, vec![24.0]);
        let jobs = generate(&cfg);
        let path = tmp("roundtrip");
        save_json(&path, &jobs).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(jobs.len(), loaded.len());
        for (a, b) in jobs.iter().zip(&loaded) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit_s, b.submit_s);
            assert_eq!(a.model.name(), b.model.name());
            assert_eq!(a.requested_gpus, b.requested_gpus);
            assert_eq!(a.iterations, b.iterations);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unsorted_trace_rejected_on_load() {
        let cfg = TraceConfig::new(TraceKind::PaiLow, 6.0 * 3600.0, 64, vec![24.0]);
        let mut jobs = generate(&cfg);
        assert!(jobs.len() >= 2, "trace too small for the test");
        jobs.swap(0, 1);
        let path = tmp("unsorted");
        save_json(&path, &jobs).unwrap();
        assert!(load_json(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_json("/nonexistent/arena-trace.json").is_err());
    }
}
