//! Byte-accounted, budgeted containers for long-running services.
//!
//! Fleet-scale runs keep the engine resident for millions of jobs, so
//! every cache the scheduler grows must answer two questions: *how many
//! bytes is it holding* and *what gets dropped when a budget is hit*.
//! This module is the shared vocabulary:
//!
//! * [`MemSize`] — a deep-size estimator in the spirit of byte-budgeted
//!   cache policies from production Rust services. Estimates are
//!   **deterministic**: they derive from lengths, never from allocator
//!   capacities, so two runs of the same workload account identical
//!   byte totals and evict identical entries.
//! * [`BudgetedMap`] — a hash map with an insertion-order clock and a
//!   byte budget. Eviction is strictly oldest-first-inserted (a
//!   generation clock, never hash-iteration order), which keeps
//!   eviction — and therefore every downstream recompute — a pure
//!   function of the insertion sequence.
//! * [`MemSection`] — one line of a memory ledger: a named component's
//!   live bytes, entry count, budget and eviction counter, ready to be
//!   exported as registry gauges.
//!
//! Budgets default to *unlimited* everywhere; byte-identity suites run
//! with accounting on and eviction off, and stay byte-identical because
//! the accounting itself never influences values — only retention.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Environment variable carrying the total cache byte budget for a run
/// (distributed across the engine's budgeted components).
pub const MEM_BUDGET_ENV: &str = "ARENA_MEM_BUDGET_BYTES";

/// Reads [`MEM_BUDGET_ENV`]; `None` (unlimited) when unset or
/// unparsable.
#[must_use]
pub fn mem_budget_from_env() -> Option<usize> {
    std::env::var(MEM_BUDGET_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
}

/// Deterministic deep-size estimate in bytes.
///
/// Implementations count the value's own footprint plus owned heap
/// data, computed from *lengths* (not allocator capacities) so the
/// estimate is identical across runs and platforms with the same
/// workload. Estimates favour being cheap and stable over being exact.
pub trait MemSize {
    /// Estimated bytes owned by `self`, including `size_of::<Self>()`.
    fn mem_bytes(&self) -> usize;
}

macro_rules! mem_size_by_value {
    ($($t:ty),*) => {
        $(impl MemSize for $t {
            fn mem_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

mem_size_by_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl MemSize for String {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn mem_bytes(&self) -> usize {
        match self {
            // The niche usually makes Option<T> the size of T; count the
            // payload's own estimate either way.
            Some(v) => v.mem_bytes(),
            None => std::mem::size_of::<Self>(),
        }
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(MemSize::mem_bytes).sum::<usize>()
    }
}

impl<T: MemSize> MemSize for std::sync::Arc<T> {
    fn mem_bytes(&self) -> usize {
        // Attribute the pointee to every holder: cheaper than reference
        // counting shares, and conservative (over-counts shared data).
        std::mem::size_of::<usize>() + (**self).mem_bytes()
    }
}

impl<A: MemSize, B: MemSize> MemSize for (A, B) {
    fn mem_bytes(&self) -> usize {
        self.0.mem_bytes() + self.1.mem_bytes()
    }
}

impl<A: MemSize, B: MemSize, C: MemSize> MemSize for (A, B, C) {
    fn mem_bytes(&self) -> usize {
        self.0.mem_bytes() + self.1.mem_bytes() + self.2.mem_bytes()
    }
}

impl<A: MemSize, B: MemSize, C: MemSize, D: MemSize> MemSize for (A, B, C, D) {
    fn mem_bytes(&self) -> usize {
        self.0.mem_bytes() + self.1.mem_bytes() + self.2.mem_bytes() + self.3.mem_bytes()
    }
}

/// Fixed per-entry overhead charged by [`BudgetedMap`] on top of key and
/// value estimates: hash-table slot, control byte and order-clock entry.
pub const MAP_ENTRY_OVERHEAD: usize = 48;

/// One named component in a memory ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSection {
    /// Component name, dot-separated (e.g. `estimator.profiles`).
    pub name: String,
    /// Live accounted bytes.
    pub bytes: usize,
    /// Live entries (or samples) behind those bytes.
    pub entries: usize,
    /// Byte budget, `None` when unlimited.
    pub budget_bytes: Option<usize>,
    /// Entries evicted to stay under budget since creation.
    pub evictions: u64,
}

impl MemSection {
    /// A section with no budget and no evictions — report-only
    /// components (flight recorder, timelines) use this.
    #[must_use]
    pub fn unbudgeted(name: &str, bytes: usize, entries: usize) -> Self {
        MemSection {
            name: name.to_string(),
            bytes,
            entries,
            budget_bytes: None,
            evictions: 0,
        }
    }
}

/// A hash map with deterministic byte accounting and oldest-first
/// eviction under a byte budget.
///
/// The eviction order is the *first-insertion* order of live keys — a
/// generation clock. Re-inserting an existing key replaces its value
/// but keeps its clock position, so the eviction sequence is a pure
/// function of the key-insertion sequence and never of hash iteration
/// order. With `budget = None` the map never evicts and behaves exactly
/// like a plain `HashMap` plus counters.
#[derive(Debug)]
pub struct BudgetedMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    bytes: usize,
    budget: Option<usize>,
    evictions: u64,
}

impl<K: Clone + Eq + Hash + MemSize, V: MemSize> BudgetedMap<K, V> {
    /// An empty map under `budget` bytes (`None` = unlimited).
    #[must_use]
    pub fn new(budget: Option<usize>) -> Self {
        BudgetedMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            budget,
            evictions: 0,
        }
    }

    fn entry_cost(k: &K, v: &V) -> usize {
        k.mem_bytes() + v.mem_bytes() + MAP_ENTRY_OVERHEAD
    }

    /// Looks a key up. Lookups never touch the eviction clock.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k)
    }

    /// Whether `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Inserts (replacing any previous value for the key), then evicts
    /// oldest-first until back under budget. Returns how many entries
    /// were evicted. The just-inserted key is exempt from its own
    /// insertion's eviction sweep: a single entry larger than the whole
    /// budget still caches (and is the next sweep's first victim).
    pub fn insert(&mut self, k: K, v: V) -> usize {
        let cost = Self::entry_cost(&k, &v);
        if let Some(old) = self.map.insert(k.clone(), v) {
            let old_cost = Self::entry_cost(&k, &old);
            self.bytes = self.bytes - old_cost + cost;
        } else {
            self.order.push_back(k.clone());
            self.bytes += cost;
        }
        let mut evicted = 0;
        if let Some(budget) = self.budget {
            while self.bytes > budget && self.order.len() > 1 {
                let oldest = self.order.pop_front().expect("non-empty order clock");
                if oldest == k {
                    // Keep the newest entry resident; rotate it to the
                    // back so the clock still holds every live key once.
                    self.order.push_back(oldest);
                    if self.order.len() == 1 {
                        break;
                    }
                    continue;
                }
                let old = self.map.remove(&oldest).expect("clock tracks live keys");
                self.bytes -= Self::entry_cost(&oldest, &old);
                self.evictions += 1;
                evicted += 1;
            }
        }
        evicted
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Live accounted bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The byte budget (`None` = unlimited).
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Entries evicted since creation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Replaces the budget; an immediate oldest-first sweep applies it.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
        if let Some(b) = budget {
            while self.bytes > b && self.order.len() > 1 {
                let oldest = self.order.pop_front().expect("non-empty order clock");
                let old = self.map.remove(&oldest).expect("clock tracks live keys");
                self.bytes -= Self::entry_cost(&oldest, &old);
                self.evictions += 1;
            }
        }
    }

    /// Drops every entry (the eviction counter survives).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }

    /// This map as one ledger section.
    #[must_use]
    pub fn section(&self, name: &str) -> MemSection {
        MemSection {
            name: name.to_string(),
            bytes: self.bytes,
            entries: self.map.len(),
            budget_bytes: self.budget,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_budget_parses_or_none() {
        // Not set in the test environment by default.
        std::env::remove_var(MEM_BUDGET_ENV);
        assert_eq!(mem_budget_from_env(), None);
        std::env::set_var(MEM_BUDGET_ENV, "1048576");
        assert_eq!(mem_budget_from_env(), Some(1_048_576));
        std::env::set_var(MEM_BUDGET_ENV, "not-a-number");
        assert_eq!(mem_budget_from_env(), None);
        std::env::remove_var(MEM_BUDGET_ENV);
    }

    #[test]
    fn mem_size_counts_heap_deterministically() {
        let s = String::from("hello");
        assert_eq!(s.mem_bytes(), std::mem::size_of::<String>() + 5);
        let mut v = Vec::with_capacity(100);
        v.extend([1_u64, 2, 3]);
        // Length, not capacity, drives the estimate.
        assert_eq!(v.mem_bytes(), std::mem::size_of::<Vec<u64>>() + 24);
    }

    #[test]
    fn unlimited_map_never_evicts() {
        let mut m: BudgetedMap<u64, String> = BudgetedMap::new(None);
        for i in 0..1000 {
            m.insert(i, format!("value-{i}"));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.evictions(), 0);
        assert!(m.bytes() > 0);
    }

    #[test]
    fn eviction_is_oldest_first() {
        // Budget fits roughly three entries.
        let per = 8 + std::mem::size_of::<String>() + 3 + MAP_ENTRY_OVERHEAD;
        let mut m: BudgetedMap<u64, String> = BudgetedMap::new(Some(3 * per));
        for i in 0..5_u64 {
            m.insert(i, format!("v{i:02}"));
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.evictions(), 2);
        assert!(!m.contains_key(&0) && !m.contains_key(&1));
        assert!(m.contains_key(&2) && m.contains_key(&3) && m.contains_key(&4));
    }

    #[test]
    fn reinsert_keeps_clock_position_and_adjusts_bytes() {
        let mut m: BudgetedMap<u64, String> = BudgetedMap::new(None);
        m.insert(1, "a".repeat(10));
        let b1 = m.bytes();
        m.insert(1, "a".repeat(30));
        assert_eq!(m.len(), 1);
        assert_eq!(m.bytes(), b1 + 20);
        m.insert(1, "a".repeat(10));
        assert_eq!(m.bytes(), b1);
    }

    #[test]
    fn oversized_entry_still_caches() {
        let mut m: BudgetedMap<u64, String> = BudgetedMap::new(Some(1));
        m.insert(7, "way-over-budget".to_string());
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&7));
        // The next insert evicts it.
        m.insert(8, "also-over".to_string());
        assert!(!m.contains_key(&7));
        assert!(m.contains_key(&8));
    }

    #[test]
    fn set_budget_sweeps_immediately() {
        let mut m: BudgetedMap<u64, u64> = BudgetedMap::new(None);
        for i in 0..10 {
            m.insert(i, i);
        }
        let per = 16 + MAP_ENTRY_OVERHEAD;
        m.set_budget(Some(2 * per));
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&8) && m.contains_key(&9));
        assert_eq!(m.evictions(), 8);
    }

    #[test]
    fn eviction_sequence_is_insertion_deterministic() {
        // Two maps fed the same sequence evict the same keys, whatever
        // the hash layout does.
        let budget = Some(5 * (16 + MAP_ENTRY_OVERHEAD));
        let mut a: BudgetedMap<u64, u64> = BudgetedMap::new(budget);
        let mut b: BudgetedMap<u64, u64> = BudgetedMap::new(budget);
        let keys = [
            3_u64, 14, 1, 59, 26, 5, 3, 58, 9, 7, 9, 3, 2, 38, 4, 6, 2, 6,
        ];
        for &k in &keys {
            a.insert(k, k * 2);
            b.insert(k, k * 2);
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.evictions(), b.evictions());
        for &k in &keys {
            assert_eq!(a.contains_key(&k), b.contains_key(&k), "key {k}");
        }
    }

    #[test]
    fn section_reports_the_ledger_line() {
        let mut m: BudgetedMap<u64, u64> = BudgetedMap::new(Some(1 << 20));
        m.insert(1, 1);
        let s = m.section("test.map");
        assert_eq!(s.name, "test.map");
        assert_eq!(s.entries, 1);
        assert_eq!(s.budget_bytes, Some(1 << 20));
        assert_eq!(s.bytes, m.bytes());
        assert_eq!(s.evictions, 0);
    }
}
