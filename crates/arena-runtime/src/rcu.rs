//! A wait-free single-cell RCU: readers load an `Arc` snapshot without
//! ever taking a lock; a writer publishes a replacement and defers
//! reclamation of the old snapshot until no reader can still be touching
//! it.
//!
//! This is the publication primitive behind the arena-server snapshot
//! hub (DESIGN.md §13): the decision thread `store`s a fresh immutable
//! snapshot after every burst it processes, and query threads `load`
//! whatever is current. Readers are wait-free — a `load` is one pin
//! increment, one pointer read, one `Arc` clone and one pin decrement —
//! and the writer never blocks on readers; it only *defers* freeing
//! retired pointers until it observes a quiescent moment.
//!
//! # Reclamation argument
//!
//! The cell holds a heap pointer to an `Arc<T>` handle. A reader pins
//! (increments a striped counter), reads the current pointer, clones the
//! `Arc` behind it, and unpins. The writer swaps in a new pointer,
//! pushes the old one onto a retire list, and frees the retirees only if
//! every pin stripe reads zero *after* the swap. All pin and pointer
//! operations are `SeqCst`, so they form one total order:
//!
//! * If the writer sees stripe `s` at zero, every reader pinned on `s`
//!   at swap time has already unpinned — its `Arc` clone is complete and
//!   owns its own strong reference, so freeing the retired handle (which
//!   merely drops one strong reference) cannot invalidate it.
//! * A reader that pins *after* the writer's zero-check necessarily
//!   pins after the swap in the total order, so its pointer read sees
//!   the new pointer (or an even newer one), never a freed retiree.
//!
//! If some stripe is non-zero the retiree simply stays on the list; a
//! later `store` (or `Drop`) reclaims it. With a single writer thread —
//! the arena-server daemon — the list is effectively bounded by the
//! number of publishes that race an in-flight read, in practice a
//! handful of entries.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Pin-count stripes; more stripes = less reader contention on the
/// shared counters. Eight covers typical query-thread counts.
const PIN_STRIPES: usize = 8;

/// Pads each stripe to its own cache line so pinning readers on
/// different stripes never false-share.
#[repr(align(64))]
struct PadCounter(AtomicUsize);

/// A lock-free snapshot cell: one current value, wait-free `load`,
/// swap-and-retire `store`.
pub struct RcuCell<T> {
    current: AtomicPtr<Arc<T>>,
    pins: [PadCounter; PIN_STRIPES],
    /// Pointers removed from `current` but possibly still being read.
    /// Touched only under the mutex, by writers and `Drop`.
    retired: Mutex<Vec<*mut Arc<T>>>,
}

// The raw pointers all target `Box<Arc<T>>` allocations owned by the
// cell; they are shared across threads only through the protocols above.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// A cell initially holding `value`.
    #[must_use]
    pub fn new(value: Arc<T>) -> Self {
        RcuCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(value))),
            pins: std::array::from_fn(|_| PadCounter(AtomicUsize::new(0))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Stripe for the calling thread: assigned once per thread from a
    /// global round-robin counter, so steady reader threads keep
    /// touching the same cache line.
    fn stripe() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % PIN_STRIPES;
        }
        STRIPE.with(|s| *s)
    }

    /// The current snapshot. Wait-free: never blocks, never spins.
    #[must_use]
    pub fn load(&self) -> Arc<T> {
        let stripe = &self.pins[Self::stripe()].0;
        stripe.fetch_add(1, Ordering::SeqCst);
        // Safety: `current` always points at a live `Box<Arc<T>>`; the
        // writer cannot free it while our stripe is pinned (see module
        // docs for the ordering argument).
        let snapshot = unsafe { (*self.current.load(Ordering::SeqCst)).clone() };
        stripe.fetch_sub(1, Ordering::SeqCst);
        snapshot
    }

    /// Publishes `value` as the new current snapshot and reclaims any
    /// retired snapshots no reader can still be touching.
    pub fn store(&self, value: Arc<T>) {
        let old = self
            .current
            .swap(Box::into_raw(Box::new(value)), Ordering::SeqCst);
        let mut retired = self.retired.lock().expect("rcu retire list poisoned");
        retired.push(old);
        // Quiescence check *after* the swap: any reader still pinned may
        // hold a retiree; any reader pinning later sees the new pointer.
        if self.pins.iter().all(|p| p.0.load(Ordering::SeqCst) == 0) {
            for ptr in retired.drain(..) {
                // Safety: no reader can reach `ptr` any more (argument
                // in the module docs), and it came from `Box::into_raw`.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }

    /// Retired snapshots awaiting reclamation (diagnostics/tests).
    #[must_use]
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("rcu retire list poisoned").len()
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers remain.
        for ptr in self
            .retired
            .get_mut()
            .expect("rcu retire list poisoned")
            .drain(..)
        {
            drop(unsafe { Box::from_raw(ptr) });
        }
        drop(unsafe { Box::from_raw(*self.current.get_mut()) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_sees_latest_store() {
        let cell = RcuCell::new(Arc::new(1_u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
    }

    /// Counts drops so reclamation (no leak, no double free) is visible.
    struct Tracked(u64, Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.1.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn quiescent_stores_reclaim_everything() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(Arc::new(Tracked(0, drops.clone())));
        for i in 1..=100 {
            cell.store(Arc::new(Tracked(i, drops.clone())));
        }
        // No reader held anything, so all but the current value are gone.
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(cell.load().0, 100);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 101);
    }

    #[test]
    fn held_snapshot_outlives_store() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(Arc::new(Tracked(0, drops.clone())));
        let held = cell.load();
        cell.store(Arc::new(Tracked(1, drops.clone())));
        // The old snapshot handle was retired and freed (the reader
        // finished its load), but `held` owns its own strong reference.
        assert_eq!(held.0, 0);
        assert_eq!(cell.load().0, 1);
        drop(held);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_and_writer_stress() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(RcuCell::new(Arc::new(Tracked(0, drops.clone()))));
        const STORES: u64 = 2_000;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0_u64;
                    let mut reads = 0_u64;
                    while last < STORES {
                        let snap = cell.load();
                        assert!(snap.0 >= last, "snapshot went backwards");
                        last = snap.0;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for i in 1..=STORES {
            cell.store(Arc::new(Tracked(i, drops.clone())));
        }
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
        let cell = Arc::try_unwrap(cell).unwrap_or_else(|_| panic!("readers done"));
        drop(cell);
        // Every snapshot ever created was dropped exactly once.
        assert_eq!(drops.load(Ordering::SeqCst) as u64, STORES + 1);
    }
}
