//! A zero-dependency deterministic worker pool.
//!
//! The scheduling hot path fans work out over OS threads (Cell
//! estimation across a candidate grid, whole policies in the `repro`
//! driver) while every observable output stays **byte-identical** to the
//! sequential run. The pool guarantees this by construction:
//!
//! * Tasks are identified by their submission index. Workers pull
//!   indices from a shared atomic counter, so *which* thread runs a task
//!   is racy — but each task is a pure function of its index.
//! * Results are merged back **in submission-index order**, never in
//!   completion order.
//! * A pool of one thread (or a single task) runs inline on the caller's
//!   thread: pool size 1 is the trivially-sequential case.
//!
//! Anything a task writes into shared state (caches, meters) may land in
//! a different order across pool sizes; callers must only share state
//! whose observable values are order-independent (e.g. deterministic
//! keyed caches where every writer computes the same value).

#![warn(missing_docs)]

pub mod mem;
pub mod rcu;

pub use mem::{mem_budget_from_env, BudgetedMap, MemSection, MemSize, MEM_BUDGET_ENV};
pub use rcu::RcuCell;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const WORKER_THREADS_ENV: &str = "ARENA_WORKER_THREADS";

/// Environment variable overriding the default executor shard count of
/// the sharded simulation engine.
pub const SHARDS_ENV: &str = "ARENA_SHARDS";

/// Reads `ARENA_SHARDS`, falling back to `default`. Clamped to at least
/// one shard.
#[must_use]
pub fn shards_from_env_or(default: usize) -> usize {
    std::env::var(SHARDS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
        .max(1)
}

/// K-way merges per-shard `(index, value)` streams into one stream of
/// ascending index — the deterministic merge round of sharded
/// execution.
///
/// Each input stream must already be sorted by ascending index, and
/// indices must be unique across streams (each shard owns a disjoint
/// subset). The merged order is then a pure function of the indices: it
/// reproduces exactly the order a serial loop visiting `0..n` would
/// produce, regardless of shard count or which thread produced which
/// stream. Non-associative folds (floating-point accumulation) over the
/// merged stream are therefore bitwise-identical to the unsharded fold.
#[must_use]
pub fn merge_by_index<T>(mut streams: Vec<Vec<(usize, T)>>) -> Vec<(usize, T)> {
    debug_assert!(streams
        .iter()
        .all(|s| s.windows(2).all(|w| w[0].0 < w[1].0)));
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut cursors: Vec<std::iter::Peekable<std::vec::IntoIter<(usize, T)>>> = streams
        .drain(..)
        .map(|s| s.into_iter().peekable())
        .collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, usize)> = None; // (index, cursor)
        for (c, cur) in cursors.iter_mut().enumerate() {
            if let Some(&(i, _)) = cur.peek() {
                if best.is_none_or(|(bi, _)| i < bi) {
                    best = Some((i, c));
                }
            }
        }
        match best {
            Some((_, c)) => out.push(cursors[c].next().expect("peeked cursor yields")),
            None => break,
        }
    }
    out
}

/// A deterministic scoped-thread worker pool.
///
/// Holds no threads while idle; each [`WorkerPool::map`] /
/// [`WorkerPool::run_all`] call spawns scoped workers
/// (`std::thread::scope`) and joins them before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The trivially-sequential pool: everything runs inline.
    #[must_use]
    pub fn sequential() -> Self {
        WorkerPool::new(1)
    }

    /// Reads `ARENA_WORKER_THREADS`, falling back to the machine's
    /// available parallelism (capped at 8). Use for driver-level fan-out
    /// where tasks are few and large.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_or(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
        )
    }

    /// Reads `ARENA_WORKER_THREADS`, falling back to `default`. Use for
    /// inner-loop fan-out where parallelism should be opt-in.
    #[must_use]
    pub fn from_env_or(default: usize) -> Self {
        let threads = std::env::var(WORKER_THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default);
        WorkerPool::new(threads)
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of workers that can actually run concurrently: the
    /// configured thread count capped at the machine's available
    /// parallelism. Spawning beyond the core count buys nothing and
    /// costs a thread spawn/join per excess worker, so fan-out
    /// decisions (inline vs. spawn, chunk sizing) should consult this
    /// rather than [`WorkerPool::threads`]. Results are still
    /// byte-identical either way — only wall-clock changes.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        use std::sync::OnceLock;
        static CORES: OnceLock<usize> = OnceLock::new();
        let cores = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        self.threads.min(cores).max(1)
    }

    /// Applies `f` to every item, returning results in item order.
    ///
    /// `f` receives `(index, &item)` and must be a pure function of them
    /// (up to order-independent shared caches) for cross-pool-size
    /// determinism.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// Applies `f` to every item in fixed-size chunks, returning results
    /// in item order.
    ///
    /// Workers claim whole chunks of `chunk` consecutive indices from
    /// the shared counter instead of single indices, so per-task
    /// queue/merge overhead is amortised over the chunk — the right
    /// granularity when each item is cheap (e.g. one cached-or-small
    /// estimate). The merge is still by ascending chunk index, so the
    /// output order (and any order-dependent fold over it) is identical
    /// to [`WorkerPool::map`] at every pool size and chunk size.
    pub fn map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let chunk = chunk.max(1);
        if self.effective_threads() <= 1 || n <= chunk {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let num_chunks = n.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(num_chunks));
        std::thread::scope(|s| {
            for _ in 0..self.effective_threads().min(num_chunks) {
                s.spawn(|| {
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        let rs: Vec<R> = (start..end).map(|i| f(i, &items[i])).collect();
                        local.push((c, rs));
                    }
                    collected.lock().expect("worker result lock").extend(local);
                });
            }
        });
        let mut results = collected.into_inner().expect("worker result lock");
        results.sort_by_key(|&(c, _)| c);
        debug_assert_eq!(results.iter().map(|(_, v)| v.len()).sum::<usize>(), n);
        results.into_iter().flat_map(|(_, rs)| rs).collect()
    }

    /// Runs `f(0..n)`, returning results in index order.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.effective_threads() <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..self.effective_threads().min(n) {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    collected.lock().expect("worker result lock").extend(local);
                });
            }
        });
        let mut results = collected.into_inner().expect("worker result lock");
        results.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(results.len(), n);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs every one-shot task, returning results in submission order.
    /// Unlike [`WorkerPool::map`] the tasks are owned closures, so this
    /// fits fan-out over values that must move into the worker (boxed
    /// policies, owned configs).
    pub fn run_all<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if self.effective_threads() <= 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let n = tasks.len();
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map_indices(n, |i| {
            let task = slots[i]
                .lock()
                .expect("task slot lock")
                .take()
                .expect("each task runs exactly once");
            task()
        })
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_across_pool_sizes() {
        let items: Vec<usize> = (0..257).collect();
        let seq: Vec<usize> = WorkerPool::new(1).map(&items, |i, &x| i * 1000 + x * 3);
        for threads in [2, 4, 8] {
            let par = WorkerPool::new(threads).map(&items, |i, &x| i * 1000 + x * 3);
            assert_eq!(par, seq, "pool size {threads} reordered results");
        }
    }

    #[test]
    fn map_chunked_matches_map_across_pool_and_chunk_sizes() {
        let items: Vec<usize> = (0..257).collect();
        let seq: Vec<usize> = WorkerPool::new(1).map(&items, |i, &x| i * 1000 + x * 3);
        for threads in [1, 2, 4, 8] {
            for chunk in [1, 3, 4, 64, 300] {
                let got =
                    WorkerPool::new(threads).map_chunked(&items, chunk, |i, &x| i * 1000 + x * 3);
                assert_eq!(
                    got, seq,
                    "threads {threads} chunk {chunk} reordered results"
                );
            }
        }
    }

    #[test]
    fn map_chunked_handles_edge_sizes() {
        let pool = WorkerPool::new(4);
        assert_eq!(
            pool.map_chunked(&[], 4, |i, _: &usize| i),
            Vec::<usize>::new()
        );
        assert_eq!(pool.map_chunked(&[9], 4, |_, &x| x + 1), vec![10]);
        // chunk 0 clamps to 1 rather than dividing by zero.
        assert_eq!(pool.map_chunked(&[1, 2, 3], 0, |_, &x| x), vec![1, 2, 3]);
    }

    #[test]
    fn effective_threads_caps_at_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(WorkerPool::new(1).effective_threads(), 1);
        assert_eq!(WorkerPool::new(8).effective_threads(), 8.min(cores));
        assert!(WorkerPool::new(1024).effective_threads() <= cores);
    }

    #[test]
    fn map_indices_handles_edge_sizes() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map_indices(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indices(1, |i| i + 7), vec![7]);
        assert_eq!(pool.map_indices(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn run_all_merges_in_submission_order() {
        let tasks: Vec<_> = (0..64_usize)
            .map(|i| {
                move || {
                    // Uneven work so completion order differs from
                    // submission order under real concurrency.
                    let mut acc = 0_u64;
                    for k in 0..((64 - i) * 500) {
                        acc = acc.wrapping_add(k as u64);
                    }
                    (i, std::hint::black_box(acc))
                }
            })
            .collect();
        let out = WorkerPool::new(8).run_all(tasks);
        let ids: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map_indices(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn merge_by_index_reproduces_serial_order() {
        // Deal indices round-robin to 3 shards, merge back.
        let mut streams: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 3];
        for i in 0..97_usize {
            streams[i % 3].push((i, i as f64 * 0.5));
        }
        let merged = merge_by_index(streams);
        let ids: Vec<usize> = merged.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn merge_by_index_handles_empty_and_skewed_streams() {
        let streams: Vec<Vec<(usize, u8)>> =
            vec![vec![], vec![(0, 1), (5, 2)], vec![], vec![(2, 3)]];
        let merged = merge_by_index(streams);
        assert_eq!(merged, vec![(0, 1), (2, 3), (5, 2)]);
        assert!(merge_by_index(Vec::<Vec<(usize, u8)>>::new()).is_empty());
    }

    #[test]
    fn sharded_float_fold_is_bitwise_serial() {
        // The motivating property: folding the merged stream reproduces
        // the serial accumulation order, so the sum is bitwise equal.
        let vals: Vec<f64> = (0..64).map(|i| 1.0 / (i as f64 + 0.3)).collect();
        let serial: f64 = vals.iter().sum();
        for shards in [1, 2, 4, 8] {
            let mut streams: Vec<Vec<(usize, f64)>> = vec![Vec::new(); shards];
            for (i, &v) in vals.iter().enumerate() {
                streams[i % shards].push((i, v));
            }
            let merged: f64 = merge_by_index(streams).into_iter().map(|(_, v)| v).sum();
            assert_eq!(merged.to_bits(), serial.to_bits(), "{shards} shards");
        }
    }

    #[test]
    fn shards_from_env_or_defaults_and_clamps() {
        // Read-only probe, mirroring `from_env_or_prefers_env`.
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(shards_from_env_or(4), 4);
            assert_eq!(shards_from_env_or(0), 1);
        }
    }

    #[test]
    fn from_env_or_prefers_env() {
        // Read-only probe: the variable is unset in the test environment,
        // so the default must win.
        if std::env::var(WORKER_THREADS_ENV).is_err() {
            assert_eq!(WorkerPool::from_env_or(3).threads(), 3);
        }
    }
}
